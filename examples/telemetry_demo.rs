//! The observability layer, end to end: run a catalog scenario with
//! telemetry enabled and print what the probe saw — the deterministic
//! counter table (round-mode split, cache behaviour, channel totals)
//! and the wall-clock phase histograms (p50/p95/p99 per pipeline
//! stage).
//!
//! ```sh
//! cargo run --example telemetry_demo --release
//! ```
//!
//! Set `VI_TRACE=trace.json` to additionally export a Perfetto/Chrome
//! trace of sweep-worker and job spans (open it in `ui.perfetto.dev`).

use virtual_infra::scenario::{catalog, EngineTuning, SweepRunner};

fn main() {
    let names = ["city_scale", "commuter_wave"];
    let specs: Vec<_> = names
        .iter()
        .map(|n| catalog::scenario(n).expect("catalog scenario"))
        .collect();
    let tuning = EngineTuning::DEFAULT.with_telemetry();
    let outcomes = SweepRunner::auto().run_matrix_with(&specs, &[1], tuning);

    for out in &outcomes {
        let tele = out
            .telemetry
            .as_ref()
            .expect("telemetry was enabled via EngineTuning");

        println!("== {} (seed {}) ==\n", out.scenario, out.seed);
        println!("deterministic counters (worker-count invariant):");
        for (name, value) in tele.counters.rows() {
            if value > 0 {
                println!("  {name:<24} {value:>12}");
            }
        }
        println!(
            "  {:<24} {:>12}  (wall-clock side)",
            "sharded_rounds", tele.sharded_rounds
        );

        println!("\nphase timings (wall-clock µs, excluded from determinism):");
        println!(
            "  {:<10} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "phase", "samples", "total", "p50", "p95", "p99", "max"
        );
        for p in &tele.phases.phases {
            if p.samples == 0 {
                continue;
            }
            println!(
                "  {:<10} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
                p.phase, p.samples, p.total_us, p.p50_us, p.p95_us, p.p99_us, p.max_us
            );
        }
        println!();
    }

    println!("rounds are counted once per mode: steady (cached fast path), scatter");
    println!("(few broadcasters), reanchor (cache rebuild), churn (membership change),");
    println!("legacy (pre-overhaul path). Re-run with VI_TRACE=trace.json for a");
    println!("Perfetto span export of the same sweep.");
}
