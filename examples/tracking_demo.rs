//! Tracking a mobile object across a grid of virtual nodes.
//!
//! ```sh
//! cargo run --example tracking_demo
//! ```
//!
//! A reporter device wanders the field (random waypoint) broadcasting
//! its position; the virtual node covering each area records it; a
//! stationary query client asks its local virtual node where the
//! object is. This is the paper's location-service motivation: the
//! service address (the virtual node) never moves even though every
//! implementing device does.

use virtual_infra::apps::tracking::{cell_of, QueryClient, ReporterClient, TrackingVn};
use virtual_infra::core::vi::{VnId, VnLayout, World, WorldConfig};
use virtual_infra::radio::geometry::{Point, Rect};
use virtual_infra::radio::mobility::{Static, Waypoint};
use virtual_infra::radio::RadioConfig;

fn main() {
    const CELL: f64 = 10.0;
    // One tracking virtual node at the center of a 100 m field.
    let vn_loc = Point::new(50.0, 50.0);
    let layout = VnLayout::new(vec![vn_loc], 2.5);
    let mut world = World::new(WorldConfig {
        radio: RadioConfig::reliable(60.0, 90.0), // long range: covers the field
        layout,
        automaton: TrackingVn,
        seed: 99,
        record_trace: false,
    });

    // Two static devices near the virtual node keep it alive.
    world.add_device(Box::new(Static::new(Point::new(50.5, 50.0))), None);
    world.add_device(Box::new(Static::new(Point::new(49.5, 50.2))), None);

    // The tracked object: reports every 2 virtual rounds while roaming.
    let reporter = world.add_device(
        Box::new(Waypoint::new(
            Point::new(20.0, 20.0),
            0.05,
            Rect::square(100.0),
        )),
        Some(Box::new(ReporterClient::new(7, 2, CELL))),
    );

    // A stationary query client.
    let querier = world.add_device(
        Box::new(Static::new(Point::new(40.0, 50.0))),
        Some(Box::new(QueryClient::new(7, 3))),
    );

    for _ in 0..6 {
        world.run_virtual_rounds(5);
        let vr = world.virtual_rounds_done();
        let true_pos = world.engine().position(reporter).expect("placed");
        let true_cell = cell_of(true_pos, CELL);
        let q: &QueryClient = world.device(querier).client::<QueryClient>().unwrap();
        let tracked = q.answers.last().and_then(|(_, c)| *c);
        println!(
            "vr {vr:>2}: object at {true_pos} = cell {true_cell:?}; service's last answer: {tracked:?}"
        );
    }

    let q: &QueryClient = world.device(querier).client::<QueryClient>().unwrap();
    println!(
        "\nquery client received {} answers over the run",
        q.answers.len()
    );
    let (state, folded) = world.vn_state(VnId(0)).expect("vn alive");
    println!(
        "virtual node (folded to vr {folded}) knows {} object(s): {:?}",
        state.objects.len(),
        state.objects
    );
}
