//! A register anchored at a geographic focal point (GeoQuorums-style).
//!
//! ```sh
//! cargo run --example geo_register
//! ```
//!
//! A writer device streams writes into a virtual-node-hosted register
//! while a reader polls it; a third device exists only to thicken the
//! replica set. Midway we crash the writer-side device that happens to
//! lead the emulation — the register (being virtual) survives.

use virtual_infra::apps::register::{ReaderClient, RegisterVn, WriterClient};
use virtual_infra::core::vi::{VnId, VnLayout, World, WorldConfig};
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::Static;
use virtual_infra::radio::RadioConfig;

fn main() {
    let layout = VnLayout::new(vec![Point::new(50.0, 50.0)], 2.5);
    let mut world = World::new(WorldConfig {
        radio: RadioConfig::reliable(10.0, 20.0),
        layout,
        automaton: RegisterVn,
        seed: 5,
        record_trace: false,
    });

    let writer = world.add_device(
        Box::new(Static::new(Point::new(50.4, 50.0))),
        Some(Box::new(WriterClient::new(1000, 6))),
    );
    let reader = world.add_device(
        Box::new(Static::new(Point::new(49.6, 50.0))),
        Some(Box::new(ReaderClient::new(2))),
    );
    let relay = world.add_device(Box::new(Static::new(Point::new(50.0, 50.6))), None);

    world.run_virtual_rounds(15);
    println!("before crash: {} replicas", world.replica_count(VnId(0)));

    // Crash one replica mid-flight; the virtual node must survive.
    world.crash(relay);
    world.run_virtual_rounds(15);

    let w: &WriterClient = world.device(writer).client::<WriterClient>().unwrap();
    let r: &ReaderClient = world.device(reader).client::<ReaderClient>().unwrap();
    println!("writer acknowledged tags: {:?}", w.ack_log);
    println!("reader observed (tag, value) sequence: {:?}", r.read_log);

    let tags: Vec<u64> = r.read_log.iter().map(|&(t, _)| t).collect();
    let monotone = tags.windows(2).all(|w| w[0] <= w[1]);
    println!("reads tag-monotone (regular register): {monotone}");

    let (state, folded) = world.vn_state(VnId(0)).expect("register alive");
    println!(
        "register state at vr {folded}: tag={} value={} ({} replicas remain)",
        state.tag,
        state.value,
        world.replica_count(VnId(0))
    );
}
