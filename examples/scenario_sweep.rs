//! Load declarative scenario specs from a JSON file and sweep them
//! across seeds on all cores — no Rust required to define a new
//! deployment.
//!
//! ```sh
//! cargo run --release --example scenario_sweep -- examples/scenarios.json 1 2 3
//! ```
//!
//! The file holds a JSON array of `ScenarioSpec`s (see
//! `examples/scenarios.json` for a template, or serialize any
//! `vi_scenario::catalog` entry to get a starting point). Each
//! `(scenario, seed)` run is deterministic, so re-running this example
//! with the same file and seeds replays the exact same executions.

use virtual_infra::scenario::{ScenarioSpec, SweepRunner};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .unwrap_or_else(|| "examples/scenarios.json".to_string());
    let seeds: Vec<u64> = {
        let rest: Vec<u64> = args
            .map(|a| a.parse().expect("seed must be a u64"))
            .collect();
        if rest.is_empty() {
            vec![1, 2]
        } else {
            rest
        }
    };

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let specs: Vec<ScenarioSpec> =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    for spec in &specs {
        spec.validate().expect("scenario spec must be valid");
    }

    let runner = SweepRunner::auto();
    println!(
        "sweeping {} scenario(s) × {} seed(s) on {} worker(s)\n",
        specs.len(),
        seeds.len(),
        runner.workers()
    );
    for o in runner.run_matrix(&specs, &seeds) {
        println!(
            "{:<20} seed {:<3} {:>5} nodes {:>6} rounds  decided {:.2}  \
             safety violations {}  kst {}",
            o.scenario,
            o.seed,
            o.nodes,
            o.rounds,
            o.decided_fraction,
            o.safety_violations(),
            o.stabilized_kst
                .map_or_else(|| "-".to_string(), |k| k.to_string()),
        );
    }
}
