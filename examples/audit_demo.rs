//! Consistency auditing, end to end:
//!
//! 1. Run the two nemesis catalog scenarios (`blackout_market`,
//!    `quake_drill`) with auditing on and print every checker's
//!    verdict — the virtual-infrastructure apps stay consistent
//!    through blackouts, detector corruption, and crash bursts.
//! 2. Run the deliberately broken `vi-baselines` majority register —
//!    majority-acked writes, quorum-free *local* reads — behind a
//!    partition, and watch the WGL linearizability checker catch it,
//!    minimized witness and all.
//!
//! ```sh
//! cargo run --example audit_demo --release
//! ```

use virtual_infra::audit::{check_register, LinResult, RegOpKind};
use virtual_infra::baselines::{collect_register_ops, MajRegMessage, MajorityRegister};
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::Static;
use virtual_infra::radio::{
    Engine, EngineConfig, NodeId, NodeSpec, RadioConfig, ScriptedAdversary,
};
use virtual_infra::scenario::catalog;

fn main() {
    println!("== Part 1: virtual-infrastructure apps under the nemesis ==\n");
    for name in ["blackout_market", "quake_drill"] {
        let spec = catalog::scenario(name).expect("nemesis catalog scenario");
        let out = spec.run(1);
        let report = out.audit.as_ref().expect("audited scenario");
        let t = out.traffic.as_ref().expect("traffic workload");
        println!(
            "{name}: {} ops, {} completed, {} timed out (`:info`, maybe-applied)",
            report.ops, t.completed, report.timeouts
        );
        for c in &report.checks {
            println!(
                "  {:<20} {}",
                c.name,
                if c.ok() { "ok" } else { "VIOLATION" }
            );
            if let Some(w) = &c.witness {
                println!("    witness: {w}");
            }
        }
        assert!(report.ok(), "nemesis scenarios must audit clean");
        println!();
    }

    println!("== Part 2: the broken baseline (majority register, local reads) ==\n");
    // Four ranked replicas; the leader's writes complete on a majority
    // of acks. From round 6 the last replica is partitioned away — and
    // keeps serving reads from its stale local copy.
    let n = 4;
    let rounds = 24u64;
    let mut engine: Engine<MajRegMessage> = Engine::new(EngineConfig {
        radio: RadioConfig::stabilizing(10.0, 20.0, u64::MAX),
        seed: 5,
        record_trace: false,
    });
    let mut adv = ScriptedAdversary::new();
    for r in 6..rounds {
        adv.drop_all_to(r, NodeId::from(n - 1));
    }
    engine.set_adversary(Box::new(adv));
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            engine.add_node(NodeSpec::new(
                Box::new(Static::new(Point::new(i as f64 * 0.2, 0.0))),
                Box::new(MajorityRegister::new(i, n, 8)),
            ))
        })
        .collect();
    engine.run(rounds);

    // Collect the observed history — the leader's write lifecycles
    // and every replica's instantaneous local reads — as WGL register
    // operations (the same collection the baseline's own tests use).
    let ops = collect_register_ops(&engine, &ids);
    println!(
        "history: {} ops from {} replicas ({} writes)",
        ops.len(),
        n,
        ops.iter()
            .filter(|o| matches!(o.kind, RegOpKind::Write { .. }))
            .count()
    );
    match check_register(&ops) {
        LinResult::Ok => panic!("the broken baseline must fail linearizability"),
        LinResult::BudgetExhausted => panic!("search budget exhausted"),
        LinResult::Violation { witness } => {
            println!("linearizability: VIOLATION (as designed). Minimized witness:");
            for line in &witness {
                println!("  {line}");
            }
            println!(
                "\nA partitioned replica kept serving its stale local copy after \
                 newer writes completed at the majority — the quorum-free read \
                 path is the bug. The virtual-node register routes every response \
                 through the single agreed replica state, which is why Part 1 \
                 stays clean under a harsher fault schedule."
            );
        }
    }
}
