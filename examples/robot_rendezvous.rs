//! Mobile robot coordination through a virtual node.
//!
//! ```sh
//! cargo run --example robot_rendezvous
//! ```
//!
//! The paper's robot-coordination motivation (references [4, 27]):
//! patrolling robots periodically report their positions to a virtual
//! node, which — being a single reliable, deterministic coordination
//! point — computes and announces a rendezvous location (the centroid
//! of the latest reports). Every robot hears the *same* announcement,
//! which is exactly the agreement property that is hard to get from
//! unreliable peers and trivial to get from virtual infrastructure.
//!
//! This example also shows defining a custom [`VirtualAutomaton`]
//! outside the workspace crates: the entire coordination service is
//! ~60 lines.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use virtual_infra::core::vi::{
    ClientApp, VirtualAutomaton, VirtualInput, VirtualReception, VnCtx, VnId, VnLayout, World,
    WorldConfig,
};
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::{PatrolRoute, Static};
use virtual_infra::radio::{RadioConfig, WireSized};

/// Robot coordination messages (positions in millimeters).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
enum RobotMsg {
    Position { robot: u32, x: i64, y: i64 },
    Rendezvous { x: i64, y: i64 },
}

impl WireSized for RobotMsg {
    fn wire_size(&self) -> usize {
        21
    }
}

/// The coordination virtual node: remembers each robot's last report
/// and announces the centroid whenever its broadcast slot comes up.
#[derive(Clone, Copy, Debug, Default)]
struct RendezvousVn;

#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
struct RendezvousState {
    robots: BTreeMap<u32, (i64, i64)>,
}

impl VirtualAutomaton for RendezvousVn {
    type Msg = RobotMsg;
    type State = RendezvousState;

    fn init(&self) -> RendezvousState {
        RendezvousState::default()
    }

    fn step(
        &self,
        state: &mut RendezvousState,
        ctx: VnCtx,
        input: &VirtualInput<RobotMsg>,
    ) -> Option<RobotMsg> {
        for m in &input.messages {
            if let RobotMsg::Position { robot, x, y } = m {
                state.robots.insert(*robot, (*x, *y));
            }
        }
        if ctx.next_scheduled && !state.robots.is_empty() {
            let n = state.robots.len() as i64;
            let (sx, sy) = state
                .robots
                .values()
                .fold((0, 0), |(ax, ay), (x, y)| (ax + x, ay + y));
            return Some(RobotMsg::Rendezvous {
                x: sx / n,
                y: sy / n,
            });
        }
        None
    }
}

/// A robot: reports its position every other virtual round and records
/// rendezvous announcements.
struct Robot {
    id: u32,
    announcements: Vec<(i64, i64)>,
}

impl ClientApp<RobotMsg> for Robot {
    fn on_virtual_round(
        &mut self,
        vr: u64,
        pos: Point,
        prev: &VirtualReception<RobotMsg>,
    ) -> Option<RobotMsg> {
        for m in &prev.messages {
            if let RobotMsg::Rendezvous { x, y } = m {
                self.announcements.push((*x, *y));
            }
        }
        // Stagger reports by robot id so simultaneous position
        // broadcasts don't collide in the client phase.
        (vr % 3 == u64::from(self.id)).then_some(RobotMsg::Position {
            robot: self.id,
            x: (pos.x * 1000.0) as i64,
            y: (pos.y * 1000.0) as i64,
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn main() {
    let vn_loc = Point::new(50.0, 50.0);
    let layout = VnLayout::new(vec![vn_loc], 2.5);
    let mut world = World::new(WorldConfig {
        radio: RadioConfig::reliable(80.0, 120.0), // field-wide radio
        layout,
        automaton: RendezvousVn,
        seed: 3,
        record_trace: false,
    });

    // Two devices anchor the virtual node.
    world.add_device(Box::new(Static::new(Point::new(50.5, 50.0))), None);
    world.add_device(Box::new(Static::new(Point::new(49.5, 50.0))), None);

    // Three patrolling robots on different circuits.
    let circuits = [
        vec![Point::new(20.0, 20.0), Point::new(30.0, 20.0)],
        vec![Point::new(80.0, 30.0), Point::new(80.0, 40.0)],
        vec![Point::new(40.0, 80.0), Point::new(50.0, 80.0)],
    ];
    let robots: Vec<_> = circuits
        .into_iter()
        .enumerate()
        .map(|(i, route)| {
            world.add_device(
                Box::new(PatrolRoute::new(route, 1.5)),
                Some(Box::new(Robot {
                    id: i as u32,
                    announcements: Vec::new(),
                })),
            )
        })
        .collect();

    world.run_virtual_rounds(20);

    for (i, &id) in robots.iter().enumerate() {
        let robot: &Robot = world.device(id).client::<Robot>().unwrap();
        let last = robot.announcements.last();
        println!(
            "robot {i}: heard {} announcements, latest rendezvous {:?}",
            robot.announcements.len(),
            last.map(|(x, y)| (*x as f64 / 1000.0, *y as f64 / 1000.0))
        );
    }

    // All robots that heard the final announcement heard the same one.
    let finals: Vec<_> = robots
        .iter()
        .filter_map(|&id| {
            world
                .device(id)
                .client::<Robot>()
                .unwrap()
                .announcements
                .last()
                .copied()
        })
        .collect();
    println!(
        "all robots agree on the rendezvous point: {}",
        finals.windows(2).all(|w| w[0] == w[1])
    );
    let (state, _) = world.vn_state(VnId(0)).expect("coordinator alive");
    println!("coordinator tracked {} robots", state.robots.len());
}
