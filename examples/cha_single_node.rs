//! Convergent history agreement, standalone (Section 3 of the paper).
//!
//! ```sh
//! cargo run --example cha_single_node
//! ```
//!
//! Runs the CHAP protocol among five nodes in a single region through
//! an unstable prefix (random message loss and spurious collision
//! indications until round 30), then a stable suffix. Prints each
//! node's per-instance colors and shows the paper's guarantees in
//! action: limited disagreement while the channel misbehaves, and
//! convergence to all-green afterwards.

use virtual_infra::contention::{OracleCm, PreStability, SharedCm};
use virtual_infra::core::cha::{ChaNode, Color, TaggedProposer};
use virtual_infra::radio::adversary::RandomLoss;
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::Static;
use virtual_infra::radio::{Engine, EngineConfig, NodeSpec, RadioConfig};

fn main() {
    const N: usize = 5;
    const STABLE_AT: u64 = 30;
    const ROUNDS: u64 = 60; // 20 instances of 3 rounds each

    let mut engine = Engine::new(EngineConfig {
        radio: RadioConfig::stabilizing(10.0, 20.0, STABLE_AT),
        seed: 2024,
        record_trace: false,
    });
    engine.set_adversary(Box::new(RandomLoss::new(0.25, 0.08)));

    let cm = SharedCm::new(OracleCm::new(STABLE_AT, PreStability::Random(0.25), 7));
    let ids: Vec<_> = (0..N)
        .map(|i| {
            engine.add_node(NodeSpec::new(
                Box::new(Static::new(Point::new(i as f64, 0.0))),
                Box::new(ChaNode::<u64>::new(
                    Box::new(TaggedProposer::new(i as u64)),
                    cm.clone(),
                )),
            ))
        })
        .collect();

    engine.run(ROUNDS);

    println!("per-instance colors (instability ends at round {STABLE_AT} = instance 10):\n");
    print!("instance: ");
    for k in 1..=ROUNDS / 3 {
        print!("{k:>3}");
    }
    println!();
    for (i, &id) in ids.iter().enumerate() {
        let node: &ChaNode<u64> = engine.process(id).expect("node");
        print!("node {i}:   ");
        for out in node.outputs() {
            let c = match out.color {
                Color::Red => "  R",
                Color::Orange => "  O",
                Color::Yellow => "  Y",
                Color::Green => "  G",
            };
            print!("{c}");
        }
        println!();
    }

    // The final histories of all nodes agree (Theorem 10).
    let finals: Vec<_> = ids
        .iter()
        .map(|&id| {
            engine
                .process::<ChaNode<u64>>(id)
                .unwrap()
                .outputs()
                .iter()
                .rev()
                .find_map(|o| o.history.clone())
                .expect("at least one decided instance")
        })
        .collect();
    let agree = finals.windows(2).all(|w| {
        let upto = w[0].len().min(w[1].len());
        w[0].agrees_with(&w[1], upto)
    });
    println!("\nall decided histories agree on common prefixes: {agree}");
    println!(
        "max message size over the whole run: {} bytes (constant, Theorem 14)",
        engine.stats().max_message_bytes
    );
}
