//! Quickstart: one virtual node, three mobile devices, live in under
//! a minute.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Deploys a single virtual node (the built-in counter automaton) at a
//! fixed location, places three devices nearby, and lets the
//! emulation bootstrap itself: the devices discover the dead virtual
//! node via the join/reset sub-protocol, re-initialize it, and from
//! then on keep it alive and consistent while clients talk to it.

use virtual_infra::core::vi::{
    CollectorClient, CounterAutomaton, VnId, VnLayout, World, WorldConfig,
};
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::Static;
use virtual_infra::radio::RadioConfig;

fn main() {
    // A 10 m broadcast radius, 20 m interference radius, well-behaved
    // channel; one virtual node at (50, 50) emulated by every device
    // within 2.5 m (= R1/4).
    let layout = VnLayout::new(vec![Point::new(50.0, 50.0)], 2.5);
    let mut world = World::new(WorldConfig {
        radio: RadioConfig::reliable(10.0, 20.0),
        layout,
        automaton: CounterAutomaton,
        seed: 42,
        record_trace: false,
    });

    // Three devices in the region; each also runs a collecting client.
    let devices: Vec<_> = (0..3)
        .map(|i| {
            world.add_device(
                Box::new(Static::new(Point::new(49.4 + i as f64 * 0.6, 50.0))),
                Some(Box::new(CollectorClient::<u64>::default())),
            )
        })
        .collect();

    println!(
        "one virtual round = {} radio rounds",
        world.plan().rounds_per_vr()
    );
    for step in 1..=5 {
        world.run_virtual_rounds(2);
        let vr = world.virtual_rounds_done();
        let replicas = world.replica_count(VnId(0));
        match world.vn_state(VnId(0)) {
            Some((state, folded)) => println!(
                "after vr {vr}: {replicas} replicas, vn state folded to vr {folded}: {state:?}"
            ),
            None => println!("after vr {vr}: virtual node not yet alive"),
        }
        if step == 1 {
            println!("  (bootstrap: devices found a dead virtual node and reset it)");
        }
    }

    // What did a client see? The counter automaton broadcasts its
    // running total every scheduled round.
    let client = world
        .device(devices[0])
        .client::<CollectorClient<u64>>()
        .expect("client present");
    let heard: Vec<&u64> = client.log.iter().flat_map(|r| &r.messages).collect();
    println!(
        "client 0 heard {} virtual-node broadcasts: {heard:?}",
        heard.len()
    );

    let (_, report) = world.vn_report(VnId(0));
    println!(
        "emulation totals: {} green instances, {} ⊥, {} resets",
        report.decided, report.bottom, report.resets
    );
}
