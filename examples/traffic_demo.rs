//! Client traffic against a virtual-node service, end to end: run the
//! catalog's `mall_rush` scenario (a flash crowd hammering the
//! register) and print the latency profile a service benchmark would
//! report.
//!
//! ```sh
//! cargo run --release --example traffic_demo
//! ```

use virtual_infra::scenario::catalog;

fn main() {
    let spec = catalog::scenario("mall_rush").expect("catalog scenario");
    println!(
        "scenario: {} ({} devices, open-loop burst against the register)",
        spec.name,
        spec.node_count()
    );

    let out = spec.run(1);
    let t = out.traffic.as_ref().expect("traffic workload");
    println!(
        "\nissued {} requests, completed {}, timed out {}, {} still in flight",
        t.issued, t.completed, t.timed_out, t.in_flight_at_end
    );
    println!(
        "latency (virtual rounds): p50={} p95={} p99={} max={} mean={:.2}",
        t.p50, t.p95, t.p99, t.max, t.mean
    );
    println!(
        "throughput {:.2} completions/vr (peak {} in one round)",
        t.throughput_per_round, t.peak_round_completions
    );
    println!(
        "channel: {} broadcasts, {} deliveries, {} collision reports",
        out.broadcasts, out.deliveries, out.collision_reports
    );
    println!(
        "emulation: {:.0}% green virtual rounds, {} joins, {} resets",
        out.decided_fraction * 100.0,
        out.vn_joins,
        out.vn_resets
    );
}
