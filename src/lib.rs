//! # virtual-infra
//!
//! Umbrella crate for the reproduction of *Chockler, Gilbert, Lynch:
//! "Virtual Infrastructure for Collision-Prone Wireless Networks"*
//! (PODC 2008). Re-exports the workspace crates under one roof and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! * [`radio`] — collision-prone slotted wireless simulator.
//! * [`contention`] — contention managers (Property 3).
//! * [`core`] — convergent history agreement + virtual infrastructure.
//! * [`baselines`] — comparison protocols.
//! * [`apps`] — applications on virtual infrastructure.
//! * [`traffic`] — client load generation + latency metrics over the apps.
//! * [`audit`] — operation-history capture + consistency checkers.
//! * [`scenario`] — declarative scenario specs + parallel sweep runner.
//! * [`telemetry`] — deterministic counters, phase timers, Perfetto export.
//! * [`fuzz`] — coverage-guided scenario fuzzing + violation minimization.

pub use vi_apps as apps;
pub use vi_audit as audit;
pub use vi_baselines as baselines;
pub use vi_contention as contention;
pub use vi_core as core;
pub use vi_fuzz as fuzz;
pub use vi_radio as radio;
pub use vi_scenario as scenario;
pub use vi_telemetry as telemetry;
pub use vi_traffic as traffic;
