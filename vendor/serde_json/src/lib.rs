//! Offline stand-in for `serde_json`.
//!
//! Prints and parses the vendored serde [`Value`] tree as JSON. The
//! supported surface is exactly what this workspace uses:
//! [`to_string`], [`to_vec`], [`from_str`], [`from_slice`].

pub use serde::Error;
use serde::{de::DeserializeOwned, Serialize, Value};

/// Serializes `value` as a JSON string.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float (JSON has
/// no representation for NaN or infinities).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes `value` as JSON bytes.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Returns an error on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8"))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite floats"));
            }
            // Rust's Display for f64 prints the shortest string that
            // round-trips, but drops the decimal point for integral
            // values; keep a `.0` so the value parses back as a float.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // crate's writer; reject rather than garble.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("unpaired surrogate"))?;
                            out.push(c);
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|raw| std::str::from_utf8(raw).ok())
                        .ok_or_else(|| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\slash\\ ünïcode".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn containers_round_trip() {
        let mut m: BTreeMap<u64, Vec<Option<i64>>> = BTreeMap::new();
        m.insert(1, vec![Some(-3), None]);
        m.insert(9, vec![]);
        let json = to_string(&m).unwrap();
        assert_eq!(
            from_str::<BTreeMap<u64, Vec<Option<i64>>>>(&json).unwrap(),
            m
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("42 trailing").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
