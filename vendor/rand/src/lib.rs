//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the rand 0.9 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] sampling methods `random_bool` / `random_ratio` /
//! `random_range` / `random`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! well-studied, fast PRNG. Streams are **not** bit-compatible with
//! upstream `StdRng` (ChaCha12); every consumer in this workspace only
//! requires determinism for a fixed seed, which this provides.

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64` (the only
/// construction path this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a raw `u64` stream.
pub trait Rng {
    /// Next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53 uniform mantissa bits, same construction as rand's
        // Standard distribution for f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above 1");
        self.random_range(0..denominator) < numerator
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a uniformly random value of a [`Standard`]-distributed
    /// type (`bool` and the integer widths used in this workspace).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

/// Types with a canonical "uniform over the whole domain" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Lemire-style unbiased bounded draw via 128-bit multiply
                // with a rejection step.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    if (m as u64) >= threshold {
                        return low.wrapping_add((m >> 64) as $t);
                    }
                }
            }
            fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range");
                if low == 0 && high as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                Self::sample_range(rng, low, high.wrapping_add(1))
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range");
                let span = (high as $u).wrapping_sub(low as $u);
                let off = <$u>::sample_range(rng, 0, span);
                low.wrapping_add(off as $t)
            }
            fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_range(rng, low, high.wrapping_add(1))
            }
        }
    )*};
}

uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + u * (high - low)
    }
    fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + u * (high - low)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding from a single word.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Inherent mirror of [`Rng::random_bool`], so call sites work
        /// without the trait in scope (proptest perturb closures).
        pub fn random_bool(&mut self, p: f64) -> bool {
            Rng::random_bool(self, p)
        }

        /// Inherent mirror of [`Rng::random_range`].
        pub fn random_range<T, R>(&mut self, range: R) -> T
        where
            T: super::SampleUniform,
            R: super::SampleRange<T>,
        {
            Rng::random_range(self, range)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bool_probability_is_approximate() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn ratio_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_ratio(0, 5));
        assert!(rng.random_ratio(5, 5));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bool_rejects_bad_probability() {
        StdRng::seed_from_u64(0).random_bool(1.5);
    }
}
