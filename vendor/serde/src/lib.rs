//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the serde surface it uses. Instead of upstream serde's
//! visitor architecture, this crate routes everything through a
//! self-describing [`Value`] tree: `Serialize` renders a value into a
//! [`Value`], `Deserialize` rebuilds one from it. The companion
//! `serde_json` vendor crate prints and parses `Value` as JSON.
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the vendored
//! `serde_derive` proc-macro and supports the struct/enum shapes used
//! in this workspace (named, tuple and unit structs; enums with unit,
//! tuple and struct variants; plain type parameters with simple
//! bounds).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`].
pub trait Serialize {
    /// Converts to the self-describing value tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses from the self-describing value tree.
    ///
    /// # Errors
    ///
    /// Returns an error if `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::de`, providing the `DeserializeOwned` bound alias.
pub mod de {
    /// In this vendored serde, every `Deserialize` is already owned.
    pub use crate::Deserialize as DeserializeOwned;
}

/// Looks up a field in a serialized map (used by derived impls).
///
/// # Errors
///
/// Returns an error naming the missing key.
pub fn map_field<'v>(m: &'v [(String, Value)], key: &str) -> Result<&'v Value, Error> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom("unsigned integer out of range")),
                    Value::Int(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::custom("negative value for unsigned integer")),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(u) => i64::try_from(*u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

fn seq_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Seq(items.map(Serialize::to_value).collect())
}

fn seq_from_value<T: Deserialize>(v: &Value) -> Result<Vec<T>, Error> {
    match v {
        Value::Seq(s) => s.iter().map(T::from_value).collect(),
        _ => Err(Error::custom("expected sequence")),
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        seq_from_value(v)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        seq_from_value(v)
            .map(Vec::into_iter)
            .map(VecDeque::from_iter)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = seq_from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected sequence of length {N}")))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let Value::Seq(pairs) = v else {
            return Err(Error::custom("expected sequence of pairs"));
        };
        pairs
            .iter()
            .map(|p| match p {
                Value::Seq(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                _ => Err(Error::custom("expected [key, value] pair")),
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs: BTreeMapLike<K, V> = match v {
            Value::Seq(pairs) => pairs
                .iter()
                .map(|p| match p {
                    Value::Seq(kv) if kv.len() == 2 => {
                        Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                    }
                    _ => Err(Error::custom("expected [key, value] pair")),
                })
                .collect::<Result<_, _>>()?,
            _ => return Err(Error::custom("expected sequence of pairs")),
        };
        Ok(pairs.into_iter().collect())
    }
}

type BTreeMapLike<K, V> = Vec<(K, V)>;

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        seq_from_value(v)
            .map(Vec::into_iter)
            .map(BTreeSet::from_iter)
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        seq_from_value(v)
            .map(Vec::into_iter)
            .map(HashSet::from_iter)
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => Ok(std::ops::Range {
                start: T::from_value(map_field(m, "start")?)?,
                end: T::from_value(map_field(m, "end")?)?,
            }),
            _ => Err(Error::custom("expected {start, end} map for Range")),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(s) if s.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&s[$n])?,)+))
                    }
                    _ => Err(Error::custom("expected tuple sequence")),
                }
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-9i64).to_value()), Ok(-9));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let round: Vec<(u64, String)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);

        let mut m = BTreeMap::new();
        m.insert(3u64, Some(7i64));
        m.insert(9, None);
        let round: BTreeMap<u64, Option<i64>> = BTreeMap::from_value(&m.to_value()).unwrap();
        assert_eq!(round, m);
    }

    #[test]
    fn ranges_round_trip() {
        let r = 5u64..10u64;
        assert_eq!(<std::ops::Range<u64>>::from_value(&r.to_value()), Ok(r));
        assert!(<std::ops::Range<u64>>::from_value(&Value::UInt(3)).is_err());
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(<(u8, u8)>::from_value(&Value::Seq(vec![Value::UInt(1)])).is_err());
        assert!(map_field(&[], "missing").is_err());
    }
}
