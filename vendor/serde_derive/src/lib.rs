//! Offline stand-in for `serde_derive`.
//!
//! Derives `Serialize`/`Deserialize` impls for the vendored value-model
//! serde, without `syn`/`quote` (which are unavailable offline): the
//! input `TokenStream` is walked directly and the impl is emitted as a
//! formatted string.
//!
//! Supported shapes — the full set used by this workspace:
//! named/tuple/unit structs, enums with unit/tuple/struct variants, and
//! plain type parameters with simple trait bounds (e.g. `<S, A: Ord>`).
//! Lifetimes, const generics and `where` clauses are not supported and
//! fail with a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

/// Derives `serde::Serialize` (value-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derives `serde::Deserialize` (value-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

struct GenericParam {
    name: String,
    bounds: String,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, generics, shape) = match parse(&tokens) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!(\"serde derive (vendored): {msg}\");")
                .parse()
                .unwrap()
        }
    };
    let code = match mode {
        Mode::Ser => gen_serialize(&name, &generics, &shape),
        Mode::De => gen_deserialize(&name, &generics, &shape),
    };
    code.parse().unwrap()
}

fn parse(tokens: &[TokenTree]) -> Result<(String, Vec<GenericParam>, Shape), String> {
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;

    let mut generics = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 1usize;
        let mut current: Vec<TokenTree> = Vec::new();
        let mut chunks: Vec<Vec<TokenTree>> = Vec::new();
        i += 1;
        while depth > 0 {
            let tok = tokens
                .get(i)
                .ok_or_else(|| "unterminated generics".to_string())?;
            i += 1;
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => {
                        chunks.push(std::mem::take(&mut current));
                        continue;
                    }
                    _ => {}
                }
            }
            current.push(tok.clone());
        }
        if !current.is_empty() {
            chunks.push(current);
        }
        for chunk in chunks {
            generics.push(parse_generic_param(&chunk)?);
        }
    }

    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return Err(format!("`where` clauses are not supported (type {name})"));
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            _ => return Err(format!("unrecognized struct body for {name}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("unrecognized enum body for {name}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok((name, generics, shape))
}

fn parse_generic_param(chunk: &[TokenTree]) -> Result<GenericParam, String> {
    match chunk.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
            Err("const generics are not supported".into())
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
            Err("lifetime parameters are not supported".into())
        }
        Some(TokenTree::Ident(id)) => {
            let name = id.to_string();
            let bounds = if matches!(chunk.get(1), Some(TokenTree::Punct(p)) if p.as_char() == ':')
            {
                chunk[2..]
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            } else {
                String::new()
            };
            Ok(GenericParam { name, bounds })
        }
        _ => Err("unrecognized generic parameter".into()),
    }
}

/// Splits a token stream on top-level commas (angle-bracket aware).
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Strips leading attributes and visibility from a field/variant chunk.
fn strip_attrs_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &chunk[i..],
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_commas(stream)
        .iter()
        .map(|chunk| {
            let chunk = strip_attrs_vis(chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                _ => Err("unrecognized field".into()),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_commas(stream)
        .iter()
        .map(|chunk| {
            let chunk = strip_attrs_vis(chunk);
            let name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return Err("unrecognized enum variant".to_string()),
            };
            if chunk
                .iter()
                .any(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == '='))
            {
                return Err(format!("discriminants are not supported (variant {name})"));
            }
            let fields = match chunk.get(1) {
                None => VariantFields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(g.stream())?)
                }
                _ => return Err(format!("unrecognized variant body for {name}")),
            };
            Ok(Variant { name, fields })
        })
        .collect()
}

/// `impl<A: Ord + ::serde::Serialize, B: ::serde::Serialize>` plus the
/// `<A, B>` type-argument list.
fn generics_strings(generics: &[GenericParam], bound: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_params: Vec<String> = generics
        .iter()
        .map(|g| {
            if g.bounds.is_empty() {
                format!("{}: {bound}", g.name)
            } else {
                format!("{}: {} + {bound}", g.name, g.bounds)
            }
        })
        .collect();
    let ty_args: Vec<&str> = generics.iter().map(|g| g.name.as_str()).collect();
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", ty_args.join(", ")),
    )
}

fn gen_serialize(name: &str, generics: &[GenericParam], shape: &Shape) -> String {
    let (impl_g, ty_g) = generics_strings(generics, "::serde::Serialize");
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        VariantFields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let values: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"$variant\"), \
                                  ::serde::Value::Str(::std::string::String::from(\"{vn}\"))), \
                                 (::std::string::String::from(\"$fields\"), \
                                  ::serde::Value::Seq(::std::vec![{values}]))])",
                                binds = binders.join(", "),
                                values = values.join(", "),
                            )
                        }
                        VariantFields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"$variant\"), \
                                  ::serde::Value::Str(::std::string::String::from(\"{vn}\"))), \
                                 (::std::string::String::from(\"$fields\"), \
                                  ::serde::Value::Map(::std::vec![{entries}]))])",
                                binds = fields.join(", "),
                                entries = entries.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived] impl{impl_g} ::serde::Serialize for {name}{ty_g} {{\
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(name: &str, generics: &[GenericParam], shape: &Shape) -> String {
    let (impl_g, ty_g) = generics_strings(generics, "::serde::Deserialize");
    let err = |what: &str| {
        format!(
            "::std::result::Result::Err(::serde::Error::custom(\"expected {what} for {name}\"))"
        )
    };
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_field(m, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "match v {{ ::serde::Value::Map(m) => \
                 ::std::result::Result::Ok({name} {{ {inits} }}), _ => {e} }}",
                inits = inits.join(", "),
                e = err("map"),
            )
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            format!(
                "match v {{ ::serde::Value::Seq(s) if s.len() == {n} => \
                 ::std::result::Result::Ok({name}({inits})), _ => {e} }}",
                inits = inits.join(", "),
                e = err("sequence"),
            )
        }
        Shape::UnitStruct => format!("{{ let _ = v; ::std::result::Result::Ok({name}) }}"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match ::serde::map_field(m, \"$fields\")? {{ \
                                 ::serde::Value::Seq(s) if s.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vn}({inits})), \
                                 _ => {e} }},",
                                inits = inits.join(", "),
                                e = err("variant fields"),
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::map_field(fm, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match ::serde::map_field(m, \"$fields\")? {{ \
                                 ::serde::Value::Map(fm) => \
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }}), \
                                 _ => {e} }},",
                                inits = inits.join(", "),
                                e = err("variant fields"),
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} _ => {e_var} }}, \
                 ::serde::Value::Map(m) => {{ \
                   let tag = ::serde::map_field(m, \"$variant\")?; \
                   let ::serde::Value::Str(s) = tag else {{ return {e_tag}; }}; \
                   match s.as_str() {{ {data_arms} {unit_arms} _ => {e_var} }} }}, \
                 _ => {e_shape} }}",
                unit_arms = unit_arms.join(" "),
                data_arms = data_arms.join(" "),
                e_var = err("known variant name"),
                e_tag = err("string variant tag"),
                e_shape = err("enum representation"),
            )
        }
    };
    format!(
        "#[automatically_derived] impl{impl_g} ::serde::Deserialize for {name}{ty_g} {{\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }} }}"
    )
}
