//! Offline stand-in for `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! tuple strategies, [`collection::vec`], [`option::of`],
//! [`Strategy::prop_map`] / [`Strategy::prop_perturb`], `any::<T>()`,
//! and the `prop_assert*` / `prop_assume` macros.
//!
//! Cases are generated from a deterministic per-test seed (FNV hash of
//! the test name mixed with the case index), so failures reproduce
//! exactly across runs. There is **no shrinking**: a failing case
//! reports its test name and case index instead.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the execution is a counterexample.
    Fail(String),
    /// The case was rejected by `prop_assume!` and does not count.
    Reject,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, handing it a private RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, StdRng) -> O,
    {
        Perturb { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value, StdRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        let value = self.inner.generate(rng);
        let child = StdRng::seed_from_u64(rng.next_u64());
        (self.f)(value, child)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A0, A1)
    (A0, A1, A2)
    (A0, A1, A2, A3)
    (A0, A1, A2, A3, A4)
    (A0, A1, A2, A3, A4, A5)
    (A0, A1, A2, A3, A4, A5, A6)
    (A0, A1, A2, A3, A4, A5, A6, A7)
}

/// Types with a whole-domain `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly random value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u32()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as i64
    }
}

/// Whole-domain strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{SampleUniform, Strategy};
    use rand::rngs::StdRng;
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed length or a range.
    pub trait IntoSize {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSize for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSize for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            usize::sample_range(rng, self.start, self.end)
        }
    }

    /// Strategy for `Vec`s of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy generating `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_ratio(3, 4) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Deterministic per-case RNG: FNV-1a of the test name, mixed with the
/// case index. Exposed for the [`proptest!`] macro expansion.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Defines property tests. See the crate docs for the supported
/// grammar (a subset of upstream proptest's).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        let ($($arg,)*) = ($( $crate::Strategy::generate(&($strat), &mut rng), )*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {}: case {} of {} failed: {}",
                                stringify!($name), case, config.cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})", format!($($fmt)+), l, r,
            )));
        }
    }};
}

/// Skips the current case (it counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Strategy;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0u64..100, 0.0f64..1.0);
        let a: Vec<_> = (0..5)
            .map(|c| s.generate(&mut super::case_rng("t", c)))
            .collect();
        let b: Vec<_> = (0..5)
            .map(|c| s.generate(&mut super::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "different cases draw different values");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_and_perturb_compose(
            (a, b) in (0u64..50, 0u64..50).prop_map(|(a, b)| (a + 1, b + 1)),
            extra in (0u32..5).prop_perturb(|base, mut rng| {
                base + u32::from(rng.random_bool(0.5))
            }),
        ) {
            prop_assert!(a >= 1 && b >= 1);
            prop_assert!(extra <= 5);
        }
    }
}
