//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] — with a
//! simple wall-clock sampler: warm up once, then time batches until a
//! time budget is spent, and report the per-iteration mean and minimum.
//! No statistics, plots, or baselines.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.sample_size, &mut f);
        println!("{name:<40} {report}");
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_bench(self.sample_size, &mut |b| f(b, input));
        println!("{:<40} {report}", format!("{}/{}", self.name, id));
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.sample_size, &mut f);
        println!("{:<40} {report}", format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Label for one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` label.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, storing one sample per invocation batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: target ~5ms per sample so
        // fast closures are batched and slow ones sampled once.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_sample as u64;
        let n = self.samples.capacity();
        for _ in 0..n {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(t.elapsed() / self.iters_per_sample as u32);
        }
    }
}

struct Report {
    mean: Duration,
    min: Duration,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "time: [mean {:>12?}  min {:>12?}]", self.mean, self.min)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Report {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        // The closure never called `iter`; report zeros rather than panic.
        return Report {
            mean: Duration::ZERO,
            min: Duration::ZERO,
        };
    }
    let total: Duration = b.samples.iter().sum();
    Report {
        mean: total / b.samples.len() as u32,
        min: *b.samples.iter().min().unwrap(),
    }
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_nonzero_time() {
        let report = run_bench(3, &mut |b: &mut Bencher| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        assert!(report.mean > Duration::ZERO);
        assert!(report.min <= report.mean);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
