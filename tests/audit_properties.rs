//! Property tests for the audit subsystem: recorded-legal histories
//! are accepted by every checker, seeded mutations (drop an
//! invocation / swap invocation-response rounds / forge a response)
//! are rejected, and dropping a *response* — which merely turns the
//! op into a Jepsen `:info` maybe-op — keeps the history legal.

use proptest::prelude::*;
use virtual_infra::audit::{audit, drop_response, mutate, HistoryRecorder, Mutation};
use virtual_infra::core::vi::VnLayout;
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::{MobilityModel, Static};
use virtual_infra::radio::{AdversaryKind, RadioConfig};
use virtual_infra::traffic::{AppKind, DevicePlan, TrafficSpec, TrafficWorld};

fn arb_app() -> impl Strategy<Value = AppKind> {
    (0u8..4).prop_map(|i| AppKind::all()[i as usize])
}

/// One virtual node at (50, 50) with `n` static devices close by.
fn small_world(n: usize, seed: u64) -> TrafficWorld {
    let vn = Point::new(50.0, 50.0);
    let devices = (0..n)
        .map(|i| {
            let start = Point::new(49.4 + 0.4 * i as f64, 50.2);
            DevicePlan {
                start,
                mobility: Box::new(Static::new(start)) as Box<dyn MobilityModel>,
                spawn_at: None,
                crash_at: None,
            }
        })
        .collect();
    TrafficWorld {
        radio: RadioConfig::reliable(10.0, 20.0),
        layout: VnLayout::new(vec![vn], 2.5),
        seed,
        adversary: AdversaryKind::None,
        devices,
    }
}

proptest! {
    // Every case runs a full deployment plus up to five audits; keep
    // the count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Satellite requirement: each checker accepts the history its
    /// app actually recorded and rejects every applicable seeded
    /// mutation of it.
    #[test]
    fn checkers_accept_recorded_histories_and_reject_mutations(
        app in arb_app(),
        seed in 0u64..1_000,
        mutation_seed in 0u64..1_000,
    ) {
        let spec = TrafficSpec::open(2, 0.4, 25).with_query_fraction(0.5);
        let (out, history) = HistoryRecorder::record(app, small_world(3, seed), &spec);
        prop_assert!(out.summary.issued > 0);
        let report = audit(&history);
        prop_assert!(
            report.ok(),
            "{}: recorded history must pass: {:?}",
            app.name(),
            report.violations()
        );

        let mut applied = 0;
        for m in Mutation::all() {
            if let Some(broken) = mutate(&history, m, mutation_seed) {
                applied += 1;
                let verdict = audit(&broken);
                prop_assert!(
                    !verdict.ok(),
                    "{}: {m:?} mutation must be rejected",
                    app.name()
                );
            }
        }
        // Histories with any completion always admit Drop and Swap.
        if out.summary.completed > 0 {
            prop_assert!(applied >= 2, "{}: mutations must apply", app.name());
        }

        // Removing a response is NOT a corruption: the op becomes
        // concurrent-forever and the history stays legal.
        if let Some(looser) = drop_response(&history, mutation_seed) {
            let verdict = audit(&looser);
            prop_assert!(
                verdict.ok(),
                "{}: dropping a response must stay legal: {:?}",
                app.name(),
                verdict.violations()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The WGL checker passes every synthetic legal history and
    /// catches a planted stale read in any of them.
    #[test]
    fn wgl_accepts_legal_and_catches_planted_staleness(
        len in 10usize..200,
        seed in 0u64..1_000,
    ) {
        use virtual_infra::audit::{check_register, synthetic_history, LinResult, RegOp, RegOpKind};
        let mut ops = synthetic_history(len, seed);
        prop_assert_eq!(check_register(&ops), LinResult::Ok);
        // Plant a write + stale read after the end of the history.
        let t = ops.last().map(|o| o.inv + 10).unwrap_or(0);
        ops.push(RegOp { id: 900_000, kind: RegOpKind::Write { value: 77 }, inv: t, ret: t + 1 });
        ops.push(RegOp { id: 900_001, kind: RegOpKind::Read { returned: 0 }, inv: t + 3, ret: t + 4 });
        prop_assert!(matches!(
            check_register(&ops),
            LinResult::Violation { .. }
        ));
    }
}
