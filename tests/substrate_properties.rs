//! Property-based tests of the substrates: the radio channel model
//! (Properties 1–2) and the contention managers (Property 3).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use virtual_infra::contention::{
    Advice, BackoffCm, ChannelFeedback, ContentionManager, OracleCm, RegionalCm, RegionalConfig,
};
use virtual_infra::radio::adversary::{NoAdversary, RandomLoss};
use virtual_infra::radio::channel::{resolve_round, resolve_round_reference, Medium, TxIntent};
use virtual_infra::radio::geometry::{Point, Rect};
use virtual_infra::radio::mobility::{Billiard, MobilityModel, Waypoint};
use virtual_infra::radio::{NodeId, RadioConfig};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

/// Random placements + broadcast patterns for channel-law checks.
fn arb_round() -> impl Strategy<Value = (Vec<(Point, bool)>, u64, f64, f64)> {
    (
        proptest::collection::vec((arb_point(), any::<bool>()), 1..12),
        any::<u64>(),
        1.0f64..30.0,
        0.0f64..30.0,
    )
        .prop_map(|(nodes, seed, r1, extra)| (nodes, seed, r1, r1 + extra))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Property 1 (completeness) holds structurally: whenever a
    /// message broadcast within R1 of a node is not delivered to it,
    /// that node's detector reports a collision — even under an
    /// adversary.
    #[test]
    fn channel_completeness((nodes, seed, r1, r2) in arb_round(), drop_p in 0.0f64..1.0) {
        let cfg = RadioConfig { r1, r2, rcf: u64::MAX, racc: u64::MAX, ring_reports: true };
        let intents: Vec<TxIntent<u64>> = nodes.iter().enumerate().map(|(i, &(pos, tx))| TxIntent {
            node: NodeId::from(i),
            pos,
            payload: tx.then_some(i as u64),
        }).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adv = RandomLoss::new(drop_p, 0.0);
        let out = resolve_round(0, &cfg, &intents, &mut adv, &mut rng);
        for (j, rx) in out.iter().enumerate() {
            let received: Vec<usize> = rx.messages.iter().map(|&(src, _)| src.index()).collect();
            for (i, &(pos_i, tx_i)) in nodes.iter().enumerate() {
                if i == j || !tx_i {
                    continue;
                }
                let in_r1 = pos_i.within(nodes[j].0, r1);
                if in_r1 && !received.contains(&i) {
                    prop_assert!(rx.collision,
                        "node {j} lost an R1 message from {i} without detection");
                }
            }
        }
    }

    /// Deliveries obey the quasi-unit-disk law: a received message
    /// came from within R1, and no other broadcaster sat within R2 of
    /// the receiver; listeners never receive while broadcasting
    /// (except their own loopback).
    #[test]
    fn channel_delivery_law((nodes, seed, r1, r2) in arb_round()) {
        let cfg = RadioConfig::reliable(r1, r2);
        let intents: Vec<TxIntent<u64>> = nodes.iter().enumerate().map(|(i, &(pos, tx))| TxIntent {
            node: NodeId::from(i),
            pos,
            payload: tx.then_some(i as u64),
        }).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = resolve_round(0, &cfg, &intents, &mut NoAdversary, &mut rng);
        for (j, rx) in out.iter().enumerate() {
            for &(src, _) in &rx.messages {
                let i = src.index();
                if i == j {
                    continue; // loopback
                }
                prop_assert!(!nodes[j].1, "broadcaster {j} received a foreign message");
                prop_assert!(nodes[i].0.within(nodes[j].0, r1), "reception beyond R1");
                for (k, &(pos_k, tx_k)) in nodes.iter().enumerate() {
                    if tx_k && k != i && k != j {
                        prop_assert!(!pos_k.within(nodes[j].0, r2),
                            "delivery despite interferer {k} within R2 of {j}");
                    }
                }
            }
        }
    }

    /// Mobility models never exceed their declared vmax.
    #[test]
    fn mobility_respects_vmax(
        start in (5.0f64..95.0, 5.0f64..95.0),
        speed in 0.0f64..5.0,
        vel in (-3.0f64..3.0, -3.0f64..3.0),
        seed in any::<u64>(),
    ) {
        let bounds = Rect::square(100.0);
        let start = Point::new(start.0, start.1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut models: Vec<Box<dyn MobilityModel>> = vec![
            Box::new(Waypoint::new(start, speed, bounds)),
            Box::new(Billiard::new(start, vel, bounds)),
        ];
        for m in &mut models {
            let mut prev = m.advance(0, &mut rng);
            for round in 1..100 {
                let next = m.advance(round, &mut rng);
                prop_assert!(prev.distance(next) <= m.vmax() + 1e-9);
                prop_assert!(bounds.contains(next));
                prev = next;
            }
        }
    }

    /// Property 3(1): the stabilized oracle never advises two
    /// contenders active in the same round, whatever subset contends.
    #[test]
    fn oracle_at_most_one_active(
        pattern in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 5), 1..20),
    ) {
        let mut cm = OracleCm::perfect();
        let slots: Vec<_> = (0..5).map(|_| cm.register()).collect();
        for (round, mask) in pattern.iter().enumerate() {
            let active = slots.iter().zip(mask)
                .filter(|&(_, &contends)| contends)
                .filter(|&(&s, _)| cm.contend(s, round as u64, Point::ORIGIN).is_active())
                .count();
            prop_assert!(active <= 1, "round {round}: {active} active");
        }
    }

    /// Property 3(3) for the regional manager: advice is Active only
    /// for in-region contenders, and never two at once.
    #[test]
    fn regional_respects_region_and_uniqueness(
        positions in proptest::collection::vec(arb_point(), 2..8),
        rounds in 1u64..30,
    ) {
        let cfg = RegionalConfig {
            location: Point::new(50.0, 50.0),
            radius: 10.0,
            lease: 6,
            stabilize_at: 0,
        };
        let mut cm = RegionalCm::new(cfg);
        let slots: Vec<_> = positions.iter().map(|_| cm.register()).collect();
        for round in 0..rounds {
            let mut active = 0;
            for (i, &slot) in slots.iter().enumerate() {
                let advice = cm.contend(slot, round, positions[i]);
                if advice == Advice::Active {
                    active += 1;
                    prop_assert!(
                        positions[i].within(cfg.location, cfg.radius),
                        "out-of-region node advised active"
                    );
                }
            }
            prop_assert!(active <= 1, "round {round}: {active} active");
        }
    }

    /// Differential law: the grid-indexed [`Medium`] is observationally
    /// identical to the naive reference resolver — same receptions,
    /// same collision indications, and the same RNG stream afterwards
    /// (proving the adversary was consulted for exactly the same
    /// queries in the same order) — across randomized positions, radii,
    /// stabilization points, adversaries, seeds, and multiple rounds
    /// through one reused `Medium`.
    #[test]
    fn medium_matches_reference_resolver(
        nodes in proptest::collection::vec((arb_point(), any::<bool>()), 1..80),
        seed in any::<u64>(),
        r1 in 1.0f64..30.0,
        extra in 0.0f64..30.0,
        rcf in 0u64..6,
        racc in 0u64..6,
        ring_reports in any::<bool>(),
        drop_p in 0.0f64..1.0,
        spurious_p in 0.0f64..0.6,
    ) {
        let cfg = RadioConfig { r1, r2: r1 + extra, rcf, racc, ring_reports };
        let mut medium = Medium::new(cfg);
        let mut rng_fast = StdRng::seed_from_u64(seed);
        let mut rng_ref = StdRng::seed_from_u64(seed);
        let mut adv_fast = RandomLoss::new(drop_p, spurious_p);
        let mut adv_ref = RandomLoss::new(drop_p, spurious_p);

        // Several rounds through one Medium (exercising buffer reuse),
        // with drifting positions, crossing the rcf/racc thresholds.
        for round in 0..6u64 {
            let drift = round as f64 * 0.7;
            let intents: Vec<TxIntent<u64>> = nodes.iter().enumerate().map(|(i, &(pos, tx))| {
                TxIntent {
                    node: NodeId::from(i),
                    pos: Point::new(pos.x + drift, pos.y - drift),
                    payload: (tx ^ (round % 3 == i as u64 % 3)).then_some(i as u64),
                }
            }).collect();

            let fast = medium.resolve(round, &intents, &mut adv_fast, &mut rng_fast);
            let slow = resolve_round_reference(round, &cfg, &intents, &mut adv_ref, &mut rng_ref);

            prop_assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                prop_assert_eq!(f.node, s.node);
                prop_assert_eq!(f.collision, s.collision,
                    "round {}: detector mismatch at {}", round, f.node);
                prop_assert_eq!(&f.messages, &s.messages,
                    "round {}: reception mismatch at {}", round, f.node);
            }
            // Byte-for-byte RNG agreement: both paths consumed exactly
            // the same adversary randomness.
            prop_assert_eq!(&rng_fast, &rng_ref, "round {}: RNG streams diverged", round);
        }
    }

    /// Backoff capture: in a clique with a stable contender set, the
    /// tail of the execution is dominated by single-active rounds.
    #[test]
    fn backoff_converges(seed in any::<u64>(), n in 2usize..7) {
        let mut cm = BackoffCm::with_seed(seed);
        let slots: Vec<_> = (0..n).map(|_| cm.register()).collect();
        let mut single = 0;
        let total = 250u64;
        for round in 0..total {
            let advice: Vec<bool> = slots.iter()
                .map(|&s| cm.contend(s, round, Point::ORIGIN).is_active())
                .collect();
            let active = advice.iter().filter(|&&a| a).count();
            if round >= 150 && active == 1 {
                single += 1;
            }
            for (i, &s) in slots.iter().enumerate() {
                let fb = match (advice[i], active) {
                    (true, 1) => ChannelFeedback::TxSucceeded,
                    (true, _) => ChannelFeedback::TxCollided,
                    (false, 0) => ChannelFeedback::Quiet,
                    (false, 1) => ChannelFeedback::HeardOther,
                    (false, _) => ChannelFeedback::HeardCollision,
                };
                cm.observe(s, round, fb);
            }
        }
        prop_assert!(single as f64 / 100.0 > 0.85,
            "only {single}/100 tail rounds had a single leader");
    }
}
