//! Property-based tests of the substrates: the radio channel model
//! (Properties 1–2) and the contention managers (Property 3).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use virtual_infra::contention::{
    Advice, BackoffCm, ChannelFeedback, ContentionManager, OracleCm, RegionalCm, RegionalConfig,
};
use virtual_infra::radio::adversary::{NoAdversary, RandomLoss};
use virtual_infra::radio::channel::{
    resolve_round, resolve_round_reference, Medium, ReceptionBuffer, TopologyDelta, TxIntent,
};
use virtual_infra::radio::geometry::{Point, Rect, SpatialGrid};
use virtual_infra::radio::mobility::{Billiard, MobilityModel, Static, Waypoint};
use virtual_infra::radio::{
    Engine, EngineConfig, NodeId, NodeSpec, Process, RadioConfig, RoundCtx, RoundReception,
};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

/// Random placements + broadcast patterns for channel-law checks.
fn arb_round() -> impl Strategy<Value = (Vec<(Point, bool)>, u64, f64, f64)> {
    (
        proptest::collection::vec((arb_point(), any::<bool>()), 1..12),
        any::<u64>(),
        1.0f64..30.0,
        0.0f64..30.0,
    )
        .prop_map(|(nodes, seed, r1, extra)| (nodes, seed, r1, r1 + extra))
}

/// Records everything a protocol can observe (message stream +
/// collision count) — the probe of the engine-level differentials.
struct Recorder {
    chatty: bool,
    heard: Vec<u64>,
    collisions: u64,
}

impl Recorder {
    fn new(chatty: bool) -> Self {
        Recorder {
            chatty,
            heard: Vec::new(),
            collisions: 0,
        }
    }
}

impl Process<u64> for Recorder {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<u64> {
        (self.chatty && ctx.round.is_multiple_of(2)).then_some(ctx.round)
    }
    fn deliver(&mut self, _ctx: &RoundCtx, rx: RoundReception<'_, u64>) {
        self.heard.extend_from_slice(rx.messages);
        if rx.collision {
            self.collisions += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Property 1 (completeness) holds structurally: whenever a
    /// message broadcast within R1 of a node is not delivered to it,
    /// that node's detector reports a collision — even under an
    /// adversary.
    #[test]
    fn channel_completeness((nodes, seed, r1, r2) in arb_round(), drop_p in 0.0f64..1.0) {
        let cfg = RadioConfig { r1, r2, rcf: u64::MAX, racc: u64::MAX, ring_reports: true };
        let intents: Vec<TxIntent<u64>> = nodes.iter().enumerate().map(|(i, &(pos, tx))| TxIntent {
            node: NodeId::from(i),
            pos,
            payload: tx.then_some(i as u64),
        }).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adv = RandomLoss::new(drop_p, 0.0);
        let out = resolve_round(0, &cfg, &intents, &mut adv, &mut rng);
        for (j, rx) in out.iter().enumerate() {
            let received: Vec<usize> = rx.messages.iter().map(|&(src, _)| src.index()).collect();
            for (i, &(pos_i, tx_i)) in nodes.iter().enumerate() {
                if i == j || !tx_i {
                    continue;
                }
                let in_r1 = pos_i.within(nodes[j].0, r1);
                if in_r1 && !received.contains(&i) {
                    prop_assert!(rx.collision,
                        "node {j} lost an R1 message from {i} without detection");
                }
            }
        }
    }

    /// Deliveries obey the quasi-unit-disk law: a received message
    /// came from within R1, and no other broadcaster sat within R2 of
    /// the receiver; listeners never receive while broadcasting
    /// (except their own loopback).
    #[test]
    fn channel_delivery_law((nodes, seed, r1, r2) in arb_round()) {
        let cfg = RadioConfig::reliable(r1, r2);
        let intents: Vec<TxIntent<u64>> = nodes.iter().enumerate().map(|(i, &(pos, tx))| TxIntent {
            node: NodeId::from(i),
            pos,
            payload: tx.then_some(i as u64),
        }).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = resolve_round(0, &cfg, &intents, &mut NoAdversary, &mut rng);
        for (j, rx) in out.iter().enumerate() {
            for &(src, _) in &rx.messages {
                let i = src.index();
                if i == j {
                    continue; // loopback
                }
                prop_assert!(!nodes[j].1, "broadcaster {j} received a foreign message");
                prop_assert!(nodes[i].0.within(nodes[j].0, r1), "reception beyond R1");
                for (k, &(pos_k, tx_k)) in nodes.iter().enumerate() {
                    if tx_k && k != i && k != j {
                        prop_assert!(!pos_k.within(nodes[j].0, r2),
                            "delivery despite interferer {k} within R2 of {j}");
                    }
                }
            }
        }
    }

    /// Mobility models never exceed their declared vmax.
    #[test]
    fn mobility_respects_vmax(
        start in (5.0f64..95.0, 5.0f64..95.0),
        speed in 0.0f64..5.0,
        vel in (-3.0f64..3.0, -3.0f64..3.0),
        seed in any::<u64>(),
    ) {
        let bounds = Rect::square(100.0);
        let start = Point::new(start.0, start.1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut models: Vec<Box<dyn MobilityModel>> = vec![
            Box::new(Waypoint::new(start, speed, bounds)),
            Box::new(Billiard::new(start, vel, bounds)),
        ];
        for m in &mut models {
            let mut prev = m.advance(0, &mut rng);
            for round in 1..100 {
                let next = m.advance(round, &mut rng);
                prop_assert!(prev.distance(next) <= m.vmax() + 1e-9);
                prop_assert!(bounds.contains(next));
                prev = next;
            }
        }
    }

    /// Property 3(1): the stabilized oracle never advises two
    /// contenders active in the same round, whatever subset contends.
    #[test]
    fn oracle_at_most_one_active(
        pattern in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 5), 1..20),
    ) {
        let mut cm = OracleCm::perfect();
        let slots: Vec<_> = (0..5).map(|_| cm.register()).collect();
        for (round, mask) in pattern.iter().enumerate() {
            let active = slots.iter().zip(mask)
                .filter(|&(_, &contends)| contends)
                .filter(|&(&s, _)| cm.contend(s, round as u64, Point::ORIGIN).is_active())
                .count();
            prop_assert!(active <= 1, "round {round}: {active} active");
        }
    }

    /// Property 3(3) for the regional manager: advice is Active only
    /// for in-region contenders, and never two at once.
    #[test]
    fn regional_respects_region_and_uniqueness(
        positions in proptest::collection::vec(arb_point(), 2..8),
        rounds in 1u64..30,
    ) {
        let cfg = RegionalConfig {
            location: Point::new(50.0, 50.0),
            radius: 10.0,
            lease: 6,
            stabilize_at: 0,
        };
        let mut cm = RegionalCm::new(cfg);
        let slots: Vec<_> = positions.iter().map(|_| cm.register()).collect();
        for round in 0..rounds {
            let mut active = 0;
            for (i, &slot) in slots.iter().enumerate() {
                let advice = cm.contend(slot, round, positions[i]);
                if advice == Advice::Active {
                    active += 1;
                    prop_assert!(
                        positions[i].within(cfg.location, cfg.radius),
                        "out-of-region node advised active"
                    );
                }
            }
            prop_assert!(active <= 1, "round {round}: {active} active");
        }
    }

    /// Differential law: the grid-indexed [`Medium`] is observationally
    /// identical to the naive reference resolver — same receptions,
    /// same collision indications, and the same RNG stream afterwards
    /// (proving the adversary was consulted for exactly the same
    /// queries in the same order) — across randomized positions, radii,
    /// stabilization points, adversaries, seeds, and multiple rounds
    /// through one reused `Medium`.
    #[test]
    fn medium_matches_reference_resolver(
        nodes in proptest::collection::vec((arb_point(), any::<bool>()), 1..80),
        seed in any::<u64>(),
        r1 in 1.0f64..30.0,
        extra in 0.0f64..30.0,
        rcf in 0u64..6,
        racc in 0u64..6,
        ring_reports in any::<bool>(),
        drop_p in 0.0f64..1.0,
        spurious_p in 0.0f64..0.6,
    ) {
        let cfg = RadioConfig { r1, r2: r1 + extra, rcf, racc, ring_reports };
        let mut medium = Medium::new(cfg);
        let mut rng_fast = StdRng::seed_from_u64(seed);
        let mut rng_ref = StdRng::seed_from_u64(seed);
        let mut adv_fast = RandomLoss::new(drop_p, spurious_p);
        let mut adv_ref = RandomLoss::new(drop_p, spurious_p);

        // Several rounds through one Medium (exercising buffer reuse),
        // with drifting positions, crossing the rcf/racc thresholds.
        for round in 0..6u64 {
            let drift = round as f64 * 0.7;
            let intents: Vec<TxIntent<u64>> = nodes.iter().enumerate().map(|(i, &(pos, tx))| {
                TxIntent {
                    node: NodeId::from(i),
                    pos: Point::new(pos.x + drift, pos.y - drift),
                    payload: (tx ^ (round % 3 == i as u64 % 3)).then_some(i as u64),
                }
            }).collect();

            let fast = medium.resolve(round, &intents, &mut adv_fast, &mut rng_fast);
            let slow = resolve_round_reference(round, &cfg, &intents, &mut adv_ref, &mut rng_ref);

            prop_assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                prop_assert_eq!(f.node, s.node);
                prop_assert_eq!(f.collision, s.collision,
                    "round {}: detector mismatch at {}", round, f.node);
                prop_assert_eq!(&f.messages, &s.messages,
                    "round {}: reception mismatch at {}", round, f.node);
            }
            // Byte-for-byte RNG agreement: both paths consumed exactly
            // the same adversary randomness.
            prop_assert_eq!(&rng_fast, &rng_ref, "round {}: RNG streams diverged", round);
        }
    }

    /// Satellite property of the hot-path overhaul: a spatial grid
    /// maintained incrementally (random interleavings of moves,
    /// inserts, and swap-removes) is byte-identical — query order
    /// included — to a grid rebuilt from scratch over the same points.
    #[test]
    fn incremental_grid_matches_rebuilt_grid(
        initial in proptest::collection::vec(arb_point(), 1..30),
        ops in proptest::collection::vec((0u8..3, arb_point(), any::<usize>()), 1..40),
        cell in 3.0f64..40.0,
        radius in 0.5f64..50.0,
    ) {
        let mut grid = SpatialGrid::new(cell);
        grid.rebuild(&initial);
        let mut mirror = initial.clone();

        for (kind, p, index) in ops {
            match kind {
                0 => {
                    let idx = grid.insert(p);
                    prop_assert_eq!(idx as usize, mirror.len());
                    mirror.push(p);
                }
                1 if !mirror.is_empty() => {
                    let idx = index % mirror.len();
                    grid.remove(idx as u32);
                    mirror.swap_remove(idx);
                }
                _ if !mirror.is_empty() => {
                    let idx = index % mirror.len();
                    grid.move_point(idx as u32, p);
                    mirror[idx] = p;
                }
                _ => {}
            }

            // A from-scratch grid over the mirrored points must agree
            // with the incrementally maintained one on every query,
            // including result order.
            let mut rebuilt = SpatialGrid::new(cell);
            rebuilt.rebuild(&mirror);
            prop_assert_eq!(grid.len(), mirror.len());
            let mut centers = vec![p, Point::new(0.0, 0.0)];
            centers.extend(mirror.first().copied());
            for center in centers {
                let (mut inc, mut scratch) = (Vec::new(), Vec::new());
                grid.query_within(center, radius, &mut inc);
                rebuilt.query_within(center, radius, &mut scratch);
                prop_assert_eq!(&inc, &scratch, "query mismatch at {}", center);
                let (mut inc_d2, mut scratch_d2) = (Vec::new(), Vec::new());
                grid.query_within_d2(center, radius, &mut inc_d2);
                rebuilt.query_within_d2(center, radius, &mut scratch_d2);
                prop_assert_eq!(&inc_d2, &scratch_d2, "d2 query mismatch at {}", center);
            }
        }
    }

    /// Differential law for the hot path: the cached-topology resolver
    /// ([`Medium::resolve_round_cached`]) is observationally identical
    /// to the naive reference resolver — same receptions, same
    /// collision indications, same RNG stream — across drifting
    /// positions (exercising the surgical-move path), mass movement
    /// (the churn fallback), periodic forced rebuilds, varying
    /// broadcast patterns, stabilization thresholds, and adversaries.
    #[test]
    fn cached_medium_matches_reference_resolver(
        nodes in proptest::collection::vec((arb_point(), any::<bool>()), 1..60),
        seed in any::<u64>(),
        r1 in 1.0f64..30.0,
        extra in 0.0f64..30.0,
        rcf in 0u64..6,
        racc in 0u64..6,
        ring_reports in any::<bool>(),
        drop_p in 0.0f64..1.0,
        spurious_p in 0.0f64..0.6,
        mover_stride in 1usize..8,
    ) {
        let cfg = RadioConfig { r1, r2: r1 + extra, rcf, racc, ring_reports };
        let mut medium = Medium::new(cfg);
        let mut soa = ReceptionBuffer::new();
        let mut rng_fast = StdRng::seed_from_u64(seed);
        let mut rng_ref = StdRng::seed_from_u64(seed);
        let mut adv_fast = RandomLoss::new(drop_p, spurious_p);
        let mut adv_ref = RandomLoss::new(drop_p, spurious_p);

        let mut positions: Vec<Point> = nodes.iter().map(|&(p, _)| p).collect();
        let mut intents: Vec<TxIntent<u64>> = Vec::new();
        let mut moved: Vec<u32> = Vec::new();
        for round in 0..8u64 {
            // Every `mover_stride`-th node drifts this round; stride 1
            // moves everyone (churn fallback), larger strides exercise
            // the surgical updates.
            moved.clear();
            if round > 0 {
                for (i, pos) in positions.iter_mut().enumerate() {
                    if (i + round as usize).is_multiple_of(mover_stride) {
                        let next = Point::new(pos.x + 0.9, pos.y - 0.4);
                        *pos = next;
                        moved.push(i as u32);
                    }
                }
            }
            intents.clear();
            intents.extend(nodes.iter().enumerate().map(|(i, &(_, tx))| TxIntent {
                node: NodeId::from(i),
                pos: positions[i],
                payload: (tx ^ (round % 3 == i as u64 % 3)).then_some(i as u64),
            }));
            let delta = if round == 0 || round == 5 {
                TopologyDelta::Rebuild
            } else if moved.is_empty() {
                TopologyDelta::Unchanged
            } else {
                TopologyDelta::Moved(&moved)
            };

            medium.resolve_round_cached(round, &intents, delta, &mut adv_fast, &mut rng_fast, &mut soa);
            let fast = soa.to_attributed();
            let slow = resolve_round_reference(round, &cfg, &intents, &mut adv_ref, &mut rng_ref);

            prop_assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                prop_assert_eq!(f.node, s.node);
                prop_assert_eq!(f.collision, s.collision,
                    "round {}: detector mismatch at {}", round, f.node);
                prop_assert_eq!(&f.messages, &s.messages,
                    "round {}: reception mismatch at {}", round, f.node);
            }
            prop_assert_eq!(&rng_fast, &rng_ref, "round {}: RNG streams diverged", round);
        }
    }

    /// Differential law for tile-sharded parallel resolution: at any
    /// worker count the sharded resolver is byte-identical to the
    /// sequential one — receptions, collision indications, and the RNG
    /// stream — across drifting positions (surgical updates), mass
    /// movement (`mover_stride == 1` hits the broadcaster-index churn
    /// fallback), forced re-anchors, and adversaries. The shard
    /// threshold is lowered to 1 so toy-sized rounds actually take the
    /// parallel path whenever the grid has rows to band.
    #[test]
    fn sharded_medium_matches_sequential(
        nodes in proptest::collection::vec((arb_point(), any::<bool>()), 1..60),
        seed in any::<u64>(),
        r1 in 1.0f64..30.0,
        extra in 0.0f64..30.0,
        rcf in 0u64..6,
        racc in 0u64..6,
        ring_reports in any::<bool>(),
        drop_p in 0.0f64..1.0,
        spurious_p in 0.0f64..0.6,
        mover_stride in 1usize..8,
        worker_pick in 0usize..4,
    ) {
        let workers = [1usize, 2, 3, 7][worker_pick];
        let cfg = RadioConfig { r1, r2: r1 + extra, rcf, racc, ring_reports };
        let mut medium_seq = Medium::new(cfg);
        let mut medium_shard = Medium::new(cfg);
        medium_shard.set_workers(workers);
        medium_shard.set_shard_min_slots(1);
        let mut soa_seq = ReceptionBuffer::new();
        let mut soa_shard = ReceptionBuffer::new();
        let mut rng_seq = StdRng::seed_from_u64(seed);
        let mut rng_shard = StdRng::seed_from_u64(seed);
        let mut adv_seq = RandomLoss::new(drop_p, spurious_p);
        let mut adv_shard = RandomLoss::new(drop_p, spurious_p);

        let mut positions: Vec<Point> = nodes.iter().map(|&(p, _)| p).collect();
        let mut intents: Vec<TxIntent<u64>> = Vec::new();
        let mut moved: Vec<u32> = Vec::new();
        for round in 0..8u64 {
            moved.clear();
            if round > 0 {
                for (i, pos) in positions.iter_mut().enumerate() {
                    if (i + round as usize).is_multiple_of(mover_stride) {
                        let next = Point::new(pos.x + 0.9, pos.y - 0.4);
                        *pos = next;
                        moved.push(i as u32);
                    }
                }
            }
            intents.clear();
            intents.extend(nodes.iter().enumerate().map(|(i, &(_, tx))| TxIntent {
                node: NodeId::from(i),
                pos: positions[i],
                payload: (tx ^ (round % 3 == i as u64 % 3)).then_some(i as u64),
            }));
            let delta = if round == 0 || round == 5 {
                TopologyDelta::Rebuild
            } else if moved.is_empty() {
                TopologyDelta::Unchanged
            } else {
                TopologyDelta::Moved(&moved)
            };

            medium_seq.resolve_round_cached(
                round, &intents, delta, &mut adv_seq, &mut rng_seq, &mut soa_seq);
            medium_shard.resolve_round_cached(
                round, &intents, delta, &mut adv_shard, &mut rng_shard, &mut soa_shard);

            prop_assert_eq!(&soa_shard.to_attributed(), &soa_seq.to_attributed(),
                "round {}: receptions diverged at {} workers", round, workers);
            prop_assert_eq!(&rng_shard, &rng_seq,
                "round {}: RNG streams diverged at {} workers", round, workers);
        }
    }

    /// Engine-level sharded differential: whole executions — stats,
    /// full traces, every process's observations — are byte-identical
    /// with intra-round workers enabled, across mixed mobility,
    /// spawns, crashes, and a lossy adversary.
    #[test]
    fn engine_sharded_path_matches_sequential(
        specs in proptest::collection::vec(
            (arb_point(), 0u8..4, any::<bool>(), 0u64..6, proptest::option::of(2u64..20)),
            1..14),
        seed in any::<u64>(),
        stabilize in 0u64..30,
        drop_p in 0.0f64..0.6,
        rounds in 5u64..30,
        worker_pick in 0usize..3,
    ) {
        let workers = [2usize, 3, 7][worker_pick];
        let build = |workers: usize| -> (Vec<(Vec<u64>, u64)>, String, virtual_infra::radio::ChannelStats) {
            let bounds = Rect::square(200.0);
            let mut engine: Engine<u64> = Engine::new(EngineConfig {
                radio: RadioConfig::stabilizing(10.0, 20.0, stabilize),
                seed,
                record_trace: true,
            });
            engine.set_workers(workers);
            engine.set_shard_min_slots(1);
            engine.set_adversary(Box::new(RandomLoss::new(drop_p, 0.1)));
            let mut ids = Vec::new();
            for &(start, mobility, chatty, spawn, crash) in &specs {
                let start = Point::new(start.x.min(190.0), start.y.min(190.0));
                let model: Box<dyn MobilityModel> = match mobility {
                    0 => Box::new(Static::new(start)),
                    1 => Box::new(Waypoint::new(start, 0.7, bounds)),
                    2 => Box::new(Waypoint::new(start, 0.0, bounds)),
                    _ => Box::new(Billiard::new(start, (0.5, -0.3), bounds)),
                };
                let mut spec = NodeSpec::new(model, Box::new(Recorder::new(chatty)));
                if spawn > 0 {
                    spec = spec.spawn_at(spawn);
                }
                if let Some(c) = crash {
                    spec = spec.crash_at(c);
                }
                ids.push(engine.add_node(spec));
            }
            engine.run(rounds);
            let observed = ids
                .iter()
                .map(|&id| {
                    let r: &Recorder = engine.process(id).expect("recorder");
                    (r.heard.clone(), r.collisions)
                })
                .collect();
            let trace = serde_json::to_string(engine.trace()).expect("serializable trace");
            (observed, trace, *engine.stats())
        };

        let sequential = build(1);
        let sharded = build(workers);
        prop_assert_eq!(sharded.2, sequential.2, "stats diverged at {} workers", workers);
        prop_assert_eq!(&sharded.1, &sequential.1, "traces diverged at {} workers", workers);
        prop_assert_eq!(&sharded.0, &sequential.0,
            "process observations diverged at {} workers", workers);
    }

    /// Engine-level differential: the overhauled round path (settled
    /// skip, cached topology, SoA receptions) and the legacy path
    /// produce byte-identical executions — stats, full traces, every
    /// process's observations — across mixed mobility, spawns,
    /// crashes, and a lossy adversary.
    #[test]
    fn engine_fast_path_matches_legacy(
        specs in proptest::collection::vec(
            (arb_point(), 0u8..4, any::<bool>(), 0u64..6, proptest::option::of(2u64..20)),
            1..14),
        seed in any::<u64>(),
        stabilize in 0u64..30,
        drop_p in 0.0f64..0.6,
        rounds in 5u64..30,
    ) {
        let build = |legacy: bool| -> (Vec<(Vec<u64>, u64)>, String, virtual_infra::radio::ChannelStats) {
            let bounds = Rect::square(200.0);
            let mut engine: Engine<u64> = Engine::new(EngineConfig {
                radio: RadioConfig::stabilizing(10.0, 20.0, stabilize),
                seed,
                record_trace: true,
            });
            engine.set_legacy_round_path(legacy);
            engine.set_adversary(Box::new(RandomLoss::new(drop_p, 0.1)));
            let mut ids = Vec::new();
            for &(start, mobility, chatty, spawn, crash) in &specs {
                let start = Point::new(start.x.min(190.0), start.y.min(190.0));
                let model: Box<dyn MobilityModel> = match mobility {
                    0 => Box::new(Static::new(start)),
                    1 => Box::new(Waypoint::new(start, 0.7, bounds)),
                    2 => Box::new(Waypoint::new(start, 0.0, bounds)),
                    _ => Box::new(Billiard::new(start, (0.5, -0.3), bounds)),
                };
                let mut spec = NodeSpec::new(model, Box::new(Recorder::new(chatty)));
                if spawn > 0 {
                    spec = spec.spawn_at(spawn);
                }
                if let Some(c) = crash {
                    spec = spec.crash_at(c);
                }
                ids.push(engine.add_node(spec));
            }
            engine.run(rounds);
            let observed = ids
                .iter()
                .map(|&id| {
                    let r: &Recorder = engine.process(id).expect("recorder");
                    (r.heard.clone(), r.collisions)
                })
                .collect();
            let trace = serde_json::to_string(engine.trace()).expect("serializable trace");
            (observed, trace, *engine.stats())
        };

        let fast = build(false);
        let legacy = build(true);
        prop_assert_eq!(fast.2, legacy.2, "stats diverged");
        prop_assert_eq!(&fast.1, &legacy.1, "traces diverged");
        prop_assert_eq!(&fast.0, &legacy.0, "process observations diverged");
    }

    /// Backoff capture: in a clique with a stable contender set, the
    /// tail of the execution is dominated by single-active rounds.
    #[test]
    fn backoff_converges(seed in any::<u64>(), n in 2usize..7) {
        let mut cm = BackoffCm::with_seed(seed);
        let slots: Vec<_> = (0..n).map(|_| cm.register()).collect();
        let mut single = 0;
        let total = 250u64;
        for round in 0..total {
            let advice: Vec<bool> = slots.iter()
                .map(|&s| cm.contend(s, round, Point::ORIGIN).is_active())
                .collect();
            let active = advice.iter().filter(|&&a| a).count();
            if round >= 150 && active == 1 {
                single += 1;
            }
            for (i, &s) in slots.iter().enumerate() {
                let fb = match (advice[i], active) {
                    (true, 1) => ChannelFeedback::TxSucceeded,
                    (true, _) => ChannelFeedback::TxCollided,
                    (false, 0) => ChannelFeedback::Quiet,
                    (false, 1) => ChannelFeedback::HeardOther,
                    (false, _) => ChannelFeedback::HeardCollision,
                };
                cm.observe(s, round, fb);
            }
        }
        prop_assert!(single as f64 / 100.0 > 0.85,
            "only {single}/100 tail rounds had a single leader");
    }
}
