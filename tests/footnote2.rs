//! The paper's footnote-2 scenario, scripted exactly.
//!
//! > "There are two nodes pi and pj that are unable to communicate due
//! > to interference. Node pi outputs a decision and fails. In this
//! > case, pj is required to behave in a manner consistent with this
//! > unknown decision!"
//!
//! The two veto phases make this work without pi ever hearing an
//! acknowledgement: pi finishes green only if nobody vetoed, which
//! (by completeness) means every other node reached at least yellow —
//! so every survivor's `prev-instance` pointer already commits to the
//! decided instance, and all their future histories include it.

use virtual_infra::contention::{OracleCm, SharedCm};
use virtual_infra::core::cha::{ChaMessage, ChaNode, Color, TaggedProposer};
use virtual_infra::radio::adversary::ScriptedAdversary;
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::Static;
use virtual_infra::radio::{Engine, EngineConfig, NodeSpec, RadioConfig};

#[test]
fn survivors_stay_consistent_with_a_dead_nodes_unacknowledged_decision() {
    // Instance 3 occupies rounds 6..=8; its veto-2 phase is round 8.
    // Nodes 1 and 2 suffer (spurious) collisions there and finish
    // yellow; node 0 — the leader — hears silence and finishes green.
    // Node 0 then crashes without ever exchanging another message.
    let veto2_round = 8;
    let mut engine: Engine<ChaMessage<u64>> = Engine::new(EngineConfig {
        // Accurate only after round 9, so the scripted false positives
        // at round 8 are admissible detector behaviour.
        radio: RadioConfig::reliable(10.0, 20.0).with_stabilization(0, 9),
        seed: 4,
        record_trace: false,
    });
    let mut adv = ScriptedAdversary::new();
    adv.inject_collision(veto2_round, 1.into());
    adv.inject_collision(veto2_round, 2.into());
    engine.set_adversary(Box::new(adv));

    let cm = SharedCm::new(OracleCm::perfect());
    let ids: Vec<_> = (0..3)
        .map(|i| {
            let spec = NodeSpec::new(
                Box::new(Static::new(Point::new(i as f64, 0.0))),
                Box::new(ChaNode::<u64>::new(
                    Box::new(TaggedProposer::new(i)),
                    cm.clone(),
                )) as Box<dyn virtual_infra::radio::Process<ChaMessage<u64>>>,
            );
            let spec = if i == 0 {
                spec.crash_at(veto2_round + 1) // dies right after deciding
            } else {
                spec
            };
            engine.add_node(spec)
        })
        .collect();

    engine.run(18); // instances 1..=6

    // Node 0 decided instance 3 (green) before dying.
    let dead: &ChaNode<u64> = engine.process(ids[0]).unwrap();
    let decision = dead.outputs().last().unwrap();
    assert_eq!(decision.instance, 3);
    assert_eq!(decision.color, Color::Green);
    let decided_value = *decision.history.as_ref().unwrap().get(3).unwrap();

    // The survivors finished instance 3 yellow — they output ⊥ and
    // never learned that node 0 decided.
    for &id in &ids[1..] {
        let node: &ChaNode<u64> = engine.process(id).unwrap();
        let at3 = &node.outputs()[2];
        assert_eq!(at3.color, Color::Yellow);
        assert!(at3.history.is_none(), "no output, no acknowledgement sent");
    }

    // Yet every history they ever output afterwards includes instance
    // 3 with exactly the dead node's decided value.
    for &id in &ids[1..] {
        let node: &ChaNode<u64> = engine.process(id).unwrap();
        let later: Vec<_> = node
            .outputs()
            .iter()
            .filter(|o| o.instance > 3 && o.decided())
            .collect();
        assert!(!later.is_empty(), "survivors keep deciding");
        for out in later {
            let h = out.history.as_ref().unwrap();
            assert_eq!(
                h.get(3),
                Some(&decided_value),
                "survivor's history at instance {} is consistent with the \
                 dead node's unacknowledged decision",
                out.instance
            );
        }
    }
}

/// The complementary direction: when the *other* nodes went orange
/// (veto-1 disruption), nobody may decide — the instance resolves to ⊥
/// everywhere, so there is no decision to be inconsistent with.
#[test]
fn orange_disruption_prevents_any_decision() {
    let veto1_round = 7; // instance 3's veto-1 phase
    let mut engine: Engine<ChaMessage<u64>> = Engine::new(EngineConfig {
        radio: RadioConfig::reliable(10.0, 20.0).with_stabilization(0, 8),
        seed: 4,
        record_trace: false,
    });
    let mut adv = ScriptedAdversary::new();
    for node in 0..3usize {
        adv.inject_collision(veto1_round, node.into());
    }
    engine.set_adversary(Box::new(adv));
    let cm = SharedCm::new(OracleCm::perfect());
    let ids: Vec<_> = (0..3)
        .map(|i| {
            engine.add_node(NodeSpec::new(
                Box::new(Static::new(Point::new(i as f64, 0.0))),
                Box::new(ChaNode::<u64>::new(
                    Box::new(TaggedProposer::new(i)),
                    cm.clone(),
                )),
            ))
        })
        .collect();
    engine.run(9);
    for &id in &ids {
        let node: &ChaNode<u64> = engine.process(id).unwrap();
        let at3 = &node.outputs()[2];
        assert_eq!(at3.color, Color::Orange);
        assert!(!at3.decided());
    }
}
