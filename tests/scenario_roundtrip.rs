//! Round-trip integration for the scenario subsystem: the shipped
//! `examples/scenarios.json` loads, runs, serializes back, reloads,
//! and replays to byte-identical outcome tables — proving scenarios
//! are pure data and sweeps are replayable.

use vi_scenario::{ScenarioSpec, SweepRunner};

fn shipped_specs() -> Vec<ScenarioSpec> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/scenarios.json");
    let text = std::fs::read_to_string(path).expect("examples/scenarios.json must exist");
    serde_json::from_str(&text).expect("examples/scenarios.json must parse")
}

#[test]
fn shipped_scenarios_load_run_and_replay_identically() {
    let specs = shipped_specs();
    assert!(specs.len() >= 2, "ship at least two demo scenarios");
    for spec in &specs {
        spec.validate().expect("shipped scenario must be valid");
    }

    let seeds = [1u64, 2];
    let runner = SweepRunner::new(2);
    let first = runner.run_matrix(&specs, &seeds);

    // Serialize the *specs* back out, reload, and replay: the specs
    // are self-contained, so the reloaded sweep must reproduce the
    // original outcome table byte for byte.
    let re_serialized = serde_json::to_string(&specs).expect("specs serialize");
    let reloaded: Vec<ScenarioSpec> = serde_json::from_str(&re_serialized).expect("specs reload");
    assert_eq!(reloaded, specs, "spec round-trip must be lossless");
    let replay = runner.run_matrix(&reloaded, &seeds);

    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&replay).unwrap(),
        "load-run-replay must be byte-identical"
    );
}

#[test]
fn shipped_scenarios_behave_as_documented() {
    let specs = shipped_specs();
    let outcomes = SweepRunner::auto().run_matrix(&specs, &[7]);
    let clique = &outcomes[0];
    assert_eq!(clique.scenario, "json_demo_clique");
    assert_eq!(clique.safety_violations(), 0, "lossy clique stays safe");
    assert!(
        clique.stabilized_kst.is_some(),
        "clique stabilizes after rcf"
    );
    let courier = &outcomes[1];
    assert_eq!(courier.scenario, "json_demo_courier");
    assert!(
        courier.decided_fraction > 0.5,
        "anchored virtual node stays mostly green ({})",
        courier.decided_fraction
    );
}
