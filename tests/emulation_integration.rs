//! Cross-crate integration tests of the full virtual-infrastructure
//! emulation: replica consistency, churn survival, crash tolerance,
//! state transfer, disruption recovery, and the client-visible
//! abstraction.

use virtual_infra::core::vi::{
    CollectorClient, CounterAutomaton, CounterState, VnId, VnLayout, World, WorldConfig,
};
use virtual_infra::radio::adversary::BurstLoss;
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::{DepartAt, Static};
use virtual_infra::radio::{NodeId, RadioConfig};

const VN: Point = Point::new(50.0, 50.0);

fn counter_world(seed: u64) -> World<CounterAutomaton> {
    let layout = VnLayout::new(vec![VN], 2.5);
    World::new(WorldConfig {
        radio: RadioConfig::reliable(10.0, 20.0),
        layout,
        automaton: CounterAutomaton,
        seed,
        record_trace: false,
    })
}

fn static_device(world: &mut World<CounterAutomaton>, dx: f64, dy: f64) -> NodeId {
    world.add_device(
        Box::new(Static::new(Point::new(VN.x + dx, VN.y + dy))),
        None,
    )
}

/// All replicas of a virtual node hold identical state whenever they
/// have folded to the same virtual round — the core replication
/// invariant, checked at every virtual round boundary.
#[test]
fn replicas_never_diverge() {
    let mut world = counter_world(1);
    let ids: Vec<NodeId> = (0..4)
        .map(|i| static_device(&mut world, 0.3 * i as f64 - 0.45, 0.2))
        .collect();
    // Also a client generating traffic for the counter to chew on.
    world.add_device(
        Box::new(Static::new(Point::new(VN.x, VN.y - 1.0))),
        Some(Box::new(CollectorClient::<u64>::default())),
    );
    for _ in 0..12 {
        world.run_virtual_rounds(1);
        let views: Vec<(CounterState, u64)> = ids
            .iter()
            .filter_map(|&id| world.device(id).vn_view())
            .map(|(s, f, _)| (s.clone(), f))
            .collect();
        for (i, (s, f)) in views.iter().enumerate() {
            for (s2, f2) in views.iter().skip(i + 1) {
                if f == f2 {
                    assert_eq!(s, s2, "replicas diverged at fold {f}");
                }
            }
        }
    }
}

/// The virtual node survives the crash of every original replica, as
/// long as replacements arrive in time — and its state carries over
/// through join transfers (it is the *virtual node's* state, not any
/// device's).
#[test]
fn virtual_node_outlives_every_founding_device() {
    let mut world = counter_world(2);
    let rpv = world.plan().rounds_per_vr();
    let founders: Vec<NodeId> = (0..3)
        .map(|i| {
            world.add_device_spec(
                Box::new(Static::new(Point::new(VN.x + 0.3 * i as f64, VN.y))),
                None,
                None,
                Some(10 * rpv + i), // all crash around vr 11
            )
        })
        .collect();
    // Replacements arrive at vr 8 (overlapping the founders).
    let heirs: Vec<NodeId> = (0..2)
        .map(|i| {
            world.add_device_spec(
                Box::new(Static::new(Point::new(VN.x - 0.3 * (i + 1) as f64, VN.y))),
                None,
                Some(7 * rpv),
                None,
            )
        })
        .collect();
    world.run_virtual_rounds(9);
    let (state_before, folded_before) = world.vn_state(VnId(0)).expect("alive before crashes");
    world.run_virtual_rounds(11);
    for &f in &founders {
        assert!(world.device(f).is_replica().is_none() || !world.engine().is_alive(f));
    }
    let (state_after, folded_after) = world.vn_state(VnId(0)).expect("alive after crashes");
    assert!(folded_after > folded_before, "progress continued");
    assert!(
        state_after.received >= state_before.received,
        "virtual-node state carried over, not reset"
    );
    let heir_replicas = heirs
        .iter()
        .filter(|&&id| world.device(id).is_replica() == Some(VnId(0)))
        .count();
    assert_eq!(heir_replicas, 2, "heirs took over the emulation");
    let (_, report) = world.vn_report(VnId(0));
    assert!(report.joins >= 2, "heirs joined by state transfer");
}

/// A burst of total message loss mid-run: safety throughout, and the
/// emulation resumes progress after the burst ends (the paper's
/// alternating stability periods).
#[test]
fn burst_disruption_recovers() {
    let layout = VnLayout::new(vec![VN], 2.5);
    let mut world = World::new(WorldConfig {
        radio: RadioConfig::stabilizing(10.0, 20.0, u64::MAX),
        layout,
        automaton: CounterAutomaton,
        seed: 3,
        record_trace: false,
    });
    // Burst of total loss + false detector reports between rounds
    // 200-280 (several virtual rounds).
    #[allow(clippy::single_range_in_vec_init)] // BurstLoss takes a list of burst windows
    let bursts = vec![200..280];
    world.set_adversary(Box::new(BurstLoss::new(bursts)));
    let ids: Vec<NodeId> = (0..3)
        .map(|i| static_device(&mut world, 0.3 * i as f64, 0.0))
        .collect();
    world.run_virtual_rounds(40);
    let (_, folded) = world.vn_state(VnId(0)).expect("alive");
    assert!(folded >= 35, "recovered and caught up: folded={folded}");
    let (_, report) = world.vn_report(VnId(0));
    assert!(report.bottom > 0, "the burst produced undecided instances");
    assert!(report.decided > report.bottom, "but most instances decided");
    // Replica agreement after recovery.
    let views: Vec<CounterState> = ids
        .iter()
        .filter_map(|&id| world.device(id).vn_view())
        .map(|(s, _, _)| s.clone())
        .collect();
    assert!(views.windows(2).all(|w| w[0] == w[1]));
}

/// Co-located clients of the same virtual node observe the same
/// virtual-node broadcasts (the "reliable base station" illusion of
/// Section 1.2) on a stable channel.
#[test]
fn co_located_clients_see_identical_vn_traffic() {
    let mut world = counter_world(4);
    for i in 0..2 {
        static_device(&mut world, 0.4 + 0.2 * i as f64, 0.0);
    }
    let c1 = world.add_device(
        Box::new(Static::new(Point::new(VN.x - 0.5, VN.y))),
        Some(Box::new(CollectorClient::<u64>::default())),
    );
    let c2 = world.add_device(
        Box::new(Static::new(Point::new(VN.x - 0.7, VN.y))),
        Some(Box::new(CollectorClient::<u64>::default())),
    );
    world.run_virtual_rounds(12);
    let log1 = &world
        .device(c1)
        .client::<CollectorClient<u64>>()
        .unwrap()
        .log;
    let log2 = &world
        .device(c2)
        .client::<CollectorClient<u64>>()
        .unwrap()
        .log;
    let msgs1: Vec<&u64> = log1.iter().flat_map(|r| &r.messages).collect();
    let msgs2: Vec<&u64> = log2.iter().flat_map(|r| &r.messages).collect();
    assert_eq!(msgs1, msgs2, "same virtual broadcasts observed");
    assert!(!msgs1.is_empty());
}

/// A device that wanders out of the region stops emulating; when it
/// wanders back it rejoins through the join protocol rather than
/// resuming its stale state.
#[test]
fn region_departure_forces_rejoin() {
    let mut world = counter_world(5);
    let rpv = world.plan().rounds_per_vr();
    // Two anchors.
    static_device(&mut world, 0.3, 0.0);
    static_device(&mut world, -0.3, 0.0);
    // A wanderer that leaves after vr 5 at a speed that exits the
    // region within ~2 virtual rounds.
    let wanderer = world.add_device(
        Box::new(DepartAt::new(
            Point::new(VN.x, VN.y + 0.5),
            (0.0, 1.0),
            2.6 / (2 * rpv) as f64,
            5 * rpv,
        )),
        None,
    );
    world.run_virtual_rounds(5);
    assert_eq!(world.device(wanderer).is_replica(), Some(VnId(0)));
    world.run_virtual_rounds(5);
    assert_eq!(
        world.device(wanderer).is_replica(),
        None,
        "left the region: no longer a replica"
    );
    // The virtual node is unaffected.
    assert_eq!(world.replica_count(VnId(0)), 2);
    let (_, folded) = world.vn_state(VnId(0)).unwrap();
    assert_eq!(folded, 10);
}

/// Determinism: identical seeds give byte-identical emulation results,
/// including under churn.
#[test]
fn emulation_is_deterministic() {
    let run = |seed: u64| {
        let mut world = counter_world(seed);
        let rpv = world.plan().rounds_per_vr();
        for i in 0..4u64 {
            world.add_device_spec(
                Box::new(Static::new(Point::new(VN.x + 0.2 * i as f64 - 0.3, VN.y))),
                None,
                Some(i * rpv),
                (i == 2).then_some(12 * rpv),
            );
        }
        world.run_virtual_rounds(16);
        let (state, folded) = world.vn_state(VnId(0)).expect("alive");
        (state, folded, *world.stats())
    };
    assert_eq!(run(77), run(77));
}
