//! Property-based tests of the virtual-infrastructure emulation:
//! randomized deployments, populations, churn, and disruption — the
//! replication invariants must hold in every generated world.

use proptest::prelude::*;
use virtual_infra::core::vi::{CounterAutomaton, CounterState, VnId, VnLayout, World, WorldConfig};
use virtual_infra::radio::adversary::BurstLoss;
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::Static;
use virtual_infra::radio::RadioConfig;

#[derive(Clone, Debug)]
struct Scenario {
    seed: u64,
    devices_per_vn: usize,
    vn_count: usize,
    vrs: u64,
    /// Optional burst of total loss `(start_vr, len_vrs)`.
    burst: Option<(u64, u64)>,
    /// Device lifecycle jitter: (index, spawn_vr, crash_vr).
    churn: Vec<(usize, u64, u64)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        2usize..5,
        1usize..4,
        8u64..20,
        proptest::option::of((2u64..10, 1u64..5)),
        proptest::collection::vec((0usize..12, 0u64..6, 8u64..18), 0..3),
    )
        .prop_map(
            |(seed, devices_per_vn, vn_count, vrs, burst, churn)| Scenario {
                seed,
                devices_per_vn,
                vn_count,
                vrs,
                burst,
                churn,
            },
        )
}

fn build(s: &Scenario) -> World<CounterAutomaton> {
    // Virtual nodes far enough apart to be independent cliques but
    // placed on one shared channel.
    let locations: Vec<Point> = (0..s.vn_count)
        .map(|i| Point::new(50.0 + 25.0 * i as f64, 50.0))
        .collect();
    let layout = VnLayout::new(locations.clone(), 2.5);
    let mut world = World::new(WorldConfig {
        radio: if s.burst.is_some() {
            RadioConfig::stabilizing(10.0, 20.0, u64::MAX)
        } else {
            RadioConfig::reliable(10.0, 20.0)
        },
        layout,
        automaton: CounterAutomaton,
        seed: s.seed,
        record_trace: false,
    });
    let rpv = world.plan().rounds_per_vr();
    if let Some((start, len)) = s.burst {
        let from = start * rpv;
        let to = (start + len) * rpv;
        #[allow(clippy::single_range_in_vec_init)] // BurstLoss takes burst windows
        let bursts = vec![from..to];
        world.set_adversary(Box::new(BurstLoss::new(bursts)));
    }
    let mut device_index = 0usize;
    for loc in &locations {
        for d in 0..s.devices_per_vn {
            let off = 0.25 + 0.3 * d as f64 / s.devices_per_vn as f64;
            let lifecycle = s
                .churn
                .iter()
                .find(|&&(idx, _, _)| idx == device_index)
                .map(|&(_, sp, cr)| (sp * rpv, cr * rpv));
            world.add_device_spec(
                Box::new(Static::new(Point::new(loc.x + off, loc.y - off / 2.0))),
                None,
                lifecycle.map(|(sp, _)| sp),
                lifecycle.map(|(_, cr)| cr),
            );
            device_index += 1;
        }
    }
    world
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The core replication invariant in every generated world:
    /// replicas of the same virtual node folded to the same virtual
    /// round hold identical state; folds never run ahead of completed
    /// virtual rounds; reports stay arithmetically consistent.
    #[test]
    fn replicas_agree_in_every_world(s in scenario()) {
        let mut world = build(&s);
        world.run_virtual_rounds(s.vrs);
        for vn in 0..s.vn_count {
            let vn = VnId(vn);
            let mut views: Vec<(CounterState, u64)> = Vec::new();
            for &id in &world.devices().to_vec() {
                if world.device(id).is_replica() == Some(vn) {
                    if let Some((st, folded, _)) = world.device(id).vn_view() {
                        prop_assert!(folded <= s.vrs, "fold beyond completed rounds");
                        views.push((st.clone(), folded));
                    }
                }
            }
            for (i, (st, f)) in views.iter().enumerate() {
                for (st2, f2) in views.iter().skip(i + 1) {
                    if f == f2 {
                        prop_assert_eq!(st, st2, "replica divergence at fold {}", f);
                    }
                }
            }
            let (_, report) = world.vn_report(vn);
            prop_assert!(
                report.decided + report.bottom <= s.vrs * (s.devices_per_vn as u64 + 2) * 2,
                "report counts are bounded by participation"
            );
        }
    }

    /// Without disruption or churn, every virtual node is fully live:
    /// all instances green once bootstrapped, and state folds to the
    /// last completed round.
    #[test]
    fn stable_worlds_are_fully_live(
        seed in any::<u64>(),
        devices in 2usize..5,
        vns in 1usize..4,
    ) {
        let s = Scenario {
            seed,
            devices_per_vn: devices,
            vn_count: vns,
            vrs: 12,
            burst: None,
            churn: vec![],
        };
        let mut world = build(&s);
        world.run_virtual_rounds(s.vrs);
        for vn in 0..vns {
            let (state, folded) = world.vn_state(VnId(vn)).expect("alive");
            prop_assert_eq!(folded, s.vrs, "fully caught up");
            // The counter automaton detects no collisions on a stable
            // channel once live (the bootstrap rounds may contain join
            // collisions, which are outside its lifetime).
            prop_assert_eq!(state.collisions, 0, "no virtual collisions when stable");
        }
    }

    /// Determinism across the full emulation stack: same scenario,
    /// same world, byte-for-byte.
    #[test]
    fn worlds_are_deterministic(s in scenario()) {
        let run = |s: &Scenario| {
            let mut world = build(s);
            world.run_virtual_rounds(s.vrs);
            let stats = *world.stats();
            let states: Vec<_> = (0..s.vn_count)
                .map(|vn| world.vn_state(VnId(vn)))
                .collect();
            (stats, states)
        };
        prop_assert_eq!(run(&s), run(&s));
    }
}
