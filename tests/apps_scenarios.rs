//! End-to-end application scenarios across crates: the paper's
//! motivating use cases exercised on the full stack (radio →
//! contention → CHA → emulation → application).

use virtual_infra::apps::georouting::{quantize, GeoRouterVn, InjectorClient};
use virtual_infra::apps::register::{ReaderClient, RegisterVn, WriterClient};
use virtual_infra::apps::tracking::{cell_of, QueryClient, ReporterClient, TrackingVn};
use virtual_infra::core::vi::{VnId, VnLayout, World, WorldConfig};
use virtual_infra::radio::adversary::BurstLoss;
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::{PatrolRoute, Static};
use virtual_infra::radio::RadioConfig;

/// A reporter that commutes between two virtual-node regions: both
/// virtual nodes end up knowing the object, each from the reports it
/// heard while the reporter was in radio range.
#[test]
fn tracking_across_regions() {
    let locs = vec![Point::new(30.0, 50.0), Point::new(170.0, 50.0)];
    let layout = VnLayout::new(locs.clone(), 2.5);
    let mut world = World::new(WorldConfig {
        radio: RadioConfig::reliable(40.0, 60.0),
        layout,
        automaton: TrackingVn,
        seed: 8,
        record_trace: false,
    });
    // Anchors for both virtual nodes.
    for loc in &locs {
        world.add_device(Box::new(Static::new(Point::new(loc.x + 0.4, loc.y))), None);
        world.add_device(Box::new(Static::new(Point::new(loc.x - 0.4, loc.y))), None);
    }
    // The commuting reporter: patrols between points near each vn.
    world.add_device(
        Box::new(PatrolRoute::new(
            vec![Point::new(35.0, 55.0), Point::new(165.0, 55.0)],
            4.0,
        )),
        Some(Box::new(ReporterClient::new(9, 1, 20.0))),
    );
    // A querier near vn1.
    let querier = world.add_device(
        Box::new(Static::new(Point::new(168.0, 53.0))),
        Some(Box::new(QueryClient::new(9, 4))),
    );
    world.run_virtual_rounds(40);

    for vn in [VnId(0), VnId(1)] {
        let (state, _) = world.vn_state(vn).expect("vn alive");
        assert!(
            state.objects.contains_key(&9),
            "{vn} should have heard reports"
        );
    }
    let q: &QueryClient = world.device(querier).client::<QueryClient>().unwrap();
    assert!(!q.answers.is_empty(), "query answered");
    let (_, Some(cell)) = q.answers.last().unwrap() else {
        panic!("answer should carry a cell");
    };
    // The answered cell is one the commuter actually visits.
    let visited = [
        cell_of(Point::new(35.0, 55.0), 20.0),
        cell_of(Point::new(165.0, 55.0), 20.0),
    ];
    assert!(
        visited.contains(cell) || cell.0 >= 1,
        "plausible cell: {cell:?}"
    );
}

/// The register survives replica churn without losing acknowledged
/// writes.
#[test]
fn register_survives_replica_rotation() {
    let vn = Point::new(50.0, 50.0);
    let layout = VnLayout::new(vec![vn], 2.5);
    let mut world = World::new(WorldConfig {
        radio: RadioConfig::reliable(10.0, 20.0),
        layout,
        automaton: RegisterVn,
        seed: 21,
        record_trace: false,
    });
    let rpv = world.plan().rounds_per_vr();
    // Three generations of relay devices, overlapping by 4 vrs.
    for gen in 0..3u64 {
        let spawn = gen * 8 * rpv;
        let crash = (gen * 8 + 12) * rpv;
        for d in 0..2u64 {
            world.add_device_spec(
                Box::new(Static::new(Point::new(vn.x + 0.2 + 0.2 * d as f64, vn.y))),
                None,
                Some(spawn),
                Some(crash),
            );
        }
    }
    // Writer and reader stay (they are clients; they also happen to
    // emulate while in region, adding to the replica pool).
    let writer = world.add_device(
        Box::new(Static::new(Point::new(vn.x - 0.4, vn.y))),
        Some(Box::new(WriterClient::new(500, 8))),
    );
    let reader = world.add_device(
        Box::new(Static::new(Point::new(vn.x, vn.y + 0.5))),
        Some(Box::new(ReaderClient::new(3))),
    );
    world.run_virtual_rounds(26);

    let w: &WriterClient = world.device(writer).client::<WriterClient>().unwrap();
    assert_eq!(w.ack_log, vec![1, 2, 3, 4, 5, 6, 7, 8], "all writes acked");
    let r: &ReaderClient = world.device(reader).client::<ReaderClient>().unwrap();
    let tags: Vec<u64> = r.read_log.iter().map(|&(t, _)| t).collect();
    assert!(
        tags.windows(2).all(|w| w[0] <= w[1]),
        "regular reads: {tags:?}"
    );
    let (state, _) = world.vn_state(VnId(0)).expect("register alive");
    assert_eq!((state.tag, state.value), (8, 508), "no acked write lost");
}

/// Routing under a disruption burst: loop freedom and at-most-once
/// delivery hold even when forwarding broadcasts are destroyed.
#[test]
fn routing_is_safe_under_bursts() {
    let locs = vec![
        Point::new(50.0, 50.0),
        Point::new(68.0, 50.0),
        Point::new(86.0, 50.0),
    ];
    let dst = quantize(locs[2]);
    let layout = VnLayout::new(locs.clone(), 2.5);
    let mut world = World::new(WorldConfig {
        radio: RadioConfig::stabilizing(40.0, 60.0, u64::MAX),
        layout,
        automaton: GeoRouterVn,
        seed: 30,
        record_trace: false,
    });
    world.set_adversary(Box::new(BurstLoss::new(vec![300..400, 700..760])));
    for loc in &locs {
        world.add_device(Box::new(Static::new(Point::new(loc.x + 0.5, loc.y))), None);
        world.add_device(Box::new(Static::new(Point::new(loc.x - 0.5, loc.y))), None);
    }
    world.add_device(
        Box::new(Static::new(Point::new(50.0, 51.0))),
        Some(Box::new(InjectorClient::new(dst, 42, 5))),
    );
    world.run_virtual_rounds(50);

    // Safety: never duplicated, never delivered at a non-destination.
    for vn in 0..3 {
        if let Some((state, _)) = world.vn_state(VnId(vn)) {
            if vn == 2 {
                assert!(state.delivered.len() <= 1, "at-most-once");
            } else {
                assert!(state.delivered.is_empty(), "vn{vn} is not the destination");
            }
            let mut seen = state.seen.clone();
            seen.dedup();
            assert_eq!(seen.len(), state.seen.len(), "forward-once per payload");
        }
    }
}
