//! The zero-allocation guarantee of the overhauled round path: once
//! buffers have warmed up, a steady-state engine round over a static
//! topology (tracing off, live monitoring disabled, non-allocating
//! processes) performs **zero** heap allocations.
//!
//! Measured with a counting global allocator, so this file must hold
//! exactly one `#[test]` — a sibling test running on another thread
//! would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use virtual_infra::radio::geometry::Point;
use virtual_infra::radio::mobility::Static;
use virtual_infra::radio::{
    Engine, EngineConfig, NodeSpec, Process, RadioConfig, RoundCtx, RoundReception,
};
use virtual_infra::telemetry::Monitor;

/// Counts every allocation and reallocation routed through the global
/// allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Broadcasts every third round; folds receptions into plain counters
/// (no heap use on either protocol path).
struct Counter {
    phase: u64,
    heard: u64,
    collisions: u64,
}

impl Process<u64> for Counter {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<u64> {
        (ctx.round + self.phase)
            .is_multiple_of(3)
            .then_some(self.phase)
    }
    fn deliver(&mut self, _ctx: &RoundCtx, rx: RoundReception<'_, u64>) {
        self.heard += rx.messages.len() as u64;
        if rx.collision {
            self.collisions += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    let n = 400;
    let side = (n as f64).sqrt() * 15.0;
    let mut engine: Engine<u64> = Engine::new(EngineConfig {
        radio: RadioConfig::reliable(10.0, 20.0),
        seed: 42,
        record_trace: false,
    });
    for i in 0..n {
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let x = (h % 10_000) as f64 / 10_000.0 * side;
        let y = ((h >> 32) % 10_000) as f64 / 10_000.0 * side;
        engine.add_node(NodeSpec::new(
            Box::new(Static::new(Point::new(x, y))),
            Box::new(Counter {
                phase: i as u64,
                heard: 0,
                collisions: 0,
            }),
        ));
    }

    // A disabled live monitor is part of the steady-state contract:
    // its per-round hook must stay one branch with zero allocations,
    // so the silent windows below measure it alongside the round path.
    engine.set_monitor(Monitor::disabled());

    // Warm-up: buffers grow to the working-set size (round 0 churns
    // the live set, round 1 anchors the topology cache, and the
    // broadcast pattern repeats with period 3).
    engine.run(30);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    engine.run(120);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state fast-path rounds must not allocate"
    );

    // Sanity: the silent rounds above were real rounds.
    assert_eq!(engine.round(), 150);
    assert!(engine.stats().broadcasts > 0);

    // Tile-sharded resolution preserves the guarantee: spawn the pool
    // and grow the per-worker tile scratch inside a warm-up window
    // (the threshold override forces sharding at this n), then demand
    // silence again. Pool broadcasts are allocation-free by design —
    // parked threads are woken through a mutex/condvar pair and the
    // job is passed as a borrowed pointer.
    engine.set_workers(4);
    engine.set_shard_min_slots(1);
    engine.run(30);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    engine.run(120);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state sharded rounds must not allocate"
    );
    assert_eq!(engine.round(), 300);

    // The legacy path on the same deployment allocates every round —
    // the contrast proves the counter actually measures the engine.
    engine.set_legacy_round_path(true);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    engine.run(10);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(
        after - before > 0,
        "legacy rounds are expected to allocate (got a silent counter instead)"
    );
}
