//! Property-based tests for the traffic subsystem: workload specs are
//! lossless data, and traffic metrics are sweep-worker invariant.

use proptest::prelude::*;
use virtual_infra::radio::geometry::{Point, Rect};
use virtual_infra::radio::{AdversaryKind, RadioConfig};
use virtual_infra::scenario::{
    CmSpec, LayoutSpec, PlacementSpec, PopulationSpec, ScenarioSpec, SweepRunner, WorkloadSpec,
};
use virtual_infra::traffic::{AppKind, LoadMode, RatePhase, TrafficSpec};

fn arb_app() -> impl Strategy<Value = AppKind> {
    (0u8..4).prop_map(|i| AppKind::all()[i as usize])
}

fn arb_mode() -> impl Strategy<Value = LoadMode> {
    (
        any::<bool>(),
        0.0f64..2.0,
        proptest::collection::vec((1u64..40, 0.0f64..2.0), 0..3),
        1usize..3,
        0u64..5,
    )
        .prop_map(|(open, rate, mut phases, k, think)| {
            if open {
                phases.sort_by_key(|&(vr, _)| vr);
                LoadMode::Open {
                    rate_per_round: rate,
                    phases: phases
                        .into_iter()
                        .map(|(from_vr, rate_per_round)| RatePhase {
                            from_vr,
                            rate_per_round,
                        })
                        .collect(),
                }
            } else {
                LoadMode::Closed {
                    outstanding_per_client: k,
                    think_rounds: think,
                }
            }
        })
}

fn arb_traffic() -> impl Strategy<Value = TrafficSpec> {
    (arb_mode(), 1usize..4, 0.0f64..=1.0, 1u64..40, 1u64..30).prop_map(
        |(mode, clients, query_fraction, timeout_rounds, virtual_rounds)| TrafficSpec {
            clients,
            mode,
            query_fraction,
            timeout_rounds,
            virtual_rounds,
        },
    )
}

/// A minimal valid scenario wrapping the generated traffic workload.
fn wrap(app: AppKind, traffic: TrafficSpec) -> ScenarioSpec {
    let vn = Point::new(50.0, 50.0);
    ScenarioSpec {
        name: "prop_traffic".into(),
        arena: Rect::square(100.0),
        radio: RadioConfig::reliable(10.0, 20.0),
        populations: vec![PopulationSpec::fixed(
            traffic.clients.max(3),
            PlacementSpec::Cluster {
                center: vn,
                radius: 0.5,
            },
        )],
        adversary: AdversaryKind::None,
        nemesis: virtual_infra::audit::NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::Traffic {
            app,
            layout: LayoutSpec::Explicit {
                locations: vec![vn],
                region_radius: 2.5,
            },
            traffic,
            audit: false,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite requirement: the workload spec JSON round-trip is
    /// lossless — bare and embedded in a full scenario spec.
    #[test]
    fn workload_spec_json_round_trip_is_lossless(
        app in arb_app(),
        traffic in arb_traffic(),
    ) {
        let json = serde_json::to_string(&traffic).expect("serialize");
        let back: TrafficSpec = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &traffic);

        let spec = wrap(app, traffic);
        let json = serde_json::to_string(&spec.workload).expect("serialize workload");
        let back: WorkloadSpec = serde_json::from_str(&json).expect("deserialize workload");
        prop_assert_eq!(&back, &spec.workload);

        let json = serde_json::to_string(&spec).expect("serialize scenario");
        let back: ScenarioSpec = serde_json::from_str(&json).expect("deserialize scenario");
        prop_assert_eq!(back, spec);
    }
}

proptest! {
    // Each case runs four full deployments; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite requirement: the same `(spec, seed)` yields
    /// byte-identical metrics — histograms included — whether the
    /// sweep runs on 1 worker or 4.
    #[test]
    fn histograms_are_byte_identical_across_worker_counts(
        app in arb_app(),
        seed in 0u64..1_000,
    ) {
        let traffic = TrafficSpec::open(2, 0.5, 12);
        let spec = wrap(app, traffic);
        spec.validate().expect("generated spec must be valid");
        let jobs = vec![(spec.clone(), seed), (spec, seed.wrapping_add(1))];
        let one = SweepRunner::new(1).run(&jobs);
        let four = SweepRunner::new(4).run(&jobs);
        prop_assert_eq!(
            serde_json::to_string(&one).expect("serialize"),
            serde_json::to_string(&four).expect("serialize"),
            "worker count changed the metrics"
        );
        for o in &one {
            let t = o.traffic.as_ref().expect("traffic summary");
            prop_assert_eq!(t.latency.count(), t.completed);
        }
    }
}
