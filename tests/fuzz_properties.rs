//! Property tests for the fuzz subsystem's repro contract.
//!
//! For random mutation chains walked off the fuzz seed corpus (the
//! same typed mutators the campaign uses, seeded through
//! `vi_audit::pick`), any failure the walk produces is delta-debugged
//! and the minimized repro spec must:
//!
//! * round-trip losslessly through JSON (the corpus/findings on-disk
//!   form is complete);
//! * reproduce the *same* failure class under the same seed; and
//! * execute byte-identically at engine worker counts 1 and 4 —
//!   verdicts included — so a repro filed from a parallel run replays
//!   exactly on a sequential machine and vice versa.
//!
//! Healthy walks assert the same worker-invariance for their mutants,
//! so the property covers the whole reachable spec space, not just
//! the failing slice. A second property closes the loop on the audit
//! class: the checker that condemns audit-class repros is itself
//! mutation-validated via `vi_audit::mutate` — it accepts recorded
//! histories and rejects every applicable seeded corruption, so a
//! fuzz "audit" finding can never be a vacuous checker artifact.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use virtual_infra::audit::{audit, mutate, pick, HistoryRecorder, Mutation};
use virtual_infra::fuzz::campaign::{classify_run, FailureClass};
use virtual_infra::fuzz::{apply, minimize, seed_corpus, MUTATORS};
use virtual_infra::scenario::{EngineTuning, ScenarioSpec};

/// Walks `steps` seeded mutations off seed-corpus ancestor
/// `ancestor % 4`, discarding (returning the last valid spec) any
/// step that validation rejects — exactly the campaign's generation
/// rule.
fn walk(ancestor: usize, steps: usize, chain_seed: u64) -> ScenarioSpec {
    let corpus = seed_corpus();
    let mut spec = corpus[ancestor % corpus.len()].clone();
    let mut rng = StdRng::seed_from_u64(chain_seed);
    for _ in 0..steps {
        let m = MUTATORS[pick(&mut rng, MUTATORS.len()).expect("mutators exist")];
        let child = apply(&spec, m, &mut rng);
        if child.validate().is_ok() {
            spec = child;
        }
    }
    spec
}

/// Serializes the full outcome of `spec` under `seed` at `workers`
/// engine workers.
fn outcome_json(spec: &ScenarioSpec, seed: u64, workers: usize) -> String {
    let tuning = EngineTuning {
        workers,
        ..EngineTuning::DEFAULT
    };
    serde_json::to_string(&spec.run_with(seed, tuning)).expect("outcomes serialize")
}

proptest! {
    // Each case runs a mutation walk plus (on failure) a minimization
    // and four verification runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite requirement: minimized repro specs round-trip
    /// losslessly and reproduce the same verdict byte-identically at
    /// workers 1 and 4.
    #[test]
    fn minimized_repro_specs_round_trip_and_replay_worker_invariantly(
        ancestor in 0usize..4,
        steps in 1usize..=4,
        chain_seed in 0u64..1_000,
        run_seed in 1u64..=1_000,
    ) {
        let spec = walk(ancestor, steps, chain_seed);
        prop_assert!(spec.validate().is_ok());

        match classify_run(&spec, run_seed) {
            Some(class) if class != FailureClass::Panic => {
                let min = minimize(&spec, run_seed, class, 32);

                // Lossless JSON round-trip of the repro artifact.
                let json = serde_json::to_string(&min.spec).expect("specs serialize");
                let back: ScenarioSpec = serde_json::from_str(&json).expect("specs parse");
                prop_assert_eq!(&back, &min.spec, "minimized spec must round-trip losslessly");

                // Same failure class under the same seed — and the
                // parsed-back copy behaves identically to the
                // in-memory one.
                prop_assert_eq!(
                    classify_run(&back, run_seed),
                    Some(class),
                    "minimized repro must reproduce the original failure class"
                );

                // Byte-identical verdicts at 1 and 4 engine workers.
                prop_assert_eq!(
                    outcome_json(&back, run_seed, 1),
                    outcome_json(&back, run_seed, 4),
                    "minimized repro verdict must not depend on the worker count"
                );
            }
            _ => {
                // Healthy (or panicking — none known) walk: the mutant
                // itself must still be worker-invariant and
                // serializable.
                let json = serde_json::to_string(&spec).expect("specs serialize");
                let back: ScenarioSpec = serde_json::from_str(&json).expect("specs parse");
                prop_assert_eq!(&back, &spec);
                prop_assert_eq!(
                    outcome_json(&spec, run_seed, 1),
                    outcome_json(&spec, run_seed, 4),
                    "mutant outcome must not depend on the worker count"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Audit-class findings rest on a mutation-validated checker: the
    /// register checker accepts what was recorded and rejects every
    /// applicable `vi_audit::mutate` corruption, so a fuzz "audit"
    /// verdict is evidence about the history, never about a broken
    /// checker.
    #[test]
    fn audit_class_verdicts_are_mutation_validated(
        seed in 0u64..1_000,
        mutation_seed in 0u64..1_000,
    ) {
        use virtual_infra::core::vi::VnLayout;
        use virtual_infra::radio::geometry::Point;
        use virtual_infra::radio::mobility::{MobilityModel, Static};
        use virtual_infra::radio::{AdversaryKind, RadioConfig};
        use virtual_infra::traffic::{AppKind, DevicePlan, TrafficSpec, TrafficWorld};

        let vn = Point::new(50.0, 50.0);
        let devices = (0..3)
            .map(|i| {
                let start = Point::new(49.4 + 0.4 * i as f64, 50.2);
                DevicePlan {
                    start,
                    mobility: Box::new(Static::new(start)) as Box<dyn MobilityModel>,
                    spawn_at: None,
                    crash_at: None,
                }
            })
            .collect();
        let world = TrafficWorld {
            radio: RadioConfig::reliable(10.0, 20.0),
            layout: VnLayout::new(vec![vn], 2.5),
            seed,
            adversary: AdversaryKind::None,
            devices,
        };
        let spec = TrafficSpec::open(2, 0.4, 20).with_query_fraction(0.5);
        let (out, history) = HistoryRecorder::record(AppKind::Register, world, &spec);
        prop_assert!(out.summary.issued > 0);
        prop_assert!(audit(&history).ok(), "recorded history must pass");
        let mut applied = 0;
        for m in Mutation::all() {
            if let Some(broken) = mutate(&history, m, mutation_seed) {
                applied += 1;
                prop_assert!(!audit(&broken).ok(), "{m:?} corruption must be rejected");
            }
        }
        if out.summary.completed > 0 {
            prop_assert!(applied >= 2, "mutations must apply to a completing history");
        }
    }
}
