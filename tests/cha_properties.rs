//! Property-based tests of the CHA protocol (Section 3 guarantees).
//!
//! Strategy: generate random adversarial environments — loss rates,
//! spurious collision indications, contention-manager misbehaviour,
//! crash schedules, seeds — run CHAP in a single region, and check the
//! Section 3.2 specification plus Property 4 on the resulting trace.
//! Safety must hold in *every* environment; liveness is checked only
//! when the environment stabilizes.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vi_bench::harness::{run_clique, AdversaryKind, CliqueConfig};
use virtual_infra::contention::PreStability;
use virtual_infra::core::cha::{calculate_history, Ballot, ChaSpecChecker};
use virtual_infra::radio::RadioConfig;

/// A randomly hostile environment that never stabilizes.
fn hostile_config() -> impl Strategy<Value = CliqueConfig> {
    (
        2usize..7,
        10u64..30,
        0.0f64..0.9,
        0.0f64..0.5,
        any::<u64>(),
        0.0f64..1.0,
        proptest::collection::vec((0usize..7, 5u64..80), 0..3),
    )
        .prop_map(|(n, instances, loss, spurious, seed, cm_p, crashes)| {
            let mut cfg = CliqueConfig::reliable(n, instances, seed);
            cfg.radio = RadioConfig::stabilizing(10.0, 20.0, u64::MAX);
            cfg.cm_stabilize = u64::MAX;
            cfg.cm_pre = PreStability::Random(cm_p);
            cfg.adversary = AdversaryKind::Random(loss, spurious);
            cfg.crashes = crashes.into_iter().filter(|&(node, _)| node < n).collect();
            cfg
        })
}

/// An environment that stabilizes midway.
fn stabilizing_config() -> impl Strategy<Value = CliqueConfig> {
    (2usize..6, 0u64..60, 0.0f64..0.8, any::<u64>()).prop_map(|(n, disrupt, loss, seed)| {
        let mut cfg = CliqueConfig::reliable(n, disrupt / 3 + 15, seed);
        cfg.radio = RadioConfig::stabilizing(10.0, 20.0, disrupt);
        cfg.cm_stabilize = disrupt;
        cfg.cm_pre = PreStability::AllActive;
        cfg.adversary = AdversaryKind::Random(loss, loss / 2.0);
        cfg
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorems 10 & 13 + Property 4: safety holds under arbitrary,
    /// never-ending misbehaviour.
    #[test]
    fn safety_under_arbitrary_misbehaviour(cfg in hostile_config()) {
        let run = run_clique(cfg);
        let checker = run.checker();
        let mut violations = checker.check_validity();
        violations.extend(checker.check_agreement());
        violations.extend(checker.check_color_spread());
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// Theorem 12: once the channel and contention manager stabilize,
    /// liveness holds (a stabilization instance exists) and safety
    /// continues to hold.
    #[test]
    fn liveness_after_stabilization(cfg in stabilizing_config()) {
        let run = run_clique(cfg);
        let checker = run.checker();
        let violations = checker.check_all(true);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// The efficient (sorted-adjacent) agreement checker agrees with
    /// the exhaustive pairwise one.
    #[test]
    fn agreement_checkers_agree(cfg in hostile_config()) {
        let run = run_clique(cfg);
        let checker = run.checker();
        let fast_clean = checker.check_agreement().is_empty();
        let slow_clean = checker.check_agreement_exhaustive().is_empty();
        prop_assert_eq!(fast_clean, slow_clean);
    }

    /// Message size never depends on the execution length or node
    /// count (Theorem 14) — measured across random environments.
    #[test]
    fn message_size_is_constant(cfg in hostile_config()) {
        let run = run_clique(cfg);
        // Ballot = 17 bytes (tag + u64 value + prev index); veto = 1.
        prop_assert!(run.stats.max_message_bytes <= 17,
            "message grew to {}", run.stats.max_message_bytes);
    }
}

/// Strategy producing a protocol-shaped ballot chain: for each
/// instance `k`, a ballot whose `prev` pointer refers to some earlier
/// instance (or 0), mimicking what adopted leader ballots look like.
fn chain_ballots() -> impl Strategy<Value = BTreeMap<u64, Ballot<u32>>> {
    proptest::collection::vec(any::<u32>(), 1..40).prop_perturb(|values, mut rng| {
        let mut map = BTreeMap::new();
        let mut goods: Vec<u64> = vec![0];
        for (i, v) in values.into_iter().enumerate() {
            let k = i as u64 + 1;
            let prev = goods[rng.random_range(0..goods.len())];
            map.insert(k, Ballot::new(v, prev));
            // This instance may or may not become good later.
            if rng.random_bool(0.7) {
                goods.push(k);
            }
        }
        map
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 8 analog: histories computed from the same ballot array
    /// starting at chain-connected instances agree on their common
    /// prefix (values and ⊥ placement both).
    #[test]
    fn calculate_history_prefix_agreement(ballots in chain_ballots()) {
        let last = *ballots.keys().last().unwrap();
        let h_full = calculate_history(last, last, &ballots, 0);
        // Walk the chain: every suffix start on the chain yields an
        // agreeing history.
        let mut cursor = last;
        while cursor > 0 {
            let h = calculate_history(last, cursor, &ballots, 0);
            prop_assert!(h.agrees_with(&h_full, cursor));
            // The prefix up to `cursor` is identical; beyond it the
            // shorter start excludes instances the full one includes.
            cursor = ballots[&cursor].prev;
        }
    }

    /// `calculate_history` includes exactly the chain instances.
    #[test]
    fn calculate_history_includes_only_chain(ballots in chain_ballots()) {
        let last = *ballots.keys().last().unwrap();
        let h = calculate_history(last, last, &ballots, 0);
        // Chain membership from following pointers.
        let mut chain = std::collections::BTreeSet::new();
        let mut cursor = last;
        while cursor > 0 {
            chain.insert(cursor);
            cursor = ballots[&cursor].prev;
        }
        for k in 1..=last {
            prop_assert_eq!(h.includes(k), chain.contains(&k), "instance {}", k);
        }
    }

    /// Spec-checker sanity: a fabricated violation is always caught.
    #[test]
    fn checker_catches_planted_disagreement(ballots in chain_ballots(), wrong in any::<u32>()) {
        let last = *ballots.keys().last().unwrap();
        let h = calculate_history(last, last, &ballots, 0);
        prop_assume!(h.includes(last));
        prop_assume!(Some(&wrong) != h.get(last));
        let mut checker = ChaSpecChecker::new();
        for (k, b) in &ballots {
            checker.record_proposal(*k, b.value);
        }
        checker.record_proposal(last, wrong);
        checker.record_output(0, &virtual_infra::core::cha::ChaOutput {
            instance: last,
            history: Some(h),
            color: virtual_infra::core::cha::Color::Green,
        });
        // A second node decided a different value for `last`.
        let mut bad = virtual_infra::core::cha::History::new(last);
        bad.insert(last, wrong);
        checker.record_output(1, &virtual_infra::core::cha::ChaOutput {
            instance: last,
            history: Some(bad),
            color: virtual_infra::core::cha::Color::Green,
        });
        prop_assert!(!checker.check_agreement().is_empty());
    }
}
