//! Property-based test of the flight recorder's core promise: a
//! dumped [`IncidentBundle`] is a *complete* reproduction recipe.
//!
//! For random perturbations of the violating majority-register
//! scenario (write count, horizon, partition onset, seed, flight
//! window), any bundle the run dumps must — after a JSON round-trip,
//! as a replay consumer would see it — re-execute to a byte-identical
//! [`ScenarioOutcome`] (audit report included) at 1 and at 4 sweep
//! workers, and that replay must re-dump the identical bundle.
//! Runs that happen not to violate must still be worker-invariant
//! under tracing.

use proptest::prelude::*;
use virtual_infra::scenario::{catalog, EngineTuning, IncidentBundle, ScenarioSpec, WorkloadSpec};

/// The violating baseline with its workload knobs replaced.
fn perturbed(writes: u64, rounds: u64, partition_from: u64) -> ScenarioSpec {
    let mut spec = catalog::scenario("broken_majority").expect("catalog scenario");
    spec.name = format!("broken_majority/w{writes}r{rounds}p{partition_from}");
    spec.workload = WorkloadSpec::MajorityRegister {
        writes,
        rounds,
        partition_from: Some(partition_from),
    };
    spec.validate().expect("perturbation stays valid");
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dumped_bundles_replay_byte_identically(
        seed in 1u64..=64,
        writes in 4u64..=10,
        rounds in 16u64..=32,
        partition_from in 2u64..=8,
        flight_k in 4usize..=16,
    ) {
        let spec = perturbed(writes, rounds, partition_from);
        let tuning = EngineTuning::DEFAULT.with_tracing().with_flight(flight_k);
        let out = spec.run_with(seed, tuning);

        if let Some(bundle) = &out.incident {
            // A replay consumer only ever sees the serialized form.
            let parsed = IncidentBundle::from_json(&bundle.to_json()).expect("round-trips");
            prop_assert_eq!(&parsed, bundle);

            let replay_seq = parsed.replay(1);
            let replay_par = parsed.replay(4);
            prop_assert_eq!(
                serde_json::to_string(&replay_seq).expect("serializes"),
                serde_json::to_string(&replay_par).expect("serializes"),
                "replay outcome depends on the worker count"
            );
            prop_assert_eq!(&replay_seq.audit, &bundle.audit, "audit verdict drifted on replay");
            prop_assert_eq!(
                replay_seq.incident.as_ref(),
                Some(bundle),
                "replay failed to re-dump the identical bundle"
            );
        } else {
            // No violation at these knobs: tracing must still be
            // worker-invariant.
            let par = spec.run_with(seed, EngineTuning { workers: 4, ..tuning });
            prop_assert_eq!(
                serde_json::to_string(&out).expect("serializes"),
                serde_json::to_string(&par).expect("serializes"),
                "traced outcome depends on the worker count"
            );
        }
    }
}

/// The canonical catalog violation always dumps, and its bundle's
/// causal slice points at real spans: every witness span id resolves
/// into the bundled summary.
#[test]
fn witness_slice_points_into_the_causal_dag() {
    let spec = catalog::scenario("broken_majority").expect("catalog scenario");
    let out = spec.run_with(1, EngineTuning::DEFAULT.with_tracing().with_flight(8));
    let bundle = out.incident.expect("catalog scenario violates");
    let summary = bundle.causal.as_ref().expect("tracing was on");
    assert!(
        !bundle.witness_spans.is_empty(),
        "a traced violation carries its causal slice"
    );
    let ids: std::collections::BTreeSet<u64> = summary.spans.iter().map(|s| s.id).collect();
    for span in &bundle.witness_spans {
        assert!(ids.contains(span), "witness span {span} not in the DAG");
    }
}
