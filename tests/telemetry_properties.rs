//! Property-based tests of the telemetry layer's two contracts:
//!
//! 1. **Counters are deterministic** — the counter set of a run is a
//!    pure function of the seed and the spec, independent of the
//!    intra-round worker count (counters only ever increment on the
//!    sequential control path).
//! 2. **Telemetry observes, never perturbs** — enabling the probe
//!    changes no reception, no trace byte, no channel statistic, and
//!    no RNG draw of the run it measures.
//! 3. **Snapshots are an exact decomposition** — the counter deltas a
//!    live monitor streams, concatenated in sequence order, reconcile
//!    exactly with the end-of-run telemetry totals at any sampling
//!    period.

use proptest::prelude::*;
use std::any::Any;
use std::sync::Arc;
use virtual_infra::radio::adversary::RandomLoss;
use virtual_infra::radio::geometry::{Point, Rect};
use virtual_infra::radio::mobility::{Billiard, MobilityModel, Static, Waypoint};
use virtual_infra::radio::{
    ChannelStats, Engine, EngineConfig, NodeId, NodeSpec, Process, RadioConfig, RoundCtx,
    RoundReception,
};
use virtual_infra::telemetry::{
    Counters, Monitor, MonitorEvent, Probe, RingSink, SinkSet, TelemetrySnapshot,
};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

/// Records everything a protocol can observe.
struct Recorder {
    chatty: bool,
    heard: Vec<u64>,
    collisions: u64,
}

impl Process<u64> for Recorder {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<u64> {
        (self.chatty && ctx.round.is_multiple_of(2)).then_some(ctx.round)
    }
    fn deliver(&mut self, _ctx: &RoundCtx, rx: RoundReception<'_, u64>) {
        self.heard.extend_from_slice(rx.messages);
        if rx.collision {
            self.collisions += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

type NodeGene = (Point, u8, bool, u64, Option<u64>);
type Observation = (Vec<(Vec<u64>, u64)>, String, ChannelStats);

/// Builds and runs one engine; returns the observable execution and
/// the probe's counter set (when a probe was installed).
fn run_engine(
    specs: &[NodeGene],
    seed: u64,
    stabilize: u64,
    drop_p: f64,
    rounds: u64,
    workers: usize,
    probe: Option<Probe>,
) -> (Observation, Option<Counters>) {
    let bounds = Rect::square(200.0);
    let mut engine: Engine<u64> = Engine::new(EngineConfig {
        radio: RadioConfig::stabilizing(10.0, 20.0, stabilize),
        seed,
        record_trace: true,
    });
    engine.set_workers(workers);
    engine.set_shard_min_slots(1);
    engine.set_adversary(Box::new(RandomLoss::new(drop_p, 0.1)));
    let installed = probe.clone();
    if let Some(p) = probe {
        engine.set_probe(p);
    }
    let mut ids: Vec<NodeId> = Vec::new();
    for &(start, mobility, chatty, spawn, crash) in specs {
        let start = Point::new(start.x.min(190.0), start.y.min(190.0));
        let model: Box<dyn MobilityModel> = match mobility {
            0 => Box::new(Static::new(start)),
            1 => Box::new(Waypoint::new(start, 0.7, bounds)),
            2 => Box::new(Waypoint::new(start, 0.0, bounds)),
            _ => Box::new(Billiard::new(start, (0.5, -0.3), bounds)),
        };
        let mut spec = NodeSpec::new(
            model,
            Box::new(Recorder {
                chatty,
                heard: Vec::new(),
                collisions: 0,
            }),
        );
        if spawn > 0 {
            spec = spec.spawn_at(spawn);
        }
        if let Some(c) = crash {
            spec = spec.crash_at(c);
        }
        ids.push(engine.add_node(spec));
    }
    engine.run(rounds);
    let observed = ids
        .iter()
        .map(|&id| {
            let r: &Recorder = engine.process(id).expect("recorder");
            (r.heard.clone(), r.collisions)
        })
        .collect();
    let trace = serde_json::to_string(engine.trace()).expect("serializable trace");
    let obs = (observed, trace, *engine.stats());
    (obs, installed.and_then(|p| p.counters()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tentpole acceptance: the counter set is byte-identical at 1, 2,
    /// 4, and 7 intra-round workers (shard threshold forced to 1 so
    /// toy rounds actually shard), across mixed mobility, churn, and a
    /// lossy adversary.
    #[test]
    fn counters_are_worker_count_invariant(
        specs in proptest::collection::vec(
            (arb_point(), 0u8..4, any::<bool>(), 0u64..6, proptest::option::of(2u64..20)),
            1..14),
        seed in any::<u64>(),
        stabilize in 0u64..30,
        drop_p in 0.0f64..0.6,
        rounds in 5u64..30,
    ) {
        let (base_obs, base_counters) =
            run_engine(&specs, seed, stabilize, drop_p, rounds, 1, Some(Probe::enabled()));
        let base_counters = base_counters.expect("probe installed");
        prop_assert_eq!(base_counters.rounds_total, rounds, "every round is counted");
        for workers in [2usize, 4, 7] {
            let (obs, counters) =
                run_engine(&specs, seed, stabilize, drop_p, rounds, workers, Some(Probe::enabled()));
            prop_assert_eq!(
                counters.expect("probe installed"), base_counters,
                "counters diverged at {} workers", workers);
            prop_assert_eq!(&obs, &base_obs, "execution diverged at {} workers", workers);
        }
    }

    /// Telemetry-on changes nothing observable: receptions, the full
    /// round trace, and the channel statistics (which close over every
    /// RNG draw) are identical with and without the probe, at 1 worker
    /// and sharded.
    #[test]
    fn probe_never_perturbs_the_execution(
        specs in proptest::collection::vec(
            (arb_point(), 0u8..4, any::<bool>(), 0u64..6, proptest::option::of(2u64..20)),
            1..14),
        seed in any::<u64>(),
        stabilize in 0u64..30,
        drop_p in 0.0f64..0.6,
        rounds in 5u64..30,
        worker_pick in 0usize..3,
    ) {
        let workers = [1usize, 3, 7][worker_pick];
        let (plain, none) = run_engine(&specs, seed, stabilize, drop_p, rounds, workers, None);
        prop_assert!(none.is_none(), "no probe, no counters");
        let (probed, counters) =
            run_engine(&specs, seed, stabilize, drop_p, rounds, workers, Some(Probe::enabled()));
        prop_assert_eq!(&probed, &plain,
            "telemetry perturbed the execution at {} workers", workers);
        let counters = counters.expect("probe installed");
        prop_assert_eq!(
            counters.receptions, plain.2.deliveries,
            "reception counter must mirror channel stats");
        prop_assert_eq!(
            counters.collisions, plain.2.collision_reports,
            "collision counter must mirror channel stats");
    }

    /// Live-monitoring acceptance: the counter deltas a monitor
    /// streams, concatenated in sequence order, reconcile exactly with
    /// the end-of-run totals — for any sampling period, worker count,
    /// and topology — and the final snapshot's running total IS the
    /// end-of-run counter set.
    #[test]
    fn snapshot_deltas_reconcile_with_final_summary(
        specs in proptest::collection::vec(
            (arb_point(), 0u8..4, any::<bool>(), 0u64..6, proptest::option::of(2u64..20)),
            1..10),
        seed in any::<u64>(),
        rounds in 5u64..40,
        every in 1u64..12,
        workers in 1usize..5,
    ) {
        let bounds = Rect::square(200.0);
        let mut engine: Engine<u64> = Engine::new(EngineConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            seed,
            record_trace: false,
        });
        engine.set_workers(workers);
        engine.set_shard_min_slots(1);
        let probe = Probe::enabled();
        engine.set_probe(probe.clone());
        let ring = Arc::new(RingSink::with_capacity(4096));
        let monitor = Monitor::enabled(
            "prop", seed, every, probe.clone(), SinkSet::new(vec![ring.clone()]));
        engine.set_monitor(monitor.clone());
        for &(start, mobility, chatty, spawn, crash) in &specs {
            let start = Point::new(start.x.min(190.0), start.y.min(190.0));
            let model: Box<dyn MobilityModel> = match mobility {
                0 => Box::new(Static::new(start)),
                1 => Box::new(Waypoint::new(start, 0.7, bounds)),
                2 => Box::new(Waypoint::new(start, 0.0, bounds)),
                _ => Box::new(Billiard::new(start, (0.5, -0.3), bounds)),
            };
            let mut spec = NodeSpec::new(
                model,
                Box::new(Recorder { chatty, heard: Vec::new(), collisions: 0 }),
            );
            if spawn > 0 {
                spec = spec.spawn_at(spawn);
            }
            if let Some(c) = crash {
                spec = spec.crash_at(c);
            }
            engine.add_node(spec);
        }
        engine.run(rounds);
        monitor.finish();

        let snaps: Vec<TelemetrySnapshot> = ring
            .events()
            .into_iter()
            .filter_map(|e| match e {
                MonitorEvent::Snapshot(s) => Some(*s),
                _ => None,
            })
            .collect();
        prop_assert!(!snaps.is_empty(), "a finished monitor always snapshots");
        for (i, s) in snaps.iter().enumerate() {
            prop_assert_eq!(s.seq, i as u64 + 1, "sequence numbers are gapless");
            if !s.last {
                prop_assert_eq!(s.round % every, 0,
                    "periodic snapshots land on the period");
            }
        }
        let last = snaps.last().expect("non-empty");
        prop_assert!(last.last, "the final snapshot is marked last");
        let mut merged = Counters::default();
        for s in &snaps {
            merged.merge(&s.counters_delta);
        }
        let finals = probe.counters().expect("probe installed");
        prop_assert_eq!(merged, finals,
            "concatenated deltas must reconcile with the final totals");
        prop_assert_eq!(last.counters_total, finals,
            "the last snapshot's running total is the end-of-run counter set");
    }
}
