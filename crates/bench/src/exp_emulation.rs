//! Experiments on the virtual-infrastructure emulation (E7–E9, E11).

use crate::table::{f2, Table};
use vi_core::vi::{CounterAutomaton, Schedule, VnId, VnLayout, World, WorldConfig};
use vi_radio::geometry::Point;
use vi_radio::mobility::{DepartAt, Static};
use vi_radio::{NodeId, RadioConfig};

const R1: f64 = 10.0;
const R2: f64 = 20.0;
const REGION: f64 = 2.5; // R1/4

fn radio() -> RadioConfig {
    RadioConfig::reliable(R1, R2)
}

fn grid_world(
    rows: usize,
    cols: usize,
    spacing: f64,
    devices_per_vn: usize,
    seed: u64,
) -> (World<CounterAutomaton>, usize) {
    let layout = VnLayout::grid(rows, cols, spacing, Point::new(50.0, 50.0), REGION);
    let vns = layout.len();
    let locations: Vec<Point> = layout.iter().map(|(_, p)| p).collect();
    let mut world = World::new(WorldConfig {
        radio: radio(),
        layout,
        automaton: CounterAutomaton,
        seed,
        record_trace: false,
    });
    for loc in locations {
        for d in 0..devices_per_vn {
            let off = 0.4 * (d as f64 + 1.0) / devices_per_vn as f64;
            world.add_device(
                Box::new(Static::new(Point::new(loc.x + off, loc.y - off))),
                None,
            );
        }
    }
    (world, vns)
}

/// E7 — emulation overhead: real rounds per virtual round depend only
/// on the deployment *density* (via the schedule length `s`), never on
/// the number of devices — the emulation analogue of Theorem 14.
pub fn overhead() -> Table {
    let mut t = Table::new(
        "E7 / Section 4.3: emulation overhead (rounds per virtual round)",
        &[
            "vns",
            "spacing",
            "devices",
            "s",
            "rounds/vr",
            "green fraction",
            "max msg bytes",
        ],
    );
    // Density sweep: tighter grids force longer schedules.
    let configs = [
        (1usize, 1usize, 100.0f64, 3usize),
        (2, 2, 60.0, 3),
        (2, 2, 30.0, 3),
        (3, 3, 30.0, 3),
        // Device-count sweep at fixed density: rounds/vr must not move.
        (2, 2, 30.0, 6),
        (2, 2, 30.0, 12),
    ];
    for (rows, cols, spacing, devs) in configs {
        let (mut world, vns) = grid_world(rows, cols, spacing, devs, 23);
        let vrs = 12;
        world.run_virtual_rounds(vrs);
        let plan = world.plan();
        let mut decided = 0u64;
        let mut bottom = 0u64;
        for vn in 0..vns {
            let (_, r) = world.vn_report(VnId(vn));
            decided += r.decided;
            bottom += r.bottom;
        }
        let green = decided as f64 / (decided + bottom).max(1) as f64;
        t.row(&[
            vns.to_string(),
            f2(spacing),
            (devs * vns).to_string(),
            plan.schedule_len().to_string(),
            plan.rounds_per_vr().to_string(),
            f2(green),
            world.stats().max_message_bytes.to_string(),
        ]);
    }
    t.note("rounds/vr = s + 12: grows with density only; adding devices changes nothing");
    t
}

/// E8 — virtual-node availability under churn (Section 4.2): devices
/// stream through the region, each residing for a fixed number of
/// virtual rounds; the virtual node stays alive exactly as long as the
/// arrival stream keeps the region populated, and loses its state
/// (reset) whenever coverage gaps appear.
pub fn availability() -> Table {
    let mut t = Table::new(
        "E8 / Section 4.2: availability under churn (residence 3 vrs)",
        &[
            "arrival gap (vrs)",
            "live fraction",
            "state losses (resets)",
            "joins",
        ],
    );
    let residence = 3u64;
    for gap in [1u64, 2, 3, 5, 8] {
        let vn_loc = Point::new(50.0, 50.0);
        let layout = VnLayout::new(vec![vn_loc], REGION);
        let mut world = World::new(WorldConfig {
            radio: radio(),
            layout,
            automaton: CounterAutomaton,
            seed: 31,
            record_trace: false,
        });
        let rpv = world.plan().rounds_per_vr();
        let total_vrs = 40u64;
        // A new device arrives every `gap` virtual rounds and walks out
        // of the region over `residence` virtual rounds.
        let mut arrivals = 0u64;
        let mut vr = 0;
        while vr < total_vrs {
            let spawn = vr * rpv;
            let speed = 3.2 / (residence * rpv) as f64;
            world.add_device_spec(
                Box::new(DepartAt::new(
                    Point::new(vn_loc.x + 0.1 * (arrivals % 5) as f64, vn_loc.y),
                    (1.0, 0.3),
                    speed,
                    spawn,
                )),
                None,
                Some(spawn),
                None,
            );
            arrivals += 1;
            vr += gap;
        }
        // Sample liveness once per virtual round.
        let mut live = 0u64;
        for _ in 0..total_vrs {
            world.run_virtual_rounds(1);
            if world.replica_count(VnId(0)) > 0 {
                live += 1;
            }
        }
        let (_, report) = world.vn_report(VnId(0));
        t.row(&[
            gap.to_string(),
            f2(live as f64 / total_vrs as f64),
            report.resets.to_string(),
            report.joins.to_string(),
        ]);
    }
    t.note("three regimes: ample overlap (gap 1) hands state over by join transfer; marginal overlap (gap ≈ residence) keeps the vn alive but loses state at handoff (reset); gap >> residence loses coverage itself");
    t
}

/// E9 — join and reset latency (Section 4.3): a fresh device entering
/// a live region becomes a replica via state transfer; the latency is
/// bounded by the schedule cycle (joins only run in scheduled rounds).
pub fn join_latency() -> Table {
    let mut t = Table::new(
        "E9 / Section 4.3: join latency vs schedule length",
        &["s", "join vr", "replica at vr", "latency (vrs)", "via"],
    );
    for vn_count in [1usize, 2, 3] {
        // Mutually conflicting virtual nodes (within R1 + 2 R2 = 50)
        // force s = vn_count.
        let locations: Vec<Point> = (0..vn_count)
            .map(|i| Point::new(50.0 + 20.0 * i as f64, 50.0))
            .collect();
        let layout = VnLayout::new(locations.clone(), REGION);
        let mut world = World::new(WorldConfig {
            radio: RadioConfig::reliable(45.0, 60.0),
            layout,
            automaton: CounterAutomaton,
            seed: 41,
            record_trace: false,
        });
        // Anchors keep vn0 alive from the start.
        world.add_device(Box::new(Static::new(Point::new(50.3, 50.0))), None);
        world.add_device(Box::new(Static::new(Point::new(49.7, 50.0))), None);
        let rpv = world.plan().rounds_per_vr();
        let s = world.plan().schedule_len();
        let join_vr = 6u64;
        let joiner: NodeId = world.add_device_spec(
            Box::new(Static::new(Point::new(50.0, 50.4))),
            None,
            Some((join_vr - 1) * rpv),
            None,
        );
        // Warm up, then watch the joiner round by round.
        world.run_virtual_rounds(join_vr - 1);
        let mut replica_at = None;
        for vr in join_vr..join_vr + 4 * s + 4 {
            world.run_virtual_rounds(1);
            if world.device(joiner).is_replica() == Some(VnId(0)) {
                replica_at = Some(vr);
                break;
            }
        }
        let replica_at = replica_at.expect("joiner must join");
        let (_, report) = world.device(joiner).emulator_report().expect("emulating");
        let via = if report.joins > 0 {
            "transfer"
        } else {
            "reset"
        };
        t.row(&[
            s.to_string(),
            join_vr.to_string(),
            replica_at.to_string(),
            (replica_at - join_vr).to_string(),
            via.to_string(),
        ]);
    }
    t.note("latency bounded by one schedule cycle; live virtual nodes are joined by transfer, never reset");
    t
}

/// E11 — schedule quality (Section 4.1): the greedy schedule is always
/// complete and non-conflicting, and its length tracks deployment
/// density, not count.
pub fn schedule_quality() -> Table {
    let mut t = Table::new(
        "E11 / Section 4.1: schedule length vs deployment density",
        &[
            "grid",
            "spacing",
            "max degree",
            "s",
            "complete",
            "non-conflicting",
        ],
    );
    let conflict = R1 + 2.0 * R2; // 50
    for (rows, cols, spacing) in [
        (4usize, 4usize, 200.0f64),
        (4, 4, 60.0),
        (4, 4, 40.0),
        (4, 4, 25.0),
        (8, 8, 25.0),
    ] {
        let layout = VnLayout::grid(rows, cols, spacing, Point::ORIGIN, REGION);
        let schedule = Schedule::build(&layout, conflict);
        let max_degree = layout
            .iter()
            .map(|(vn, loc)| {
                layout
                    .iter()
                    .filter(|&(o, oloc)| o != vn && loc.distance(oloc) <= conflict)
                    .count()
            })
            .max()
            .unwrap_or(0);
        t.row(&[
            format!("{rows}x{cols}"),
            f2(spacing),
            max_degree.to_string(),
            schedule.len().to_string(),
            schedule.is_complete(&layout).to_string(),
            schedule.is_non_conflicting(&layout, conflict).to_string(),
        ]);
    }
    t.note("greedy colouring: s ≤ max degree + 1; same density ⇒ same s regardless of grid size");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_constant_in_device_count() {
        let t = overhead();
        // Rows 2, 4, 5 share the same layout with 12/24/48 devices.
        assert_eq!(t.cell(2, 4), t.cell(4, 4));
        assert_eq!(t.cell(2, 4), t.cell(5, 4));
        // Denser layout (row 2 vs row 0) has more rounds/vr.
        let sparse: u64 = t.cell(0, 4).parse().unwrap();
        let dense: u64 = t.cell(2, 4).parse().unwrap();
        assert!(dense > sparse);
    }

    #[test]
    fn availability_degrades_with_arrival_gap() {
        let t = availability();
        let dense_live: f64 = t.cell(0, 1).parse().unwrap();
        let sparse_live: f64 = t.cell(t.len() - 1, 1).parse().unwrap();
        assert!(dense_live > 0.9, "continuous coverage keeps the vn live");
        assert!(
            sparse_live < dense_live,
            "coverage gaps must reduce availability ({dense_live} vs {sparse_live})"
        );
        let dense_resets: u64 = t.cell(0, 2).parse().unwrap();
        let sparse_resets: u64 = t.cell(t.len() - 1, 2).parse().unwrap();
        assert!(
            sparse_resets > dense_resets,
            "gaps cause state loss ({dense_resets} vs {sparse_resets})"
        );
    }

    #[test]
    fn joins_use_transfer_and_are_bounded() {
        let t = join_latency();
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 4), "transfer", "live vn joined by transfer");
            let s: u64 = t.cell(row, 0).parse().unwrap();
            let latency: u64 = t.cell(row, 3).parse().unwrap();
            assert!(latency <= 2 * s + 2, "latency {latency} vs s {s}");
        }
    }

    #[test]
    fn schedules_always_valid() {
        let t = schedule_quality();
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 4), "true");
            assert_eq!(t.cell(row, 5), "true");
            let deg: u64 = t.cell(row, 2).parse().unwrap();
            let s: u64 = t.cell(row, 3).parse().unwrap();
            assert!(s <= deg + 1, "greedy bound");
        }
        // Same spacing, bigger grid (rows 3 and 4): s within 1 of each
        // other... identical density should give identical bound class.
        let s_small: u64 = t.cell(3, 3).parse().unwrap();
        let s_large: u64 = t.cell(4, 3).parse().unwrap();
        assert!(s_large <= s_small + 2, "density, not count, drives s");
    }
}
