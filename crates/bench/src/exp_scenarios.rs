//! Experiment E15 (`scenario_matrix`): the named-scenario catalog
//! swept across seeds through the `vi-scenario` subsystem.
//!
//! This is the declarative successor to the hand-assembled sweeps:
//! every row is one `(scenario, seed)` execution compiled from a
//! [`vi_scenario::ScenarioSpec`] and run by the deterministic parallel
//! [`SweepRunner`]. The experiment runs the identical matrix with one
//! worker and with a multi-worker pool, asserts the two result tables
//! are byte-identical (the runner's core guarantee), and reports the
//! wall-clock comparison — the artifact `BENCH_scenarios.json` tracks
//! both across PRs.

use crate::table::{f2, Table};
use std::time::Instant;
use vi_scenario::catalog::catalog;
use vi_scenario::{ScenarioOutcome, ScenarioSpec, SweepRunner};

/// Seeds swept per scenario by E15.
const SEEDS: [u64; 2] = [1, 2];

/// Timings of one paired sweep: the identical matrix executed with 1
/// worker and with `workers` workers, byte-identity already asserted.
struct PairedSweep {
    outcomes: Vec<ScenarioOutcome>,
    single_secs: f64,
    multi_secs: f64,
    workers: usize,
}

/// Runs `scenarios × seeds` with 1 worker and with a multi-worker
/// pool, and asserts the two outcome tables are byte-identical.
///
/// # Panics
///
/// Panics if the two sweeps disagree — that would be a determinism
/// bug in the runner or a scenario whose execution depends on
/// something other than its seed.
fn paired_sweep(scenarios: &[ScenarioSpec], seeds: &[u64]) -> PairedSweep {
    let t0 = Instant::now();
    let sequential = SweepRunner::new(1).run_matrix(scenarios, seeds);
    let single_secs = t0.elapsed().as_secs_f64();

    // At least two workers even on single-core machines, so the
    // determinism cross-check always exercises real concurrency.
    let workers = SweepRunner::auto().workers().max(2);
    let t0 = Instant::now();
    let parallel = SweepRunner::new(workers).run_matrix(scenarios, seeds);
    let multi_secs = t0.elapsed().as_secs_f64();

    assert_eq!(
        serde_json::to_string(&sequential).expect("serializable outcomes"),
        serde_json::to_string(&parallel).expect("serializable outcomes"),
        "sweep results must not depend on the worker count"
    );
    PairedSweep {
        outcomes: parallel,
        single_secs,
        multi_secs,
        workers,
    }
}

/// Renders a paired sweep as a table: one row per `(scenario, seed)`
/// outcome plus the wall-clock comparison as a note.
fn matrix_table(title: &str, scenarios: &[ScenarioSpec], seeds: &[u64]) -> Table {
    let sweep = paired_sweep(scenarios, seeds);
    let mut t = Table::new(
        title,
        &[
            "scenario",
            "seed",
            "nodes",
            "rounds",
            "broadcasts",
            "decided",
            "safety viol",
            "kst",
        ],
    );
    for o in &sweep.outcomes {
        t.row(&[
            o.scenario.clone(),
            o.seed.to_string(),
            o.nodes.to_string(),
            o.rounds.to_string(),
            o.broadcasts.to_string(),
            f2(o.decided_fraction),
            o.safety_violations().to_string(),
            o.stabilized_kst
                .map_or_else(|| "-".into(), |k| k.to_string()),
        ]);
    }
    t.note(format!(
        "wall-clock: 1 worker {:.3}s vs {} workers {:.3}s on {} runs (byte-identical tables asserted)",
        sweep.single_secs,
        sweep.workers,
        sweep.multi_secs,
        scenarios.len() * seeds.len(),
    ));
    t.note("only broken_detector and the promoted fuzz_* findings (deliberate model violations) may show safety violations");
    t
}

/// E15 — the full catalog × seed matrix.
pub fn scenario_matrix() -> Table {
    matrix_table(
        "E15 / scenario matrix: named scenarios × seeds via the parallel SweepRunner",
        &catalog(),
        &SEEDS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_scenario::catalog::scenario;

    /// Debug-friendly subset: the cheap CHA scenarios only.
    fn cheap() -> Vec<ScenarioSpec> {
        vec![
            scenario("clique").unwrap(),
            scenario("partition_heal").unwrap(),
        ]
    }

    #[test]
    fn matrix_rows_are_deterministic_and_safe() {
        // `matrix_table` itself asserts 1-worker vs N-worker equality.
        let t = matrix_table("subset", &cheap(), &[1, 2]);
        assert_eq!(t.len(), 4);
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 6), "0", "paper-model scenarios stay safe");
        }
    }

    /// Acceptance check for the sweep subsystem, CI-release only: on a
    /// multi-core machine the multi-worker sweep must beat the
    /// single-worker sweep in wall-clock while producing an identical
    /// table.
    #[test]
    #[ignore = "wall-clock benchmark; CI runs it explicitly in release (bench-smoke step)"]
    fn multi_worker_sweep_beats_single_worker() {
        let scenarios = catalog();
        // Enough seeds that the sweep's work dwarfs thread-pool
        // overhead, keeping the wall-clock comparison stable.
        let seeds: Vec<u64> = (1..=16).collect();
        // `paired_sweep` asserts 1-worker vs N-worker byte-identity.
        let sweep = paired_sweep(&scenarios, &seeds);
        eprintln!(
            "sweep of {} runs: 1 worker {:.3}s, {} workers {:.3}s",
            sweep.outcomes.len(),
            sweep.single_secs,
            sweep.workers,
            sweep.multi_secs,
        );
        if std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) > 1 {
            assert!(
                sweep.multi_secs < sweep.single_secs,
                "multi-worker sweep must beat single-worker ({:.3}s vs {:.3}s)",
                sweep.multi_secs,
                sweep.single_secs,
            );
        }
    }
}
