//! Experiments on convergent history agreement (E1–E6, E10).

use crate::harness::{run_clique, AdversaryKind, CliqueConfig};
use crate::table::{f2, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vi_baselines::{FullHistoryMessage, FullHistoryNode, MajorityConsensus, MajorityMessage};
use vi_contention::{OracleCm, PreStability, SharedCm};
use vi_core::cha::{Ballot, ChaProtocol, CheckpointCha, Color, TaggedProposer};
use vi_radio::geometry::{Point, Rect};
use vi_radio::mobility::Static;
use vi_radio::{Engine, EngineConfig, NodeSpec, RadioConfig};
use vi_scenario::{CmSpec, PlacementSpec, PopulationSpec, ScenarioSpec, SweepRunner, WorkloadSpec};

/// E1 — reproduces **Figure 2**: how a replica's color and output
/// depend on which phases it survives. A ✓ means the node received
/// the phase's message cleanly; an ✗ means it did not (collision
/// detected).
pub fn fig2() -> Table {
    let mut t = Table::new(
        "E1 / Figure 2: collision pattern → replica color → output",
        &["ballot", "veto-1", "veto-2", "color", "output"],
    );
    let patterns = [
        (true, true, true),
        (true, true, false),
        (true, false, false),
        (false, false, false),
    ];
    for (b_ok, v1_ok, v2_ok) in patterns {
        let mut node = ChaProtocol::<u64>::new();
        let ballot = node.begin_instance(7);
        if b_ok {
            node.on_ballot_phase(&[ballot], false);
        } else {
            node.on_ballot_phase(&[], true);
        }
        // The node hears its own veto (it knows what it broadcast);
        // an ✗ additionally raises the collision indication.
        let own_veto1 = node.veto1_broadcast();
        node.on_veto1_phase(own_veto1, !v1_ok);
        let own_veto2 = node.veto2_broadcast();
        let out = node.on_veto2_phase(own_veto2, !v2_ok);
        let mark = |ok: bool| if ok { "✓" } else { "✗" }.to_string();
        t.row(&[
            mark(b_ok),
            mark(v1_ok),
            mark(v2_ok),
            out.color.to_string(),
            if out.decided() { "history" } else { "⊥" }.to_string(),
        ]);
    }
    t.note("paper's Figure 2: ✓✓✓→green/history, ✓✓✗→yellow/⊥, ✓✗✗→orange/⊥, ✗✗✗→red/⊥");
    t
}

/// E2 — **Theorem 14 (message size)**: CHAP's largest message stays
/// constant as the execution grows, while the naïve full-history RSM
/// grows linearly.
pub fn msgsize() -> Table {
    let mut t = Table::new(
        "E2 / Theorem 14: max message size (bytes) vs execution length",
        &["instances k", "CHAP", "full-history RSM", "ratio"],
    );
    for k in [10u64, 100, 500, 1_000, 5_000] {
        let chap = run_clique(CliqueConfig::reliable(3, k, 7))
            .stats
            .max_message_bytes;

        // Full-history baseline on the same channel.
        let mut engine: Engine<FullHistoryMessage<u64>> = Engine::new(EngineConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            seed: 7,
            record_trace: false,
        });
        let cm = SharedCm::new(OracleCm::perfect());
        for i in 0..3 {
            engine.add_node(NodeSpec::new(
                Box::new(Static::new(Point::new(i as f64 * 0.3, 0.0))),
                Box::new(FullHistoryNode::new(
                    Box::new(TaggedProposer::new(i)),
                    cm.clone(),
                )),
            ));
        }
        engine.run(k);
        let naive = engine.stats().max_message_bytes;

        t.row(&[
            k.to_string(),
            chap.to_string(),
            naive.to_string(),
            f2(naive as f64 / chap as f64),
        ]);
    }
    t.note("CHAP column must be flat (constant-size ballots); baseline grows ~9 bytes/instance");
    t
}

/// E3 — **Theorem 14 (rounds)**: rounds per decided instance vs the
/// number of nodes — CHAP is a constant 3, majority-ack consensus is
/// Θ(n).
pub fn rounds() -> Table {
    let mut t = Table::new(
        "E3 / Theorem 14: rounds per decided instance vs n",
        &["n", "CHAP", "majority consensus"],
    );
    for n in [2usize, 4, 8, 16, 32, 64] {
        let instances = 20u64;
        let run = run_clique(CliqueConfig::reliable(n, instances, 5));
        let decided = run.outputs[0].iter().filter(|o| o.decided()).count() as f64;
        let chap = (instances * 3) as f64 / decided;

        let window = MajorityConsensus::<u64>::window(n);
        let mut engine: Engine<MajorityMessage<u64>> = Engine::new(EngineConfig {
            radio: RadioConfig::reliable(20.0, 40.0),
            seed: 5,
            record_trace: false,
        });
        let ids: Vec<_> = (0..n)
            .map(|i| {
                engine.add_node(NodeSpec::new(
                    Box::new(Static::new(Point::new(i as f64 * 0.1, 0.0))),
                    Box::new(MajorityConsensus::new(i, n, Box::new(|k| k))),
                ))
            })
            .collect();
        engine.run(10 * window);
        let node: &MajorityConsensus<u64> = engine.process(ids[0]).expect("node");
        let decided = node.decisions().iter().filter(|d| d.is_some()).count() as f64;
        let majority = (10 * window) as f64 / decided.max(1.0);

        t.row(&[n.to_string(), f2(chap), f2(majority)]);
    }
    t.note("CHAP column flat at ~3 (plus the one bootstrap instance); majority grows ~n/2");
    t
}

/// E4 — **Property 4 / Lemma 5**: the per-instance color spread across
/// nodes never exceeds one shade, at any loss rate.
pub fn spread() -> Table {
    let mut t = Table::new(
        "E4 / Property 4: color mix and max shade spread vs loss rate",
        &[
            "loss",
            "%green",
            "%yellow",
            "%orange",
            "%red",
            "max spread",
            "violations",
        ],
    );
    for loss in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut cfg = CliqueConfig::reliable(5, 300, 11);
        // Never stabilizes: the adversary is live for the whole run.
        cfg.radio = RadioConfig::stabilizing(10.0, 20.0, u64::MAX);
        cfg.adversary = AdversaryKind::Random(loss, loss / 2.0);
        let run = run_clique(cfg);

        let mut counts = [0usize; 4];
        let mut max_spread = 0u8;
        let instances = run.outputs[0].len();
        for k in 0..instances {
            let colors: Vec<Color> = run.outputs.iter().map(|o| o[k].color).collect();
            for c in &colors {
                counts[c.shade() as usize] += 1;
            }
            let hi = colors.iter().map(|c| c.shade()).max().unwrap();
            let lo = colors.iter().map(|c| c.shade()).min().unwrap();
            max_spread = max_spread.max(hi - lo);
        }
        let total: usize = counts.iter().sum();
        let pct = |c: usize| f2(100.0 * c as f64 / total as f64);
        let violations = run.checker().check_color_spread().len();
        t.row(&[
            f2(loss),
            pct(counts[3]),
            pct(counts[2]),
            pct(counts[1]),
            pct(counts[0]),
            max_spread.to_string(),
            violations.to_string(),
        ]);
    }
    t.note("max spread must be ≤ 1 and violations 0 at every loss rate (Lemma 5)");
    t
}

/// E5 — **Theorem 12 (liveness)**: after the network and contention
/// manager stabilize, every instance decides within a constant number
/// of further instances, regardless of how long the disruption lasted.
pub fn convergence() -> Table {
    let mut t = Table::new(
        "E5 / Theorem 12: convergence lag after stabilization",
        &[
            "disruption rounds",
            "first stable instance",
            "all-green from",
            "lag (instances)",
        ],
    );
    for d in [0u64, 12, 48, 96, 192] {
        let mut cfg = CliqueConfig::reliable(5, d / 3 + 30, 13);
        cfg.radio = RadioConfig::stabilizing(10.0, 20.0, d);
        cfg.cm_stabilize = d;
        cfg.cm_pre = PreStability::AllActive;
        cfg.adversary = AdversaryKind::Random(0.5, 0.3);
        let run = run_clique(cfg);
        let first_stable = d / 3 + 1;
        let from = run.all_green_from().expect("must converge");
        let lag = from.saturating_sub(first_stable);
        t.row(&[
            d.to_string(),
            first_stable.to_string(),
            from.to_string(),
            lag.to_string(),
        ]);
    }
    t.note("lag must stay O(1) — independent of disruption length (instances decide 3 rounds after stability)");
    t
}

/// E6 — **Theorems 10 & 13 (safety)**: a seed sweep with loss,
/// spurious collisions, and crash injection; the specification checker
/// must find zero violations.
///
/// Rewired through `vi-scenario`: each `(config, seed)` run is a
/// declarative [`ScenarioSpec`] and the whole sweep fans across cores
/// via [`SweepRunner`] — the per-run executions (node layout, CM, RNG
/// streams) are identical to the former hand-rolled
/// [`run_clique`] loop.
pub fn safety() -> Table {
    let mut t = Table::new(
        "E6 / Theorems 10+13: safety sweep (violations must be 0)",
        &["config", "runs", "outputs checked", "violations"],
    );
    let groups: Vec<(&str, f64, f64, bool)> = vec![
        ("clean", 0.0, 0.0, false),
        ("loss 0.3", 0.3, 0.1, false),
        ("loss 0.5 + crashes", 0.5, 0.2, true),
        ("loss 0.7 + crashes", 0.7, 0.3, true),
    ];
    let runs = 10u64;
    let spec = |name: &str, loss: f64, spur: f64, crashes: bool, seed: u64| -> ScenarioSpec {
        let line_at = |i: usize, count: usize| {
            PopulationSpec::fixed(
                count,
                PlacementSpec::Line {
                    start: Point::new(i as f64 * 0.1, 0.0),
                    step_x: 0.1,
                    step_y: 0.0,
                },
            )
        };
        let populations = if crashes {
            vec![
                line_at(0, 4),
                line_at(4, 1).crashing_at(40 + seed),
                line_at(5, 1).crashing_at(90 + seed),
            ]
        } else {
            vec![line_at(0, 6)]
        };
        ScenarioSpec {
            name: name.to_string(),
            arena: Rect::square(10.0),
            radio: RadioConfig::stabilizing(10.0, 20.0, 120),
            populations,
            adversary: AdversaryKind::Random(loss, spur),
            nemesis: vi_scenario::NemesisSpec::none(),
            cm: CmSpec::Oracle {
                stabilize_at: 120,
                pre: PreStability::Random(0.3),
            },
            workload: WorkloadSpec::ChaClique { instances: 60 },
        }
    };
    let jobs: Vec<(ScenarioSpec, u64)> = groups
        .iter()
        .flat_map(|&(name, loss, spur, crashes)| {
            (0..runs).map(move |seed| (spec(name, loss, spur, crashes, seed), seed))
        })
        .collect();
    let outcomes = SweepRunner::auto().run(&jobs);
    for (g, &(name, ..)) in groups.iter().enumerate() {
        let group = &outcomes[g * runs as usize..(g + 1) * runs as usize];
        let outputs: usize = group.iter().map(|o| o.outputs_checked).sum();
        // `check_all(true)`: every safety check plus a liveness
        // violation when the run never stabilized.
        let violations: usize = group
            .iter()
            .map(|o| o.safety_violations() + usize::from(o.stabilized_kst.is_none()))
            .sum();
        t.row(&[
            name.to_string(),
            runs.to_string(),
            outputs.to_string(),
            violations.to_string(),
        ]);
    }
    t.note("Agreement, Validity, Property 4 and Liveness checked on every run");
    t
}

/// E10 — **Section 3.5 (garbage collection)**: resident per-instance
/// state of plain CHAP vs checkpoint-CHA, as a function of execution
/// length and the fraction of non-green instances.
pub fn gc() -> Table {
    let mut t = Table::new(
        "E10 / Section 3.5: resident state entries after k instances",
        &["yellow rate", "k", "plain CHAP", "checkpoint-CHA"],
    );
    for yellow_rate in [0.0, 0.2, 0.5] {
        let mut plain = ChaProtocol::<u64>::new();
        let mut gc: CheckpointCha<u64, u64> =
            CheckpointCha::new(0, Box::new(|acc, _, v| *acc += v.copied().unwrap_or(0)));
        let mut rng = StdRng::seed_from_u64(17);
        for k in 1..=1000u64 {
            let yellow = rng.random_bool(yellow_rate);
            // Leader pattern: ballot received cleanly, veto-2 collision
            // iff this instance is "yellow".
            let b1 = plain.begin_instance(k);
            plain.on_ballot_phase(&[b1], false);
            plain.on_veto1_phase(false, false);
            plain.on_veto2_phase(false, yellow);
            let b2: Ballot<u64> = gc.begin_instance(k);
            gc.on_ballot_phase(&[b2], false);
            gc.on_veto1_phase(false, false);
            gc.on_veto2_phase(false, yellow);
            if k == 100 || k == 500 || k == 1000 {
                t.row(&[
                    f2(yellow_rate),
                    k.to_string(),
                    plain.resident_entries().to_string(),
                    gc.resident_entries().to_string(),
                ]);
            }
        }
    }
    t.note("plain grows ~2 entries/instance; checkpoint-CHA stays bounded by the current yellow streak");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matches_paper() {
        let t = fig2();
        assert_eq!(t.len(), 4);
        assert_eq!(t.cell(0, 3), "green");
        assert_eq!(t.cell(0, 4), "history");
        assert_eq!(t.cell(1, 3), "yellow");
        assert_eq!(t.cell(2, 3), "orange");
        assert_eq!(t.cell(3, 3), "red");
        for row in 1..4 {
            assert_eq!(t.cell(row, 4), "⊥");
        }
    }

    #[test]
    fn msgsize_chap_is_constant_baseline_grows() {
        let t = msgsize();
        let chap_first: usize = t.cell(0, 1).parse().unwrap();
        let chap_last: usize = t.cell(t.len() - 1, 1).parse().unwrap();
        assert_eq!(chap_first, chap_last, "CHAP message size constant");
        let naive_first: usize = t.cell(0, 2).parse().unwrap();
        let naive_last: usize = t.cell(t.len() - 1, 2).parse().unwrap();
        assert!(naive_last > naive_first * 100, "baseline grows linearly");
    }

    #[test]
    fn rounds_chap_constant_majority_linear() {
        let t = rounds();
        let chap_small: f64 = t.cell(0, 1).parse().unwrap();
        let chap_large: f64 = t.cell(t.len() - 1, 1).parse().unwrap();
        assert!((chap_small - chap_large).abs() < 0.5, "CHAP flat");
        let maj_small: f64 = t.cell(0, 2).parse().unwrap();
        let maj_large: f64 = t.cell(t.len() - 1, 2).parse().unwrap();
        assert!(maj_large > maj_small * 8.0, "majority grows with n");
    }

    #[test]
    fn spread_never_violates_property4() {
        let t = spread();
        for row in 0..t.len() {
            let spread: u8 = t.cell(row, 5).parse().unwrap();
            assert!(spread <= 1, "row {row}");
            assert_eq!(t.cell(row, 6), "0");
        }
    }

    #[test]
    fn convergence_lag_is_constant() {
        let t = convergence();
        for row in 0..t.len() {
            let lag: u64 = t.cell(row, 3).parse().unwrap();
            assert!(lag <= 3, "lag {lag} too large in row {row}");
        }
    }

    #[test]
    fn gc_bounds_resident_state() {
        let t = gc();
        // Clean channel: checkpoint-CHA keeps nothing, plain keeps 2k.
        assert_eq!(t.cell(2, 2), "2000");
        assert_eq!(t.cell(2, 3), "0");
    }
}
