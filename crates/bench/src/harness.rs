//! Shared experiment runners.

use vi_contention::{OracleCm, PreStability, SharedCm};
use vi_core::cha::{ChaMessage, ChaNode, ChaOutput, ChaSpecChecker, TaggedProposer};
use vi_radio::geometry::Point;
use vi_radio::mobility::Static;
use vi_radio::trace::ChannelStats;
use vi_radio::{Engine, EngineConfig, NodeId, NodeSpec, RadioConfig};

// `AdversaryKind` began life here and moved to `vi-radio::adversary`
// (serde-derived) so scenario specs can describe adversaries
// declaratively; re-exported so existing call sites keep compiling.
pub use vi_radio::adversary::AdversaryKind;

/// Configuration for a Section 3 single-region CHAP run.
#[derive(Clone, Debug)]
pub struct CliqueConfig {
    /// Number of nodes (all within `R1/2` of one location).
    pub n: usize,
    /// Agreement instances to run (3 rounds each).
    pub instances: u64,
    /// Radio parameters (set `rcf`/`racc` for stabilization studies).
    pub radio: RadioConfig,
    /// Simulation seed.
    pub seed: u64,
    /// Round from which the contention manager realizes Property 3.
    pub cm_stabilize: u64,
    /// Contention-manager behaviour before stabilization.
    pub cm_pre: PreStability,
    /// The channel adversary.
    pub adversary: AdversaryKind,
    /// Scripted crashes: `(node index, round)`.
    pub crashes: Vec<(usize, u64)>,
}

impl CliqueConfig {
    /// A well-behaved clique: reliable channel, perfect contention
    /// manager.
    pub fn reliable(n: usize, instances: u64, seed: u64) -> Self {
        CliqueConfig {
            n,
            instances,
            radio: RadioConfig::reliable(10.0, 20.0),
            seed,
            cm_stabilize: 0,
            cm_pre: PreStability::NoneActive,
            adversary: AdversaryKind::None,
            crashes: Vec::new(),
        }
    }
}

/// The result of a clique run.
#[derive(Debug)]
pub struct CliqueRun {
    /// Per-node per-instance outputs.
    pub outputs: Vec<Vec<ChaOutput<u64>>>,
    /// Per-node proposals `(instance, value)`.
    pub proposals: Vec<Vec<(u64, u64)>>,
    /// Channel statistics.
    pub stats: ChannelStats,
    /// Indices of nodes that crashed.
    pub crashed: Vec<usize>,
}

impl CliqueRun {
    /// Builds a specification checker loaded with this run's events.
    pub fn checker(&self) -> ChaSpecChecker<u64> {
        let mut c = ChaSpecChecker::new();
        for props in &self.proposals {
            for &(k, v) in props {
                c.record_proposal(k, v);
            }
        }
        for (node, outs) in self.outputs.iter().enumerate() {
            for out in outs {
                c.record_output(node, out);
            }
        }
        for &node in &self.crashed {
            c.mark_crashed(node);
        }
        c
    }

    /// Fraction of (node, instance) outcomes that decided.
    pub fn decided_fraction(&self) -> f64 {
        let total: usize = self.outputs.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let decided: usize = self
            .outputs
            .iter()
            .flat_map(|o| o.iter())
            .filter(|o| o.decided())
            .count();
        decided as f64 / total as f64
    }

    /// First instance from which every surviving node decided every
    /// instance (measured stabilization; `None` if never).
    pub fn all_green_from(&self) -> Option<u64> {
        let last = self
            .outputs
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.crashed.contains(i))
            .filter_map(|(_, o)| o.last().map(|out| out.instance))
            .min()?;
        'cand: for kst in 1..=last {
            for (i, outs) in self.outputs.iter().enumerate() {
                if self.crashed.contains(&i) {
                    continue;
                }
                for out in outs.iter().filter(|o| o.instance >= kst) {
                    if !out.decided() {
                        continue 'cand;
                    }
                }
            }
            return Some(kst);
        }
        None
    }
}

/// Runs CHAP in a single region per `cfg`.
///
/// The engine is built through [`Engine::new`], so every clique run —
/// and every experiment layered on this harness — resolves its rounds
/// through the grid-indexed [`vi_radio::Medium`] rather than the naive
/// reference resolver.
pub fn run_clique(cfg: CliqueConfig) -> CliqueRun {
    let mut engine: Engine<ChaMessage<u64>> = Engine::new(EngineConfig {
        radio: cfg.radio,
        seed: cfg.seed,
        record_trace: false,
    });
    engine.set_adversary(cfg.adversary.build());
    let cm = SharedCm::new(OracleCm::new(cfg.cm_stabilize, cfg.cm_pre, cfg.seed));
    let ids: Vec<NodeId> = (0..cfg.n)
        .map(|i| {
            // All nodes within R1/2 of the region center.
            let pos = Point::new((i as f64 * 0.1) % 2.0, 0.0);
            let mut spec = NodeSpec::new(
                Box::new(Static::new(pos)),
                Box::new(ChaNode::<u64>::new(
                    Box::new(TaggedProposer::new(i as u64)),
                    cm.clone(),
                )) as Box<dyn vi_radio::Process<ChaMessage<u64>>>,
            );
            if let Some(&(_, round)) = cfg.crashes.iter().find(|&&(node, _)| node == i) {
                spec = spec.crash_at(round);
            }
            engine.add_node(spec)
        })
        .collect();

    engine.run(cfg.instances * 3);

    let outputs = ids
        .iter()
        .map(|&id| {
            engine
                .process::<ChaNode<u64>>(id)
                .expect("node")
                .outputs()
                .to_vec()
        })
        .collect();
    let proposals = ids
        .iter()
        .map(|&id| {
            engine
                .process::<ChaNode<u64>>(id)
                .expect("node")
                .proposals()
                .to_vec()
        })
        .collect();
    CliqueRun {
        outputs,
        proposals,
        stats: *engine.stats(),
        crashed: cfg.crashes.iter().map(|&(node, _)| node).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_run_is_fully_green_after_bootstrap() {
        let run = run_clique(CliqueConfig::reliable(4, 20, 1));
        assert!(run.decided_fraction() > 0.9);
        assert!(run.all_green_from().unwrap_or(u64::MAX) <= 2);
        assert!(run.checker().check_all(true).is_empty());
    }

    #[test]
    fn lossy_run_stays_safe() {
        let mut cfg = CliqueConfig::reliable(5, 50, 3);
        cfg.radio = RadioConfig::stabilizing(10.0, 20.0, 90);
        cfg.cm_stabilize = 90;
        cfg.cm_pre = PreStability::Random(0.4);
        cfg.adversary = AdversaryKind::Random(0.4, 0.2);
        cfg.crashes = vec![(4, 77)];
        let run = run_clique(cfg);
        let violations = run.checker().check_all(true);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
