//! Experiment E14 (`radio_scale`): engine scalability of the channel
//! substrate itself.
//!
//! The paper's efficiency claims are about protocol-level costs; this
//! experiment measures the *simulator's* cost of realizing the channel
//! model, holding the grid-indexed [`Medium`] against the naive
//! [`resolve_round_reference`] resolver on identical inputs.
//!
//! Deployments keep node density constant (the area grows with `n`),
//! which is the regime the virtual-infrastructure workloads live in:
//! the naive resolver then still scans every broadcaster for every
//! receiver (quadratic, cubic in dense worst cases), while the medium's
//! per-receiver 3×3-cell queries keep the round near-linear in `n`.

use crate::table::{f2, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use vi_radio::adversary::NoAdversary;
use vi_radio::channel::{
    resolve_round_reference, Medium, ReceptionBuffer, TopologyDelta, TxIntent,
};
use vi_radio::geometry::Point;
use vi_radio::{NodeId, RadioConfig};

const R1: f64 = 10.0;
const R2: f64 = 20.0;
/// Mean spacing between nodes, chosen so each R2 disk holds a handful
/// of nodes regardless of `n` (constant density).
const SPACING: f64 = 15.0;

/// The radio parameters used by the scaling runs (shared with the
/// criterion bench so both measure the same workload).
pub fn radio() -> RadioConfig {
    RadioConfig::reliable(R1, R2)
}

/// A constant-density deployment: `n` nodes uniform in a square whose
/// side grows with `sqrt(n)`; every third node broadcasts. Shared with
/// the criterion bench in `benches/radio.rs`.
pub fn make_intents(n: usize, seed: u64) -> Vec<TxIntent<u64>> {
    let side = (n as f64).sqrt() * SPACING;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| TxIntent {
            node: NodeId::from(i),
            pos: Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)),
            payload: (i % 3 == 0).then_some(i as u64),
        })
        .collect()
}

/// Wall-clock seconds for `rounds` rounds through the per-round
/// rebuilt medium, the cached-topology medium (static deployment:
/// rebuild once, then [`TopologyDelta::Unchanged`]), and the reference
/// resolver, on identical inputs.
///
/// Returns `(medium_secs, cached_secs, reference_secs)` per-run
/// totals. All paths see the same intents; adversary and RNG are
/// benign/fixed so the comparison is pure resolution cost.
pub fn scale_times(n: usize, rounds: u32, seed: u64) -> (f64, f64, f64) {
    let cfg = radio();
    let intents = make_intents(n, seed);

    let mut medium = Medium::new(cfg);
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    // Warm the buffers so the timed loop measures steady state.
    medium.resolve_into(0, &intents, &mut NoAdversary, &mut rng, &mut out);
    let t0 = Instant::now();
    for round in 0..rounds {
        medium.resolve_into(
            u64::from(round),
            &intents,
            &mut NoAdversary,
            &mut rng,
            &mut out,
        );
    }
    let medium_secs = t0.elapsed().as_secs_f64();

    // The static fast path. Warm up through the full mode ladder —
    // `Rebuild` resolves via the churn fallback, the first `Unchanged`
    // round re-anchors the topology cache — so the timed loop below
    // measures pure steady state.
    let mut cached = Medium::new(cfg);
    let mut soa = ReceptionBuffer::new();
    let mut rng = StdRng::seed_from_u64(seed);
    cached.resolve_round_cached(
        0,
        &intents,
        TopologyDelta::Rebuild,
        &mut NoAdversary,
        &mut rng,
        &mut soa,
    );
    cached.resolve_round_cached(
        0,
        &intents,
        TopologyDelta::Unchanged,
        &mut NoAdversary,
        &mut rng,
        &mut soa,
    );
    let t0 = Instant::now();
    for round in 0..rounds {
        cached.resolve_round_cached(
            u64::from(round),
            &intents,
            TopologyDelta::Unchanged,
            &mut NoAdversary,
            &mut rng,
            &mut soa,
        );
    }
    let cached_secs = t0.elapsed().as_secs_f64();

    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    for round in 0..rounds {
        let receptions =
            resolve_round_reference(u64::from(round), &cfg, &intents, &mut NoAdversary, &mut rng);
        assert_eq!(receptions.len(), intents.len());
    }
    let reference_secs = t0.elapsed().as_secs_f64();

    (medium_secs, cached_secs, reference_secs)
}

/// Median of three timing runs (the shape assertions divide timings,
/// so single-run jitter matters).
fn median_times(n: usize, rounds: u32) -> (f64, f64, f64) {
    let mut medium: Vec<f64> = Vec::new();
    let mut cached: Vec<f64> = Vec::new();
    let mut reference: Vec<f64> = Vec::new();
    for seed in 0..3 {
        let (m, c, r) = scale_times(n, rounds, seed);
        medium.push(m);
        cached.push(c);
        reference.push(r);
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    (med(&mut medium), med(&mut cached), med(&mut reference))
}

/// Committed per-round budget for the rebuilt medium at n = 5000 (the
/// CI regression guard; the historical baseline is ~1.15 ms/round, so
/// the budget leaves generous headroom for shared-runner noise while
/// still catching an accidental return to super-linear behaviour).
pub const MEDIUM_MS_PER_ROUND_BUDGET_N5000: f64 = 4.0;

/// E14: per-round resolution time — grid medium (per-round rebuild),
/// cached static-topology medium, and naive reference — as the
/// population grows at constant density (500–5000 nodes).
pub fn radio_scale() -> Table {
    let mut t = Table::new(
        "E14 radio_scale: channel resolution — rebuilt medium, static-cached medium, naive resolver",
        &[
            "n",
            "medium ms/round",
            "static-cached ms/round",
            "reference ms/round",
            "speedup vs ref",
            "static win",
        ],
    );
    let rounds = 10;
    for n in [500usize, 1000, 2000, 5000] {
        let (medium_secs, cached_secs, reference_secs) = median_times(n, rounds);
        let per_round = 1000.0 / f64::from(rounds);
        t.row(&[
            n.to_string(),
            format!("{:.3}", medium_secs * per_round),
            format!("{:.3}", cached_secs * per_round),
            format!("{:.3}", reference_secs * per_round),
            f2(reference_secs / medium_secs.max(f64::MIN_POSITIVE)),
            f2(medium_secs / cached_secs.max(f64::MIN_POSITIVE)),
        ]);
    }
    t.note("constant density: area grows with n; every third node broadcasts");
    t.note("medium: SpatialGrid (cell R2) rebuilt per round; static-cached: persistent R2 neighborhoods (TopologyDelta::Unchanged); reference: all-pairs scan");
    t.note(
        "static win = medium / static-cached — the static-heavy fast-path gain at fixed topology",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The grid medium, the cached-topology medium, and the naive
    /// resolver agree on these bench inputs (the exhaustive
    /// differential checks live in `tests/substrate_properties.rs`).
    #[test]
    fn medium_matches_reference_on_bench_inputs() {
        let cfg = radio();
        let intents = make_intents(300, 7);
        let mut medium = Medium::new(cfg);
        let fast = medium.resolve(0, &intents, &mut NoAdversary, &mut StdRng::seed_from_u64(1));
        let slow = resolve_round_reference(
            0,
            &cfg,
            &intents,
            &mut NoAdversary,
            &mut StdRng::seed_from_u64(1),
        );
        let mut cached = Medium::new(cfg);
        let mut soa = ReceptionBuffer::new();
        cached.resolve_round_cached(
            0,
            &intents,
            TopologyDelta::Rebuild,
            &mut NoAdversary,
            &mut StdRng::seed_from_u64(1),
            &mut soa,
        );
        let via_cache = soa.to_attributed();
        assert_eq!(fast.len(), slow.len());
        assert_eq!(via_cache.len(), slow.len());
        for ((f, s), c) in fast.iter().zip(&slow).zip(&via_cache) {
            assert_eq!(f.node, s.node);
            assert_eq!(f.collision, s.collision);
            assert_eq!(f.messages, s.messages);
            assert_eq!(c.node, s.node);
            assert_eq!(c.collision, s.collision);
            assert_eq!(c.messages, s.messages);
        }
    }

    /// CI regression guard (release smoke): the rebuilt medium must
    /// stay within the committed ms/round budget at n = 5000. Retries
    /// with more rounds before concluding a real regression.
    #[test]
    #[ignore = "wall-clock benchmark; CI runs it explicitly in release (metropolis smoke step)"]
    fn medium_ms_per_round_within_budget() {
        let mut failure = String::new();
        for (attempt, rounds) in [8u32, 16, 32].into_iter().enumerate() {
            let (medium_secs, _, _) = median_times(5000, rounds);
            let ms_per_round = medium_secs * 1000.0 / f64::from(rounds);
            if ms_per_round <= MEDIUM_MS_PER_ROUND_BUDGET_N5000 {
                eprintln!("medium at n=5000: {ms_per_round:.3} ms/round (budget {MEDIUM_MS_PER_ROUND_BUDGET_N5000})");
                return;
            }
            failure = format!(
                "attempt {attempt}: {ms_per_round:.3} ms/round over budget {MEDIUM_MS_PER_ROUND_BUDGET_N5000}"
            );
        }
        panic!("medium ms/round regression at n=5000; last: {failure}");
    }

    /// The acceptance shape: ≥5× over the reference path at n=2000,
    /// and medium runtime growing far slower than the naive path's
    /// quadratic-to-cubic trend.
    ///
    /// Wall-clock assertions are noise-sensitive on shared CI runners,
    /// so a failed attempt is re-measured with more rounds (which
    /// averages scheduler jitter away) before the test concludes the
    /// scaling is actually broken.
    #[test]
    #[ignore = "wall-clock benchmark; CI runs it explicitly in release (bench-smoke step)"]
    fn grid_medium_scales_near_linearly() {
        let mut failure = String::new();
        for (attempt, rounds) in [4u32, 8, 16].into_iter().enumerate() {
            let (medium_500, _, _) = median_times(500, rounds);
            let (medium_2000, _, reference_2000) = median_times(2000, rounds);

            let speedup = reference_2000 / medium_2000.max(f64::MIN_POSITIVE);
            // Growth exponent between n=500 and n=2000 (4x population):
            // ~1 for linear, 2 for quadratic, 3 for cubic. Allow
            // generous slack for timer noise while still excluding the
            // naive trend.
            let exponent = (medium_2000 / medium_500.max(f64::MIN_POSITIVE)).log2() / 2.0;
            if speedup >= 5.0 && exponent < 2.2 {
                return;
            }
            failure = format!(
                "attempt {attempt}: speedup {speedup:.1}x (want >=5x; medium \
                 {medium_2000:.4}s vs reference {reference_2000:.4}s), growth \
                 exponent {exponent:.2} (want <2.2; {medium_500:.4}s -> {medium_2000:.4}s)"
            );
        }
        panic!("grid medium failed the scaling shape on every attempt; last: {failure}");
    }

    #[test]
    fn table_has_expected_shape() {
        let t = radio_scale();
        assert_eq!(t.len(), 4);
        assert_eq!(t.cell(0, 0), "500");
        assert_eq!(t.cell(3, 0), "5000");
    }
}
