//! # vi-bench
//!
//! Experiment harness reproducing every figure and quantitative claim
//! of the paper. Each experiment (E1–E21) is a function returning a
//! [`Table`], callable from the `repro` binary (which prints
//! paper-shaped tables and writes a `BENCH_<id>.json` artifact per
//! experiment) and exercised by unit tests that assert the claimed
//! *shape* (who wins, what stays constant, what grows). Seed sweeps
//! (E6, E13, E15, E16, E17, E18) fan across cores through
//! [`vi_scenario::SweepRunner`].

pub mod diff;
pub mod exp_ablation;
pub mod exp_audit;
pub mod exp_cha;
pub mod exp_emulation;
pub mod exp_fuzz;
pub mod exp_metropolis;
pub mod exp_monitor;
pub mod exp_protocol;
pub mod exp_radio;
pub mod exp_scenarios;
pub mod exp_telemetry;
pub mod exp_traffic;
pub mod harness;
pub mod table;

pub use table::Table;

/// An experiment entry: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> Table);

/// All experiments in index order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("fig2", "Figure 2: collision pattern → color", exp_cha::fig2),
        ("msgsize", "Theorem 14: message size vs k", exp_cha::msgsize),
        ("rounds", "Theorem 14: rounds vs n", exp_cha::rounds),
        ("spread", "Property 4: color spread", exp_cha::spread),
        (
            "convergence",
            "Theorem 12: liveness lag",
            exp_cha::convergence,
        ),
        ("safety", "Theorems 10+13: safety sweep", exp_cha::safety),
        (
            "overhead",
            "Section 4.3: emulation overhead",
            exp_emulation::overhead,
        ),
        (
            "availability",
            "Section 4.2: progress under churn",
            exp_emulation::availability,
        ),
        (
            "join",
            "Section 4.3: join latency",
            exp_emulation::join_latency,
        ),
        ("gc", "Section 3.5: garbage collection", exp_cha::gc),
        (
            "schedule",
            "Section 4.1: schedule quality",
            exp_emulation::schedule_quality,
        ),
        (
            "ablation3pc",
            "Ablation: CHAP vs 3PC",
            exp_ablation::ablation_3pc,
        ),
        (
            "necessity",
            "Ablation: detector completeness is necessary",
            exp_ablation::detector_necessity,
        ),
        (
            "radio_scale",
            "Engine scalability: grid medium vs naive resolver",
            exp_radio::radio_scale,
        ),
        (
            "scenario_matrix",
            "Named scenarios × seeds via the parallel SweepRunner",
            exp_scenarios::scenario_matrix,
        ),
        (
            "traffic_profile",
            "Client traffic: apps × scenarios × open/closed loop",
            exp_traffic::traffic_profile,
        ),
        (
            "consistency_audit",
            "History checkers: apps × nemesis fault schedules",
            exp_audit::consistency_audit,
        ),
        (
            "metropolis",
            "Engine hot path at city scale: old vs overhauled round path",
            exp_metropolis::metropolis,
        ),
        (
            "telemetry",
            "Observability: deterministic counters, phase timers, Perfetto export",
            exp_telemetry::telemetry,
        ),
        (
            "protocol_trace",
            "Causal tracing: decision timelines + incident-bundle replay",
            exp_protocol::protocol_trace,
        ),
        (
            "live_monitor",
            "Live monitoring: snapshot pipeline, sinks, /metrics, sweep progress",
            exp_monitor::live_monitor,
        ),
        (
            "fuzz_hunt",
            "Robustness: coverage-guided fuzz campaign + violation minimization",
            exp_fuzz::fuzz_hunt,
        ),
    ]
}
