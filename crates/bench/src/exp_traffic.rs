//! Experiment E16 (`traffic_profile`): every vi-app under sustained
//! client traffic, across catalog scenarios, in both arrival
//! disciplines.
//!
//! For each of the four apps (register, mutex, tracking, georouting)
//! and each of three catalog base scenarios, the experiment swaps the
//! scenario's workload for a [`WorkloadSpec::Traffic`] — once
//! open-loop (fixed arrival schedule) and once closed-loop (bounded
//! outstanding) — and sweeps the whole matrix through the
//! deterministic parallel [`SweepRunner`], twice (1 worker vs N
//! workers) to assert the metrics tables are byte-identical. Rows
//! report p50/p95/p99/max latency (in virtual rounds), throughput,
//! and drop accounting; per-app aggregate rows merge the scenario
//! histograms in job order, exercising the mergeability guarantee.
//! The artifact is `BENCH_traffic.json`.

use crate::table::{f2, Table};
use vi_scenario::catalog::scenario;
use vi_scenario::{
    AppKind, LoadMode, RatePhase, ScenarioOutcome, ScenarioSpec, SweepRunner, TrafficSpec,
    WorkloadSpec,
};
use vi_traffic::LatencyHistogram;

/// The catalog scenarios E16 drives traffic over (all three deploy
/// virtual-node worlds with an always-alive first population that
/// hosts the client ports).
const BASE_SCENARIOS: [&str; 3] = ["sparse_grid", "robot_patrol", "commuter_wave"];

/// The seed every E16 job runs with.
const SEED: u64 = 1;

/// The open-loop profile: modest base rate with a mid-run burst.
fn open_profile(clients: usize) -> TrafficSpec {
    TrafficSpec {
        clients,
        mode: LoadMode::Open {
            rate_per_round: 0.25,
            phases: vec![
                RatePhase {
                    from_vr: 15,
                    rate_per_round: 0.5,
                },
                RatePhase {
                    from_vr: 25,
                    rate_per_round: 0.25,
                },
            ],
        },
        query_fraction: 0.5,
        timeout_rounds: 30,
        virtual_rounds: 40,
    }
}

/// The closed-loop profile: one outstanding request per client with a
/// short think time.
fn closed_profile(clients: usize) -> TrafficSpec {
    TrafficSpec {
        clients,
        mode: LoadMode::Closed {
            outstanding_per_client: 1,
            think_rounds: 2,
        },
        query_fraction: 0.5,
        timeout_rounds: 30,
        virtual_rounds: 40,
    }
}

/// Rebases a catalog scenario onto a traffic workload for `app`,
/// reusing the scenario's own virtual-node layout. The client count
/// is the scenario's first (always-alive) population.
fn traffic_variant(base: &ScenarioSpec, app: AppKind, traffic: TrafficSpec) -> ScenarioSpec {
    let layout = match &base.workload {
        WorkloadSpec::ViCounter { layout, .. } => layout.clone(),
        WorkloadSpec::Traffic { layout, .. } => layout.clone(),
        WorkloadSpec::ChaClique { .. } | WorkloadSpec::MajorityRegister { .. } => {
            panic!(
                "{}: base scenario must deploy a virtual-node world",
                base.name
            )
        }
    };
    let mut spec = base.clone();
    spec.name = format!("{}/{}/{}", base.name, app.name(), traffic.mode.name());
    spec.workload = WorkloadSpec::Traffic {
        app,
        layout,
        traffic,
        audit: false,
    };
    spec
}

/// The full E16 job list: apps × base scenarios × disciplines.
pub fn traffic_jobs() -> Vec<(ScenarioSpec, u64)> {
    let mut jobs = Vec::new();
    for app in AppKind::all() {
        for name in BASE_SCENARIOS {
            let base = scenario(name).expect("catalog scenario");
            let clients = base.populations[0].count.min(4);
            jobs.push((traffic_variant(&base, app, open_profile(clients)), SEED));
            jobs.push((traffic_variant(&base, app, closed_profile(clients)), SEED));
        }
    }
    jobs
}

/// Runs `jobs` with 1 worker and with a multi-worker pool, asserting
/// the two metrics tables — including every latency histogram — are
/// byte-identical.
///
/// # Panics
///
/// Panics if the sweeps disagree: that would be a determinism bug in
/// the runner, the driver, or a service adapter.
pub fn paired_traffic_sweep(jobs: &[(ScenarioSpec, u64)], workers: usize) -> Vec<ScenarioOutcome> {
    let sequential = SweepRunner::new(1).run(jobs);
    let parallel = SweepRunner::new(workers.max(2)).run(jobs);
    assert_eq!(
        serde_json::to_string(&sequential).expect("serializable outcomes"),
        serde_json::to_string(&parallel).expect("serializable outcomes"),
        "traffic metrics must not depend on the worker count"
    );
    parallel
}

/// E16 — the traffic profile table.
pub fn traffic_profile() -> Table {
    let jobs = traffic_jobs();
    let outcomes = paired_traffic_sweep(&jobs, SweepRunner::auto().workers());

    let mut t = Table::new(
        "E16 / traffic profile: apps × catalog scenarios × open/closed loop",
        &[
            "app", "scenario", "mode", "issued", "done", "t/o", "p50", "p95", "p99", "max",
            "thr/vr",
        ],
    );
    // Per-app merged histograms (job order ⇒ deterministic):
    // `(app, histogram, completed, issued, timed_out)`.
    let mut merged: Vec<(String, LatencyHistogram, u64, u64, u64)> = Vec::new();
    for o in &outcomes {
        let s = o.traffic.as_ref().expect("traffic outcome");
        let base = o.scenario.split('/').next().unwrap_or(&o.scenario);
        t.row(&[
            s.app.clone(),
            base.to_string(),
            s.mode.clone(),
            s.issued.to_string(),
            s.completed.to_string(),
            s.timed_out.to_string(),
            s.p50.to_string(),
            s.p95.to_string(),
            s.p99.to_string(),
            s.max.to_string(),
            f2(s.throughput_per_round),
        ]);
        match merged.iter_mut().find(|(app, ..)| *app == s.app) {
            Some((_, h, done, issued, timed_out)) => {
                h.merge(&s.latency);
                *done += s.completed;
                *issued += s.issued;
                *timed_out += s.timed_out;
            }
            None => merged.push((
                s.app.clone(),
                s.latency.clone(),
                s.completed,
                s.issued,
                s.timed_out,
            )),
        }
    }
    for (app, h, done, issued, timed_out) in &merged {
        t.row(&[
            app.clone(),
            "(all)".to_string(),
            "both".to_string(),
            issued.to_string(),
            done.to_string(),
            timed_out.to_string(),
            h.p50().to_string(),
            h.p95().to_string(),
            h.p99().to_string(),
            h.max().to_string(),
            "-".to_string(),
        ]);
    }
    t.note("latencies in virtual rounds; 1-worker vs N-worker sweeps asserted byte-identical");
    t.note("aggregate rows merge per-scenario histograms in job order (mergeability guarantee)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance: every app completes requests on every base
    /// scenario, in both disciplines, and the metrics tables are
    /// byte-identical across sweep worker counts.
    #[test]
    fn all_apps_complete_traffic_and_sweeps_are_worker_invariant() {
        // Subset for test runtime: one base scenario, all apps, both
        // modes; `paired_traffic_sweep` itself asserts 1 vs 4 workers.
        let jobs: Vec<_> = traffic_jobs()
            .into_iter()
            .filter(|(s, _)| s.name.starts_with("robot_patrol/"))
            .collect();
        assert_eq!(jobs.len(), 8, "4 apps × 2 modes");
        let outcomes = paired_traffic_sweep(&jobs, 4);
        for o in &outcomes {
            let s = o.traffic.as_ref().expect("traffic summary");
            assert!(s.issued > 0, "{}: issued", o.scenario);
            assert!(
                s.completed > 0,
                "{}: some requests must complete: {s:?}",
                o.scenario
            );
            assert_eq!(
                s.completed + s.timed_out + s.in_flight_at_end,
                s.issued,
                "{}: accounting closes: {s:?}",
                o.scenario
            );
            assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        }
    }

    #[test]
    fn traffic_variants_validate_and_round_trip() {
        for (spec, _) in traffic_jobs() {
            spec.validate().expect("traffic variant must validate");
            let json = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{} round-trips", spec.name);
        }
    }
}
