//! Experiment E22 (`fuzz_hunt`): the coverage-guided fuzz campaign as
//! a reproducible experiment.
//!
//! Three claims, the first two asserted inline before anything is
//! reported:
//!
//! 1. **Campaigns are deterministic and worker-invariant.** The same
//!    [`FuzzConfig`] runs under 1 sweep worker and under 4; the two
//!    campaigns must agree on every count, every coverage bucket, and
//!    every minimized finding. The candidate batch size is a constant,
//!    so the mutation schedule never observes the parallelism.
//! 2. **The fuzzer rediscovers the planted violation.** The seed
//!    corpus's `fuzz_majority` ancestor is *clean* (no partition); the
//!    campaign must mutate its way back to the same disconnected-
//!    majority linearizability violation that the `broken_majority`
//!    catalog scenario plants deliberately — an audit-class finding in
//!    the `fuzz_majority` family — within the fixed iteration budget.
//!    Its delta-debugged repro spec must still fail the same way, and
//!    its incident bundle must replay byte-identically at 1 and 4
//!    workers. With `VI_INCIDENT_DIR` set, the minimized spec and
//!    bundle are written to disk (CI uploads both and replays the
//!    bundle via `repro --replay`).
//! 3. **Coverage feedback earns its keep.** The table reports the
//!    corpus (buckets per workload family), the findings (class,
//!    discovery iteration, minimization effort), and campaign
//!    throughput (executed / rejected / new-bucket counts), so corpus
//!    growth can be tracked across PRs.
//!
//! The artifact is `BENCH_fuzz.json`.

use crate::table::Table;
use std::collections::BTreeMap;
use vi_fuzz::{run_campaign, FailureClass, Finding, FuzzConfig, FuzzReport};

/// The pinned campaign: seed 5 at 200 iterations rediscovers the
/// planted majority violation (and, as a bonus, a CHA safety
/// violation and a traffic stall) — empirically verified, then frozen
/// so CI is deterministic.
pub const CAMPAIGN_SEED: u64 = 5;
/// Iteration budget of the pinned campaign.
pub const CAMPAIGN_ITERS: u64 = 200;

/// The E22 campaign config at `workers` sweep workers.
pub fn campaign_config(workers: usize) -> FuzzConfig {
    FuzzConfig {
        iters: CAMPAIGN_ITERS,
        seed: CAMPAIGN_SEED,
        workers,
        corpus_dir: None,
        minimize_budget: 96,
    }
}

/// Runs the pinned campaign at 1 and 4 workers and asserts the two
/// reports are identical (counts, corpus, and findings).
///
/// # Panics
///
/// Panics if the campaigns disagree — that would mean a mutation or
/// corpus decision observed the worker count.
pub fn paired_campaign() -> FuzzReport {
    let sequential = run_campaign(&campaign_config(1)).expect("in-memory campaign");
    let parallel = run_campaign(&campaign_config(4)).expect("in-memory campaign");
    assert_eq!(sequential.executed, parallel.executed);
    assert_eq!(sequential.rejected, parallel.rejected);
    assert_eq!(sequential.new_buckets, parallel.new_buckets);
    assert_eq!(
        sequential.corpus, parallel.corpus,
        "coverage maps must not depend on the worker count"
    );
    assert_eq!(sequential.findings.len(), parallel.findings.len());
    for (a, b) in sequential.findings.iter().zip(&parallel.findings) {
        assert_eq!(a.class, b.class);
        assert_eq!(a.spec, b.spec, "minimized specs must be worker-invariant");
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.bundle, b.bundle, "bundles must be worker-invariant");
    }
    parallel
}

/// Extracts the rediscovered planted violation — the audit-class
/// finding in the `fuzz_majority` family — and asserts its repro
/// contract: the minimized spec still fails as an audit violation,
/// and its bundle replays byte-identically at 1 and 4 workers.
///
/// # Panics
///
/// Panics if the campaign missed the planted violation or a replay
/// diverges.
pub fn rediscovered_violation(report: &FuzzReport) -> &Finding {
    let finding = report
        .findings
        .iter()
        .find(|f| {
            f.class == FailureClass::AuditViolation && f.spec.name.starts_with("fuzz_majority")
        })
        .expect("campaign must rediscover the planted majority violation");
    assert_eq!(
        vi_fuzz::campaign::classify_run(&finding.spec, finding.seed),
        Some(FailureClass::AuditViolation),
        "the minimized repro spec must still fail the same way"
    );
    let bundle = finding
        .bundle
        .as_ref()
        .expect("audit findings package a replayable bundle");
    for workers in [1usize, 4] {
        let replay = bundle.replay(workers);
        assert_eq!(
            replay.audit.as_ref(),
            bundle.audit.as_ref(),
            "replay({workers}) must reproduce the audit verdict"
        );
        assert_eq!(
            replay.incident.as_ref(),
            Some(bundle),
            "replay({workers}) must reproduce the bundle byte-identically"
        );
    }
    finding
}

/// E22 — the fuzz-hunt table: campaign throughput, coverage per
/// family, and every minimized finding.
pub fn fuzz_hunt() -> Table {
    let report = paired_campaign();
    let planted = rediscovered_violation(&report);

    let mut t = Table::new(
        "E22 fuzz hunt: coverage-guided campaign, minimized findings, repro bundles",
        &[
            "row", "family", "class", "buckets", "iter", "runs", "detail",
        ],
    );
    t.row(&[
        "campaign".to_string(),
        "-".to_string(),
        "-".to_string(),
        report.corpus.len().to_string(),
        report.iters.to_string(),
        report.executed.to_string(),
        format!(
            "seed {CAMPAIGN_SEED}: {} executed + {} rejected, {} new buckets",
            report.executed, report.rejected, report.new_buckets
        ),
    ]);
    let mut per_family: BTreeMap<&str, u64> = BTreeMap::new();
    for entry in report.corpus.entries() {
        *per_family.entry(&entry.signature.family).or_default() += 1;
    }
    for (family, buckets) in &per_family {
        t.row(&[
            "coverage".to_string(),
            (*family).to_string(),
            "-".to_string(),
            buckets.to_string(),
            "-".to_string(),
            "-".to_string(),
            "coverage buckets owned by this workload family".to_string(),
        ]);
    }
    for f in &report.findings {
        t.row(&[
            "finding".to_string(),
            f.spec
                .name
                .split('~')
                .next()
                .unwrap_or(&f.spec.name)
                .to_string(),
            f.class.label().to_string(),
            "-".to_string(),
            f.iteration.to_string(),
            f.minimize_runs.to_string(),
            format!(
                "discovered as '{}', seed {}, minimized to '{}'{}",
                f.discovered_as,
                f.seed,
                f.spec.name,
                if f.bundle.is_some() {
                    ", bundle replays at 1 and 4 workers"
                } else {
                    ""
                },
            ),
        ]);
    }

    if let Ok(dir) = std::env::var("VI_INCIDENT_DIR") {
        let dir = std::path::Path::new(&dir);
        let spec_path = dir.join("fuzz_min_majority.spec.json");
        match serde_json::to_string(&planted.spec) {
            Ok(json) => match std::fs::write(&spec_path, json) {
                Ok(()) => eprintln!("wrote {}", spec_path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", spec_path.display()),
            },
            Err(e) => eprintln!("warning: could not serialize minimized spec: {e}"),
        }
        if let Some(bundle) = &planted.bundle {
            let bundle_path = dir.join("fuzz_min_majority.bundle.json");
            match bundle.save(&bundle_path) {
                Ok(()) => eprintln!("wrote {}", bundle_path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", bundle_path.display()),
            }
        }
    }

    t.note("1-worker vs 4-worker campaigns asserted identical: counts, coverage map, findings, bundles");
    t.note("planted-violation rediscovery asserted: audit-class finding in the fuzz_majority family, minimized spec re-verified, bundle replayed byte-identically at 1 and 4 workers");
    t.note("set VI_INCIDENT_DIR=. to write fuzz_min_majority.spec.json (+ .bundle.json); replay via `repro --replay`, re-shrink via `repro fuzz --minimize`");
    t.note("run your own campaign via `repro fuzz --iters N --seed S --corpus-dir DIR`");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance: the pinned campaign is worker-invariant and
    /// rediscovers the planted majority violation, whose minimized
    /// bundle replays byte-identically at 1 and 4 workers (all
    /// asserted inside the helpers).
    #[test]
    fn pinned_campaign_rediscovers_the_planted_violation() {
        let report = paired_campaign();
        let planted = rediscovered_violation(&report);
        assert!(planted.iteration > 0, "found by mutation, not an ancestor");
        assert!(
            planted.minimize_runs > 0,
            "the minimizer spent runs shrinking it"
        );
        assert!(planted.spec.name.ends_with("~min"));
    }

    /// The campaign's coverage map spans every seed-corpus family and
    /// grows well past the 4 ancestor buckets.
    #[test]
    fn coverage_spans_every_family_and_grows() {
        let report = run_campaign(&campaign_config(4)).expect("in-memory campaign");
        for family in ["fuzz_cha", "fuzz_counter", "fuzz_register", "fuzz_majority"] {
            assert!(
                report
                    .corpus
                    .entries()
                    .any(|e| e.signature.family == family),
                "{family} must own coverage"
            );
        }
        assert!(
            report.corpus.len() >= 16,
            "mutation earned new buckets: {}",
            report.corpus.len()
        );
        assert_eq!(report.executed + report.rejected, CAMPAIGN_ITERS + 4);
    }
}
