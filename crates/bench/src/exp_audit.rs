//! Experiment E17 (`consistency_audit`): every vi-app *audited* under
//! every nemesis fault schedule.
//!
//! For each of the four apps and each nemesis catalog scenario
//! (`blackout_market`: mid-run radio blackout + replica crash burst;
//! `quake_drill`: detector-corruption window + crash burst), the
//! experiment rebases the scenario onto the app — same layout, same
//! traffic discipline, same fault schedule, `audit: true` — and sweeps
//! all seeds through the deterministic parallel [`SweepRunner`], twice
//! (1 worker vs N) to assert the outcome tables, audit reports
//! included, are byte-identical. Rows report per-run op counts,
//! timeouts (`:info` ops), and the verdict of every consistency
//! checker; the experiment **panics if any checker reports a
//! violation**, printing the minimized witness — the audit is the
//! acceptance gate, not just a measurement. The artifact is
//! `BENCH_audit.json`.

use crate::table::Table;
use vi_scenario::catalog::scenario;
use vi_scenario::{AppKind, ScenarioOutcome, ScenarioSpec, SweepRunner, WorkloadSpec};

/// The audited nemesis scenarios (catalog names).
pub const NEMESIS_SCENARIOS: [&str; 2] = ["blackout_market", "quake_drill"];

/// Seeds every `(scenario, app)` pair is audited under.
pub const SEEDS: [u64; 3] = [1, 2, 3];

/// Rebases a nemesis catalog scenario onto `app`: same deployment,
/// layout, traffic discipline, and fault schedule; only the driven
/// app changes (audit stays on).
pub fn audit_variant(base: &ScenarioSpec, app: AppKind) -> ScenarioSpec {
    let mut spec = base.clone();
    spec.name = format!("{}/{}", base.name, app.name());
    let WorkloadSpec::Traffic { app: a, audit, .. } = &mut spec.workload else {
        panic!("{}: nemesis scenario must drive traffic", base.name)
    };
    *a = app;
    *audit = true;
    spec
}

/// The full E17 job list: nemesis scenarios × apps × seeds.
pub fn audit_jobs() -> Vec<(ScenarioSpec, u64)> {
    let mut jobs = Vec::new();
    for name in NEMESIS_SCENARIOS {
        let base = scenario(name).expect("nemesis catalog scenario");
        for app in AppKind::all() {
            for seed in SEEDS {
                jobs.push((audit_variant(&base, app), seed));
            }
        }
    }
    jobs
}

/// Runs `jobs` with 1 worker and with a multi-worker pool, asserting
/// the outcome tables — audit reports included — are byte-identical.
///
/// # Panics
///
/// Panics if the sweeps disagree: that would be a determinism bug in
/// the recorder, a checker, or the runner.
pub fn paired_audit_sweep(jobs: &[(ScenarioSpec, u64)], workers: usize) -> Vec<ScenarioOutcome> {
    let sequential = SweepRunner::new(1).run(jobs);
    let parallel = SweepRunner::new(workers.max(2)).run(jobs);
    assert_eq!(
        serde_json::to_string(&sequential).expect("serializable outcomes"),
        serde_json::to_string(&parallel).expect("serializable outcomes"),
        "audit verdicts must not depend on the worker count"
    );
    parallel
}

/// E17 — the consistency-audit table.
///
/// # Panics
///
/// Panics if any audited run violates a consistency checker (with the
/// minimized witness in the message) — passing audits are this
/// experiment's acceptance criterion.
pub fn consistency_audit() -> Table {
    let jobs = audit_jobs();
    let outcomes = paired_audit_sweep(&jobs, SweepRunner::auto().workers());

    let mut t = Table::new(
        "E17 / consistency audit: apps × nemesis schedules × seeds (history checkers)",
        &[
            "scenario", "app", "seed", "ops", "done", "t/o", "checks", "verdicts",
        ],
    );
    for o in &outcomes {
        let s = o.traffic.as_ref().expect("traffic outcome");
        let report = o.audit.as_ref().expect("audited outcome");
        if let Some(bad) = report.violations().first() {
            panic!(
                "{} seed {}: {} {} — {}",
                o.scenario,
                o.seed,
                bad.name,
                bad.verdict.label(),
                bad.witness.as_deref().unwrap_or("(no witness)")
            );
        }
        let base = o.scenario.split('/').next().unwrap_or(&o.scenario);
        t.row(&[
            base.to_string(),
            report.app.clone(),
            o.seed.to_string(),
            report.ops.to_string(),
            s.completed.to_string(),
            report.timeouts.to_string(),
            report.checks.len().to_string(),
            report.verdict_summary(),
        ]);
    }
    t.note(
        "every row passed linearizability/exclusion/freshness/delivery checks under its nemesis",
    );
    t.note("timeouts are Jepsen :info ops (maybe-applied, concurrent-forever for the checkers)");
    t.note("1-worker vs N-worker sweeps asserted byte-identical, audit reports included");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance slice: all four apps audit clean under both nemesis
    /// schedules (one seed here for test runtime; the release smoke
    /// runs the full seed matrix) and verdicts are worker-invariant.
    #[test]
    fn all_apps_audit_clean_under_both_nemeses() {
        let jobs: Vec<_> = audit_jobs()
            .into_iter()
            .filter(|(_, seed)| *seed == SEEDS[0])
            .collect();
        assert_eq!(jobs.len(), 8, "2 schedules × 4 apps");
        let outcomes = paired_audit_sweep(&jobs, 4);
        for o in &outcomes {
            let report = o.audit.as_ref().expect("audited outcome");
            assert!(
                report.ok(),
                "{} seed {}: {:?}",
                o.scenario,
                o.seed,
                report.violations()
            );
            assert!(report.ops > 0, "{}: drove traffic", o.scenario);
            assert!(
                report.checks.len() >= 2,
                "{}: well-formed + semantic checks",
                o.scenario
            );
            let t = o.traffic.as_ref().expect("traffic summary");
            assert_eq!(
                t.completed + t.timed_out + t.in_flight_at_end,
                t.issued,
                "{}: accounting closes",
                o.scenario
            );
        }
    }

    #[test]
    fn audit_variants_validate_and_round_trip() {
        for (spec, _) in audit_jobs() {
            spec.validate().expect("audit variant must validate");
            let json = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{} round-trips", spec.name);
        }
    }
}
