//! Plain-text tables, one per reproduced figure/claim.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A printable experiment table.
///
/// Serializes to JSON (`{"title", "headers", "rows", "notes"}`) for the
/// machine-readable bench artifacts the `repro` binary emits, and
/// deserializes back from those artifacts so `repro bench-diff` can
/// compare two runs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The cell at `(row, col)` (for assertions in tests).
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The footnotes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {c:>w$} |", w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (helper for table cells).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "rounds"]);
        t.row(&["2".into(), "3".into()]);
        t.row(&["256".into(), "3".into()]);
        t.note("constant");
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("|   n | rounds |"));
        assert!(s.contains("note: constant"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 0), "256");
    }

    #[test]
    #[should_panic(expected = "row width must match")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn f2_formats() {
        assert_eq!(f2(1.0 / 3.0), "0.33");
    }
}
