//! Bench-artifact diffing: compare two `BENCH_*.json` tables with a
//! noise tolerance, or structurally validate a single artifact.
//!
//! The `repro bench-diff` subcommand is built on this module and
//! replaces the ad-hoc `test -s` / `grep` guards CI used to apply to
//! bench artifacts:
//!
//! * [`diff_tables`] aligns rows of two runs of the same experiment by
//!   their identity cells, compares the performance columns
//!   (recognized by unit keywords in the header), and classifies a
//!   change as a regression only when it moves in the *bad* direction
//!   by more than the tolerance — wall-clock numbers jitter, so exact
//!   equality is the wrong gate.
//! * [`check_table`] validates one artifact: parseable as a [`Table`],
//!   at least one data row, and every required needle present
//!   somewhere in the table (title, headers, cells, or notes).

use crate::table::Table;

/// Which way a performance column is allowed to move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latencies, ms/round, overhead ratios).
    LowerBetter,
    /// Larger is better (speedups, throughput).
    HigherBetter,
}

/// Classifies a column header: `Some(direction)` for performance
/// columns (gated with tolerance), `None` for identity/informational
/// columns (used as the row key).
///
/// Recognition is keyword-based on the lowercased header: speedup and
/// throughput columns improve upward; time units, overhead, and ratio
/// columns improve downward. Deterministic counts (rounds, receptions,
/// seeds) carry no unit keyword and stay identity columns — a change
/// there is a behavior change, not noise, and shows up as a
/// removed/added row pair.
pub fn perf_direction(header: &str) -> Option<Direction> {
    let h = header.to_lowercase();
    if ["speedup", "throughput", "ops/s"]
        .iter()
        .any(|k| h.contains(k))
    {
        return Some(Direction::HigherBetter);
    }
    if [
        "ms", "µs", "usec", " us", "sec", "overhead", "ratio", "time",
    ]
    .iter()
    .any(|k| h.contains(k))
    {
        return Some(Direction::LowerBetter);
    }
    None
}

/// The outcome of a table diff: a human-readable report plus the
/// subset of lines that are tolerance-exceeding regressions.
#[derive(Debug, Default)]
pub struct DiffOutcome {
    /// Every comparison line (improvements, small drifts, row churn).
    pub report: Vec<String>,
    /// Lines where a perf column moved in the bad direction by more
    /// than the tolerance.
    pub regressions: Vec<String>,
}

impl DiffOutcome {
    /// Whether the diff is within tolerance.
    pub fn clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Loads a bench artifact.
pub fn load_table(path: &str) -> Result<Table, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if raw.trim().is_empty() {
        return Err(format!("{path}: empty artifact"));
    }
    serde_json::from_str(&raw).map_err(|e| format!("{path}: not a bench table: {e}"))
}

/// The identity key of a row: its cells in non-perf columns, joined.
/// Deterministic numeric columns (seeds, round counts) are part of the
/// key on purpose — see [`perf_direction`].
fn row_key(headers: &[String], row: &[String]) -> String {
    headers
        .iter()
        .zip(row)
        .filter(|(h, _)| perf_direction(h).is_none())
        .map(|(_, c)| c.as_str())
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Diffs `new` against `old` with a relative `tolerance` (0.30 =
/// a perf cell may move 30% in the bad direction before it counts as
/// a regression). Rows are aligned by identity key; perf cells that
/// fail to parse as numbers (e.g. `-` placeholders) are skipped.
pub fn diff_tables(old: &Table, new: &Table, tolerance: f64) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    if old.headers() != new.headers() {
        out.report.push(format!(
            "schema changed: {} columns -> {} columns (perf gating skipped)",
            old.headers().len(),
            new.headers().len()
        ));
        return out;
    }
    let headers = old.headers();
    let old_rows: Vec<(String, &Vec<String>)> = old
        .rows()
        .iter()
        .map(|r| (row_key(headers, r), r))
        .collect();
    let new_rows: Vec<(String, &Vec<String>)> = new
        .rows()
        .iter()
        .map(|r| (row_key(headers, r), r))
        .collect();

    for (key, _) in &old_rows {
        if !new_rows.iter().any(|(k, _)| k == key) {
            out.report.push(format!("row removed: [{key}]"));
        }
    }
    for (key, new_row) in &new_rows {
        let Some((_, old_row)) = old_rows.iter().find(|(k, _)| k == key) else {
            out.report.push(format!("row added:   [{key}]"));
            continue;
        };
        for (i, header) in headers.iter().enumerate() {
            let Some(direction) = perf_direction(header) else {
                continue;
            };
            let (Ok(a), Ok(b)) = (old_row[i].parse::<f64>(), new_row[i].parse::<f64>()) else {
                continue;
            };
            if a == b {
                continue;
            }
            // Relative movement in the *bad* direction.
            let base = a.abs().max(f64::MIN_POSITIVE);
            let worse = match direction {
                Direction::LowerBetter => (b - a) / base,
                Direction::HigherBetter => (a - b) / base,
            };
            let line = format!(
                "[{key}] {header}: {a} -> {b} ({:+.1}% {})",
                (b - a) / base * 100.0,
                if worse > 0.0 { "worse" } else { "better" }
            );
            if worse > tolerance {
                out.regressions.push(line.clone());
            }
            if worse.abs() > tolerance {
                out.report.push(line);
            }
        }
    }
    out
}

/// Validates one artifact: parses as a [`Table`], has at least one
/// data row, and contains every `needle` somewhere (title, headers,
/// cells, or notes). Returns a one-line summary on success.
pub fn check_table(path: &str, needles: &[String]) -> Result<String, String> {
    let table = load_table(path)?;
    if table.is_empty() {
        return Err(format!("{path}: table has no data rows"));
    }
    let haystack: Vec<&str> = std::iter::once(table.title())
        .chain(table.headers().iter().map(String::as_str))
        .chain(table.rows().iter().flatten().map(String::as_str))
        .chain(table.notes().iter().map(String::as_str))
        .collect();
    for needle in needles {
        if !haystack.iter().any(|cell| cell.contains(needle.as_str())) {
            return Err(format!("{path}: expected content '{needle}' not found"));
        }
    }
    Ok(format!(
        "{path}: ok ({} rows, {} checks)",
        table.len(),
        needles.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(title: &str, rows: &[(&str, &str, &str)]) -> Table {
        let mut t = Table::new(title, &["scenario", "rounds", "ms/round", "speedup"]);
        for (name, ms, speedup) in rows {
            t.row(&[
                name.to_string(),
                "120".to_string(),
                ms.to_string(),
                speedup.to_string(),
            ]);
        }
        t
    }

    #[test]
    fn classifies_columns_by_unit_keywords() {
        assert_eq!(perf_direction("ms/round"), Some(Direction::LowerBetter));
        assert_eq!(
            perf_direction("phase p95 µs (adv)"),
            Some(Direction::LowerBetter)
        );
        assert_eq!(
            perf_direction("overhead ratio"),
            Some(Direction::LowerBetter)
        );
        assert_eq!(perf_direction("speedup"), Some(Direction::HigherBetter));
        assert_eq!(perf_direction("scenario"), None);
        assert_eq!(perf_direction("rounds"), None);
        assert_eq!(perf_direction("seed"), None);
    }

    #[test]
    fn tolerated_jitter_is_not_a_regression() {
        let old = table("t", &[("clique", "1.00", "2.0")]);
        let new = table("t", &[("clique", "1.10", "1.9")]);
        let d = diff_tables(&old, &new, 0.30);
        assert!(d.clean(), "{:?}", d.regressions);
    }

    #[test]
    fn bad_direction_past_tolerance_is_a_regression() {
        let old = table("t", &[("clique", "1.00", "2.0")]);
        // ms/round up 2x: regression. speedup up: improvement.
        let new = table("t", &[("clique", "2.00", "4.0")]);
        let d = diff_tables(&old, &new, 0.30);
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].contains("ms/round"), "{:?}", d.regressions);
        // The speedup doubling is reported but not a regression.
        assert!(d.report.iter().any(|l| l.contains("speedup")));
    }

    #[test]
    fn good_direction_never_gates() {
        let old = table("t", &[("clique", "2.00", "1.0")]);
        let new = table("t", &[("clique", "0.50", "9.0")]);
        assert!(diff_tables(&old, &new, 0.30).clean());
    }

    #[test]
    fn row_churn_is_reported_not_gated() {
        let old = table("t", &[("clique", "1.0", "2.0")]);
        let new = table("t", &[("mesh", "1.0", "2.0")]);
        let d = diff_tables(&old, &new, 0.30);
        assert!(d.clean());
        assert!(d.report.iter().any(|l| l.contains("row removed")));
        assert!(d.report.iter().any(|l| l.contains("row added")));
    }

    #[test]
    fn identity_cells_include_deterministic_counts() {
        // A change in a deterministic count (rounds) re-keys the row
        // instead of being averaged away as noise.
        let old = table("t", &[("clique", "1.0", "2.0")]);
        let mut new = Table::new("t", &["scenario", "rounds", "ms/round", "speedup"]);
        new.row(&[
            "clique".to_string(),
            "121".to_string(),
            "1.0".to_string(),
            "2.0".to_string(),
        ]);
        let d = diff_tables(&old, &new, 0.30);
        assert!(d.report.iter().any(|l| l.contains("row removed")));
    }

    #[test]
    fn check_validates_artifacts_round_trip() {
        let dir = std::env::temp_dir().join("vi_bench_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_demo.json");
        let path_str = path.to_str().unwrap();
        let t = table("demo", &[("clique", "1.0", "2.0")]);
        std::fs::write(&path, serde_json::to_string(&t).unwrap()).unwrap();
        check_table(path_str, &["clique".to_string(), "ms/round".to_string()])
            .expect("valid artifact");
        let err = check_table(path_str, &["absent-needle".to_string()]).unwrap_err();
        assert!(err.contains("absent-needle"));
        std::fs::write(&path, "").unwrap();
        assert!(check_table(path_str, &[]).is_err(), "empty file rejected");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_tables_round_trip_through_serde() {
        let t = table("demo", &[("clique", "1.0", "2.0")]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back.title(), "demo");
        assert_eq!(back.headers(), t.headers());
        assert_eq!(back.rows(), t.rows());
    }
}
