//! Prints the reproduction tables for the paper's figures and
//! quantitative claims.
//!
//! ```sh
//! cargo run -p vi-bench --bin repro                        # everything
//! cargo run -p vi-bench --bin repro -- fig2                # one experiment
//! cargo run -p vi-bench --bin repro -- list                # experiment index
//! cargo run -p vi-bench --bin repro -- --replay dump.json  # replay an incident
//! ```
//!
//! `--replay` loads an incident bundle dumped by the flight recorder
//! (see `vi_scenario::IncidentBundle`), re-executes the bundled
//! `(scenario, seed, tuning)`, and exits 0 iff the replay reproduces
//! the recorded audit verdict and re-dumps the identical bundle.
//!
//! Every experiment that runs also writes a machine-readable copy of
//! its table to `BENCH_<id>.json` (a couple of ids keep their
//! historical artifact names, see [`artifact_name`]), so the repo's
//! quantitative trajectory can be tracked across PRs.

use vi_bench::all_experiments;
use vi_bench::Table;

/// The JSON artifact written for experiment `id`.
///
/// `radio_scale`, `scenario_matrix`, `traffic_profile`,
/// `consistency_audit`, and `protocol_trace` keep the artifact names
/// CI uploads (`BENCH_radio.json`, `BENCH_scenarios.json`,
/// `BENCH_traffic.json`, `BENCH_audit.json`, `BENCH_protocol.json`);
/// every other experiment uses `BENCH_<id>.json`.
fn artifact_name(id: &str) -> String {
    match id {
        "radio_scale" => "BENCH_radio.json".to_string(),
        "scenario_matrix" => "BENCH_scenarios.json".to_string(),
        "traffic_profile" => "BENCH_traffic.json".to_string(),
        "consistency_audit" => "BENCH_audit.json".to_string(),
        "protocol_trace" => "BENCH_protocol.json".to_string(),
        _ => format!("BENCH_{id}.json"),
    }
}

fn write_json(id: &str, table: &Table) {
    let path = artifact_name(id);
    match serde_json::to_string(table) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
        Err(e) => eprintln!("warning: could not serialize {id} table: {e}"),
    }
}

/// Replays an incident bundle and reports whether it reproduces.
///
/// Exit codes: 0 — the replay re-dumps the identical bundle (verdict
/// included); 1 — the replay diverged; 2 — the bundle could not be
/// loaded.
fn replay_incident(path: &str) -> ! {
    let bundle = match vi_scenario::IncidentBundle::load(std::path::Path::new(path)) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "replaying incident: scenario '{}' seed {} reason {:?} ({} flight rounds, tracing {})",
        bundle.scenario.name,
        bundle.seed,
        bundle.reason,
        bundle.flight.len(),
        if bundle.tracing { "on" } else { "off" },
    );
    let out = bundle.replay(0);
    let verdict_matches = out.audit == bundle.audit;
    let bundle_matches = out.incident.as_ref() == Some(&bundle);
    match (verdict_matches, bundle_matches) {
        (true, true) => {
            println!("replay: incident reproduced byte-identically (audit verdict included)");
            std::process::exit(0);
        }
        (true, false) => {
            eprintln!("replay: audit verdict reproduced, but the re-dumped bundle differs");
            std::process::exit(1);
        }
        _ => {
            eprintln!(
                "replay: DIVERGED — recorded {:?}, replay {:?}",
                bundle.audit.as_ref().map(|r| r.ok()),
                out.audit.as_ref().map(|r| r.ok()),
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    if args.first().map(String::as_str) == Some("--replay") {
        match args.get(1) {
            Some(path) => replay_incident(path),
            None => {
                eprintln!("usage: repro --replay <bundle.json>");
                std::process::exit(2);
            }
        }
    }

    if args.first().map(String::as_str) == Some("list") {
        println!("available experiments:");
        for (id, desc, _) in &experiments {
            println!("  {id:<16} {desc}");
        }
        return;
    }

    let selected: Vec<&str> = if args.is_empty() {
        experiments.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for want in selected {
        match experiments.iter().find(|(id, _, _)| *id == want) {
            Some((id, _, run)) => {
                eprintln!("running {id} ...");
                let table = run();
                println!("{table}");
                write_json(id, &table);
            }
            None => {
                eprintln!("unknown experiment '{want}' — try `repro list`");
                std::process::exit(2);
            }
        }
    }
}
