//! Prints the reproduction tables for the paper's figures and
//! quantitative claims.
//!
//! ```sh
//! cargo run -p vi-bench --bin repro                        # everything
//! cargo run -p vi-bench --bin repro -- fig2                # one experiment
//! cargo run -p vi-bench --bin repro -- list                # experiment index
//! cargo run -p vi-bench --bin repro -- --replay dump.json  # replay an incident
//! cargo run -p vi-bench --bin repro -- --monitor safety    # stream snapshots
//! cargo run -p vi-bench --bin repro -- monitor 127.0.0.1:9464   # tail /metrics
//! cargo run -p vi-bench --bin repro -- fuzz --iters 400 --seed 7 --corpus-dir corpus/
//! cargo run -p vi-bench --bin repro -- fuzz --minimize failing_spec.json
//! cargo run -p vi-bench --bin repro -- bench-diff old.json new.json
//! cargo run -p vi-bench --bin repro -- bench-diff --check BENCH_radio.json 1000000
//! ```
//!
//! `--replay` loads an incident bundle dumped by the flight recorder
//! (see `vi_scenario::IncidentBundle`), re-executes the bundled
//! `(scenario, seed, tuning)`, and exits 0 iff the replay reproduces
//! the recorded audit verdict and re-dumps the identical bundle.
//!
//! `--monitor` turns live monitoring on for the selected experiments
//! (equivalent to the `VI_MONITOR_*` environment, with a JSONL sink at
//! `monitor.jsonl` as the default when no sink is configured).
//! `monitor <addr>` is the matching client: it polls an exporter's
//! `/metrics` and prints a one-line-per-run progress view.
//!
//! `bench-diff` compares two bench artifacts with a noise tolerance
//! (`--tolerance 0.30` by default; `--report` prints without gating),
//! and `bench-diff --check <file> [needle...]` structurally validates
//! a single artifact — the gate CI applies to every `BENCH_*.json`.
//!
//! Every experiment that runs also writes a machine-readable copy of
//! its table to `BENCH_<id>.json` (a couple of ids keep their
//! historical artifact names, see [`artifact_name`]), so the repo's
//! quantitative trajectory can be tracked across PRs.

use vi_bench::all_experiments;
use vi_bench::{diff, Table};
use vi_telemetry::monitor;

/// The JSON artifact written for experiment `id`.
///
/// `radio_scale`, `scenario_matrix`, `traffic_profile`,
/// `consistency_audit`, and `protocol_trace` keep the artifact names
/// CI uploads (`BENCH_radio.json`, `BENCH_scenarios.json`,
/// `BENCH_traffic.json`, `BENCH_audit.json`, `BENCH_protocol.json`);
/// every other experiment uses `BENCH_<id>.json`.
fn artifact_name(id: &str) -> String {
    match id {
        "radio_scale" => "BENCH_radio.json".to_string(),
        "scenario_matrix" => "BENCH_scenarios.json".to_string(),
        "traffic_profile" => "BENCH_traffic.json".to_string(),
        "consistency_audit" => "BENCH_audit.json".to_string(),
        "protocol_trace" => "BENCH_protocol.json".to_string(),
        "live_monitor" => "BENCH_monitor.json".to_string(),
        "fuzz_hunt" => "BENCH_fuzz.json".to_string(),
        _ => format!("BENCH_{id}.json"),
    }
}

fn write_json(id: &str, table: &Table) {
    let path = artifact_name(id);
    match serde_json::to_string(table) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
        Err(e) => eprintln!("warning: could not serialize {id} table: {e}"),
    }
}

/// Replays an incident bundle and reports whether it reproduces.
///
/// Exit codes: 0 — the replay re-dumps the identical bundle (verdict
/// included); 1 — the replay diverged; 2 — the bundle could not be
/// loaded.
fn replay_incident(path: &str) -> ! {
    let bundle = match vi_scenario::IncidentBundle::load(std::path::Path::new(path)) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "replaying incident: scenario '{}' seed {} reason {:?} ({} flight rounds, tracing {})",
        bundle.scenario.name,
        bundle.seed,
        bundle.reason,
        bundle.flight.len(),
        if bundle.tracing { "on" } else { "off" },
    );
    let out = bundle.replay(0);
    let verdict_matches = out.audit == bundle.audit;
    let bundle_matches = out.incident.as_ref() == Some(&bundle);
    match (verdict_matches, bundle_matches) {
        (true, true) => {
            println!("replay: incident reproduced byte-identically (audit verdict included)");
            std::process::exit(0);
        }
        (true, false) => {
            eprintln!("replay: audit verdict reproduced, but the re-dumped bundle differs");
            std::process::exit(1);
        }
        _ => {
            eprintln!(
                "replay: DIVERGED — recorded {:?}, replay {:?}",
                bundle.audit.as_ref().map(|r| r.ok()),
                out.audit.as_ref().map(|r| r.ok()),
            );
            std::process::exit(1);
        }
    }
}

/// `repro bench-diff`: compare two artifacts with a noise tolerance,
/// or (`--check`) structurally validate one.
///
/// Exit codes: 0 — within tolerance / valid; 1 — regression past
/// tolerance (unless `--report`) or invalid artifact; 2 — usage error.
fn bench_diff(args: &[String]) -> ! {
    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: repro bench-diff --check <file.json> [needle...]");
            std::process::exit(2);
        };
        match diff::check_table(path, &args[2..]) {
            Ok(summary) => {
                println!("{summary}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("bench-diff: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut tolerance = 0.30f64;
    let mut report_only = false;
    let mut files: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("bench-diff: --tolerance needs a number");
                    std::process::exit(2);
                }
            },
            "--report" => report_only = true,
            _ => files.push(a),
        }
    }
    let [old_path, new_path] = files[..] else {
        eprintln!("usage: repro bench-diff <old.json> <new.json> [--tolerance 0.30] [--report]");
        std::process::exit(2);
    };
    let (old, new) = match (diff::load_table(old_path), diff::load_table(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-diff: {e}");
            std::process::exit(1);
        }
    };
    let outcome = diff::diff_tables(&old, &new, tolerance);
    if outcome.report.is_empty() {
        println!(
            "bench-diff: no changes past {:.0}% tolerance",
            tolerance * 100.0
        );
    }
    for line in &outcome.report {
        println!("{line}");
    }
    if outcome.clean() {
        std::process::exit(0);
    }
    eprintln!(
        "bench-diff: {} regression(s) past {:.0}% tolerance",
        outcome.regressions.len(),
        tolerance * 100.0
    );
    std::process::exit(if report_only { 0 } else { 1 });
}

/// `repro fuzz`: run a coverage-guided fuzz campaign, or (with
/// `--minimize <spec.json>`) shrink one failing spec.
///
/// Exit codes: 0 — campaign ran (findings are *results*, not
/// failures) or minimization reproduced and shrank; 1 — the spec
/// passed to `--minimize` does not fail; 2 — usage or I/O error.
fn fuzz_cmd(args: &[String]) -> ! {
    let mut config = vi_fuzz::FuzzConfig::default();
    let mut minimize_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut want = |flag: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("fuzz: {flag} needs a value");
                    std::process::exit(2);
                }
            }
        };
        match a.as_str() {
            "--iters" => match want("--iters").parse() {
                Ok(n) => config.iters = n,
                Err(e) => {
                    eprintln!("fuzz: --iters: {e}");
                    std::process::exit(2);
                }
            },
            "--seed" => match want("--seed").parse() {
                Ok(n) => config.seed = n,
                Err(e) => {
                    eprintln!("fuzz: --seed: {e}");
                    std::process::exit(2);
                }
            },
            "--workers" => match want("--workers").parse() {
                Ok(n) => config.workers = n,
                Err(e) => {
                    eprintln!("fuzz: --workers: {e}");
                    std::process::exit(2);
                }
            },
            "--corpus-dir" => config.corpus_dir = Some(want("--corpus-dir").into()),
            "--minimize" => minimize_path = Some(want("--minimize")),
            other => {
                eprintln!(
                    "usage: repro fuzz [--iters N] [--seed S] [--workers W] \
                     [--corpus-dir DIR] [--minimize spec.json]   (got '{other}')"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = minimize_path {
        // Minimize-only mode: the failure must already reproduce.
        let json = match std::fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("fuzz: {path}: {e}");
                std::process::exit(2);
            }
        };
        let spec: vi_scenario::ScenarioSpec = match serde_json::from_str(&json) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("fuzz: {path}: {e}");
                std::process::exit(2);
            }
        };
        let Some(class) = vi_fuzz::campaign::classify_run(&spec, config.seed) else {
            eprintln!(
                "fuzz: '{}' does not fail under seed {} — nothing to minimize",
                spec.name, config.seed
            );
            std::process::exit(1);
        };
        let min = vi_fuzz::minimize(&spec, config.seed, class, config.minimize_budget);
        let out_path = format!("{path}.min.json");
        match serde_json::to_string(&min.spec) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&out_path, json) {
                    eprintln!("fuzz: {out_path}: {e}");
                    std::process::exit(2);
                }
            }
            Err(e) => {
                eprintln!("fuzz: serialize: {e}");
                std::process::exit(2);
            }
        }
        println!(
            "minimized '{}' ({}) in {} runs / {} accepted shrinks -> {out_path}",
            spec.name,
            class.label(),
            min.runs,
            min.accepted,
        );
        std::process::exit(0);
    }

    match vi_fuzz::run_campaign(&config) {
        Ok(report) => {
            println!(
                "fuzz: {} iters -> {} executed, {} rejected, {} buckets ({} new), {} finding(s)",
                report.iters,
                report.executed,
                report.rejected,
                report.corpus.len(),
                report.new_buckets,
                report.findings.len(),
            );
            for f in &report.findings {
                println!(
                    "  [{}] {} (discovered as '{}' at iter {}, seed {}, minimized in {} runs)",
                    f.class.label(),
                    f.spec.name,
                    f.discovered_as,
                    f.iteration,
                    f.seed,
                    f.minimize_runs,
                );
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        }
    }
}

/// `repro monitor <addr>`: polls an exporter's `/metrics` once a
/// second and prints a one-line-per-run progress view. Exits 0 when a
/// previously reachable exporter goes away (the run ended), 1 when the
/// exporter never answered.
fn monitor_tail(addr: &str) -> ! {
    let mut reached = false;
    let mut failures = 0u32;
    loop {
        match monitor::scrape_metrics(addr) {
            Ok(body) => {
                reached = true;
                failures = 0;
                let pick = |metric: &str| -> Vec<(String, String)> {
                    body.lines()
                        .filter_map(|l| l.strip_prefix(&format!("{metric}{{")))
                        .filter_map(|l| l.split_once("} "))
                        .map(|(labels, value)| (labels.to_string(), value.to_string()))
                        .collect()
                };
                let gauge = |metric: &str| -> String {
                    body.lines()
                        .filter_map(|l| l.strip_prefix(&format!("{metric} ")))
                        .next_back()
                        .unwrap_or("0")
                        .to_string()
                };
                println!(
                    "jobs queued {} / started {} / finished {}",
                    gauge("vi_sweep_jobs_queued"),
                    gauge("vi_sweep_jobs_started"),
                    gauge("vi_sweep_jobs_finished"),
                );
                let completed = pick("vi_traffic_completed");
                for (labels, round) in pick("vi_round") {
                    let traffic = completed
                        .iter()
                        .find(|(l, _)| *l == labels)
                        .map(|(_, v)| format!("  completed {v}"))
                        .unwrap_or_default();
                    println!("  {labels} round {round}{traffic}");
                }
            }
            Err(e) => {
                failures += 1;
                if reached && failures >= 3 {
                    println!("monitor: exporter at {addr} gone — run finished");
                    std::process::exit(0);
                }
                if !reached && failures >= 10 {
                    eprintln!("monitor: no exporter at {addr}: {e}");
                    std::process::exit(1);
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    // `--monitor` composes with experiment selection: strip the flag,
    // force monitoring on, and default to a JSONL sink when the
    // environment configured none.
    if let Some(pos) = args.iter().position(|a| a == "--monitor") {
        args.remove(pos);
        monitor::force_enable();
        let _ = monitor::effective_every(0); // installs VI_MONITOR_* sinks
        if monitor::have_sinks() {
            eprintln!("monitoring on (environment-configured sinks)");
        } else {
            match monitor::JsonlSink::create("monitor.jsonl") {
                Ok(sink) => {
                    monitor::install_sink(std::sync::Arc::new(sink));
                    eprintln!("monitoring on: streaming snapshots to monitor.jsonl");
                }
                Err(e) => eprintln!("warning: cannot open monitor.jsonl: {e}"),
            }
        }
    }

    if args.first().map(String::as_str) == Some("monitor") {
        match args.get(1) {
            Some(addr) => monitor_tail(addr),
            None => {
                eprintln!("usage: repro monitor <host:port>");
                std::process::exit(2);
            }
        }
    }

    if args.first().map(String::as_str) == Some("bench-diff") {
        bench_diff(&args[1..]);
    }

    if args.first().map(String::as_str) == Some("fuzz") {
        fuzz_cmd(&args[1..]);
    }

    if args.first().map(String::as_str) == Some("--replay") {
        match args.get(1) {
            Some(path) => replay_incident(path),
            None => {
                eprintln!("usage: repro --replay <bundle.json>");
                std::process::exit(2);
            }
        }
    }

    if args.first().map(String::as_str) == Some("list") {
        println!("available experiments:");
        for (id, desc, _) in &experiments {
            println!("  {id:<16} {desc}");
        }
        return;
    }

    let selected: Vec<&str> = if args.is_empty() {
        experiments.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for want in selected {
        match experiments.iter().find(|(id, _, _)| *id == want) {
            Some((id, _, run)) => {
                eprintln!("running {id} ...");
                let table = run();
                println!("{table}");
                write_json(id, &table);
            }
            None => {
                eprintln!("unknown experiment '{want}' — try `repro list`");
                std::process::exit(2);
            }
        }
    }

    // `VI_MONITOR_HOLD_MS=N` keeps the process — and with it any
    // `VI_MONITOR_ADDR` exporter thread — alive N ms after the last
    // experiment, so scripted scrapers (the CI monitor smoke) get a
    // deterministic window instead of racing a fast run.
    if let Some(ms) = std::env::var("VI_MONITOR_HOLD_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        eprintln!("holding {ms} ms for /metrics scrapes");
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}
