//! Prints the reproduction tables for the paper's figures and
//! quantitative claims.
//!
//! ```sh
//! cargo run -p vi-bench --bin repro            # everything
//! cargo run -p vi-bench --bin repro -- fig2    # one experiment
//! cargo run -p vi-bench --bin repro -- list    # experiment index
//! ```

use vi_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    if args.first().map(String::as_str) == Some("list") {
        println!("available experiments:");
        for (id, desc, _) in &experiments {
            println!("  {id:<14} {desc}");
        }
        return;
    }

    let selected: Vec<&str> = if args.is_empty() {
        experiments.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for want in selected {
        match experiments.iter().find(|(id, _, _)| *id == want) {
            Some((id, _, run)) => {
                eprintln!("running {id} ...");
                println!("{}", run());
            }
            None => {
                eprintln!("unknown experiment '{want}' — try `repro list`");
                std::process::exit(2);
            }
        }
    }
}
