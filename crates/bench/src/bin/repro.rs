//! Prints the reproduction tables for the paper's figures and
//! quantitative claims.
//!
//! ```sh
//! cargo run -p vi-bench --bin repro            # everything
//! cargo run -p vi-bench --bin repro -- fig2    # one experiment
//! cargo run -p vi-bench --bin repro -- list    # experiment index
//! ```
//!
//! Whenever the `radio_scale` experiment runs, its table is also
//! written to `BENCH_radio.json` (machine-readable), so the perf
//! trajectory of the channel substrate can be tracked across PRs.

use vi_bench::all_experiments;
use vi_bench::Table;

/// Where the machine-readable radio benchmark lands.
const RADIO_JSON: &str = "BENCH_radio.json";

fn write_radio_json(table: &Table) {
    match serde_json::to_string(table) {
        Ok(json) => {
            if let Err(e) = std::fs::write(RADIO_JSON, json) {
                eprintln!("warning: could not write {RADIO_JSON}: {e}");
            } else {
                eprintln!("wrote {RADIO_JSON}");
            }
        }
        Err(e) => eprintln!("warning: could not serialize radio table: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    if args.first().map(String::as_str) == Some("list") {
        println!("available experiments:");
        for (id, desc, _) in &experiments {
            println!("  {id:<14} {desc}");
        }
        return;
    }

    let selected: Vec<&str> = if args.is_empty() {
        experiments.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for want in selected {
        match experiments.iter().find(|(id, _, _)| *id == want) {
            Some((id, _, run)) => {
                eprintln!("running {id} ...");
                let table = run();
                println!("{table}");
                if *id == "radio_scale" {
                    write_radio_json(&table);
                }
            }
            None => {
                eprintln!("unknown experiment '{want}' — try `repro list`");
                std::process::exit(2);
            }
        }
    }
}
