//! Prints the reproduction tables for the paper's figures and
//! quantitative claims.
//!
//! ```sh
//! cargo run -p vi-bench --bin repro            # everything
//! cargo run -p vi-bench --bin repro -- fig2    # one experiment
//! cargo run -p vi-bench --bin repro -- list    # experiment index
//! ```
//!
//! Every experiment that runs also writes a machine-readable copy of
//! its table to `BENCH_<id>.json` (a couple of ids keep their
//! historical artifact names, see [`artifact_name`]), so the repo's
//! quantitative trajectory can be tracked across PRs.

use vi_bench::all_experiments;
use vi_bench::Table;

/// The JSON artifact written for experiment `id`.
///
/// `radio_scale`, `scenario_matrix`, `traffic_profile`, and
/// `consistency_audit` keep the artifact names CI uploads
/// (`BENCH_radio.json`, `BENCH_scenarios.json`, `BENCH_traffic.json`,
/// `BENCH_audit.json`); every other experiment uses
/// `BENCH_<id>.json`.
fn artifact_name(id: &str) -> String {
    match id {
        "radio_scale" => "BENCH_radio.json".to_string(),
        "scenario_matrix" => "BENCH_scenarios.json".to_string(),
        "traffic_profile" => "BENCH_traffic.json".to_string(),
        "consistency_audit" => "BENCH_audit.json".to_string(),
        _ => format!("BENCH_{id}.json"),
    }
}

fn write_json(id: &str, table: &Table) {
    let path = artifact_name(id);
    match serde_json::to_string(table) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
        Err(e) => eprintln!("warning: could not serialize {id} table: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    if args.first().map(String::as_str) == Some("list") {
        println!("available experiments:");
        for (id, desc, _) in &experiments {
            println!("  {id:<16} {desc}");
        }
        return;
    }

    let selected: Vec<&str> = if args.is_empty() {
        experiments.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for want in selected {
        match experiments.iter().find(|(id, _, _)| *id == want) {
            Some((id, _, run)) => {
                eprintln!("running {id} ...");
                let table = run();
                println!("{table}");
                write_json(id, &table);
            }
            None => {
                eprintln!("unknown experiment '{want}' — try `repro list`");
                std::process::exit(2);
            }
        }
    }
}
