//! E12 — recovery-behaviour ablation: CHAP vs classic three-phase
//! commit under message loss and coordinator crashes.
//!
//! The paper (Section 1.5): CHAP "uses a novel strategy, inspired by
//! three-phase commit, to ensure consistent outputs despite
//! collisions, lost messages, and crash failures", while "the 3PC
//! protocols take a somewhat different approach to recovering from
//! network misbehavior". This experiment quantifies the difference:
//! under partial pre-commit delivery plus a coordinator crash, slotted
//! 3PC's termination rule produces *inconsistent* commit/abort
//! outcomes, whereas CHAP resolves the same uncertainty to a
//! consistent ⊥ (its agreement checker finds zero violations at any
//! loss rate — at the price of some undecided instances).

use crate::harness::{run_clique, AdversaryKind, CliqueConfig};
use crate::table::{f2, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vi_baselines::{ThreePhaseCommit, TpcDecision, TpcMessage};
use vi_radio::adversary::ScriptedAdversary;
use vi_radio::geometry::{Point, Rect};
use vi_radio::mobility::Static;
use vi_radio::{Engine, EngineConfig, NodeSpec, RadioConfig};
use vi_scenario::{CmSpec, PlacementSpec, PopulationSpec, ScenarioSpec, SweepRunner, WorkloadSpec};

/// Runs one slotted-3PC instance with each pre-commit delivery dropped
/// independently with probability `drop_p`, and the coordinator
/// crashing right after the pre-commit round. Returns the surviving
/// participants' decisions.
fn tpc_instance(n: usize, drop_p: f64, rng: &mut StdRng, seed: u64) -> Vec<TpcDecision> {
    let w = ThreePhaseCommit::<u64>::window(n);
    let m = n as u64 - 1;
    let precommit_round = m + 1;
    let mut engine: Engine<TpcMessage<u64>> = Engine::new(EngineConfig {
        radio: RadioConfig::stabilizing(10.0, 20.0, u64::MAX),
        seed,
        record_trace: false,
    });
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let mut spec = NodeSpec::new(
                Box::new(Static::new(Point::new(i as f64 * 0.2, 0.0))),
                Box::new(ThreePhaseCommit::<u64>::new(i, n, Box::new(|k| k)))
                    as Box<dyn vi_radio::Process<TpcMessage<u64>>>,
            );
            if i == 0 {
                spec = spec.crash_at(precommit_round + 1);
            }
            engine.add_node(spec)
        })
        .collect();
    let mut adv = ScriptedAdversary::new();
    for &id in ids.iter().skip(1) {
        if rng.random_bool(drop_p) {
            adv.drop(precommit_round, ids[0], id);
        }
    }
    engine.set_adversary(Box::new(adv));
    engine.run(w);
    ids.iter()
        .skip(1)
        .map(|&id| {
            engine
                .process::<ThreePhaseCommit<u64>>(id)
                .expect("node")
                .decisions()[0]
        })
        .collect()
}

/// E12 — the ablation table.
pub fn ablation_3pc() -> Table {
    let mut t = Table::new(
        "E12 / ablation: 3PC vs CHAP under lossy pre-commit + coordinator crash",
        &[
            "drop rate",
            "3PC inconsistent",
            "CHAP agreement violations",
            "CHAP ⊥ fraction",
        ],
    );
    let n = 4;
    let trials = 40;
    for drop_p in [0.2, 0.5, 0.8] {
        let mut rng = StdRng::seed_from_u64(77);
        let mut inconsistent = 0usize;
        for trial in 0..trials {
            let decisions = tpc_instance(n, drop_p, &mut rng, trial as u64);
            let all_same = decisions.windows(2).all(|w| w[0] == w[1]);
            if !all_same {
                inconsistent += 1;
            }
        }

        // CHAP on an equally hostile channel: random loss at the same
        // rate, CM misbehaving, a crash mid-run.
        let mut cfg = CliqueConfig::reliable(n, 40, 77);
        cfg.radio = RadioConfig::stabilizing(10.0, 20.0, u64::MAX);
        cfg.adversary = AdversaryKind::Random(drop_p, drop_p / 2.0);
        cfg.crashes = vec![(0, 60)];
        let run = run_clique(cfg);
        let checker = run.checker();
        let violations = checker.check_agreement().len() + checker.check_validity().len();
        let bottom = 1.0 - run.decided_fraction();

        t.row(&[
            f2(drop_p),
            format!("{inconsistent}/{trials}"),
            violations.to_string(),
            f2(bottom),
        ]);
    }
    t.note("3PC's termination rule splits commit/abort under partition; CHAP trades undecided (⊥) instances for zero disagreement");
    t
}

/// E13 — necessity of detector completeness: the paper's Section 1.1
/// asserts that without collision detection, consensus is impossible
/// (refs [7, 8]); Property 1 (no false negatives) is what CHAP's veto
/// phases lean on. Breaking completeness with probability `miss_p`
/// makes agreement violations appear — empirical evidence that the
/// guarantee is load-bearing, not decorative.
///
/// Rewired through `vi-scenario`: each `(miss rate, seed)` run is a
/// declarative [`ScenarioSpec`] (the broken detector is just an
/// [`AdversaryKind`] value) and the 80-run sweep fans across cores via
/// [`SweepRunner`], with per-run executions identical to the former
/// sequential [`run_clique`] loop.
pub fn detector_necessity() -> Table {
    let mut t = Table::new(
        "E13 / necessity: breaking detector completeness breaks agreement",
        &["detector miss rate", "runs", "runs with safety violations"],
    );
    let miss_rates = [0.0, 0.3, 0.7, 1.0];
    let runs = 20u64;
    let spec = |miss_p: f64| ScenarioSpec {
        name: format!("necessity miss {miss_p}"),
        arena: Rect::square(10.0),
        radio: RadioConfig::stabilizing(10.0, 20.0, u64::MAX),
        populations: vec![PopulationSpec::fixed(
            4,
            PlacementSpec::Line {
                start: Point::ORIGIN,
                step_x: 0.1,
                step_y: 0.0,
            },
        )],
        adversary: AdversaryKind::BrokenDetector {
            drop_p: 0.35,
            miss_p,
        },
        nemesis: vi_scenario::NemesisSpec::none(),
        cm: CmSpec::Oracle {
            stabilize_at: u64::MAX,
            pre: vi_contention::PreStability::Random(0.5),
        },
        workload: WorkloadSpec::ChaClique { instances: 40 },
    };
    let jobs: Vec<(ScenarioSpec, u64)> = miss_rates
        .iter()
        .flat_map(|&miss_p| (0..runs).map(move |seed| (spec(miss_p), 1000 + seed)))
        .collect();
    let outcomes = SweepRunner::auto().run(&jobs);
    for (g, &miss_p) in miss_rates.iter().enumerate() {
        let group = &outcomes[g * runs as usize..(g + 1) * runs as usize];
        let bad_runs = group.iter().filter(|o| o.safety_violations() > 0).count();
        t.row(&[f2(miss_p), runs.to_string(), bad_runs.to_string()]);
    }
    t.note("miss rate 0 (the paper's model) must show zero violations; any incompleteness admits disagreement");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_completeness_is_load_bearing() {
        let t = detector_necessity();
        assert_eq!(t.cell(0, 2), "0", "intact model: no violations");
        let broken: usize = t.cell(t.len() - 1, 2).parse().unwrap();
        assert!(broken > 0, "fully blind detector must break safety");
    }

    #[test]
    fn tpc_splits_and_chap_never_disagrees() {
        let t = ablation_3pc();
        // At 50% pre-commit loss, inconsistency must actually occur.
        let mid: &str = t.cell(1, 1);
        let inconsistent: usize = mid.split('/').next().unwrap().parse().unwrap();
        assert!(inconsistent > 0, "3PC should split under partition: {mid}");
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 2), "0", "CHAP never violates agreement");
        }
    }
}
