//! Experiment E20 (`protocol_trace`): protocol-level causal tracing,
//! per-app decision timelines, and the crash/violation flight
//! recorder.
//!
//! Three claims are exercised, the first two asserted inline before
//! anything is reported:
//!
//! 1. **Tracing is zero-perturbation and worker-invariant.** Every job
//!    runs traced (causal recorder + 16-round flight window) under 1
//!    sweep worker and under 4; the two outcome tables — causal DAGs,
//!    decision timelines, and channel stats included — must serialize
//!    byte-identically. Each traced
//!    outcome, stripped of its observability fields, must equal the
//!    plain untraced run.
//! 2. **Violations dump replayable incident bundles.** The
//!    `broken_majority` catalog scenario deterministically fails the
//!    WGL linearizability audit; its run must attach an
//!    [`IncidentBundle`] whose [`IncidentBundle::replay`] reproduces
//!    the identical audit verdict *and* the identical bundle at both
//!    worker counts. With `VI_INCIDENT_DIR` set, the bundle is also
//!    written to disk (CI uploads it and replays it via
//!    `repro --replay`).
//! 3. **Decision timelines quantify invoke→decide latency.** The
//!    table reports p50/p95/p99/max (in rounds) per app — the four
//!    traffic apps from their invoke→complete spans, CHA from its
//!    propose→decide chains.
//!
//! The artifact is `BENCH_protocol.json`. Under `VI_TRACE`, the clique
//! run's causal DAG is additionally exported as Perfetto flow events
//! riding the E19 trace collector.

use crate::exp_traffic::traffic_jobs;
use crate::table::Table;
use vi_scenario::{
    catalog, EngineTuning, IncidentBundle, ScenarioOutcome, ScenarioSpec, SweepRunner,
};
use vi_telemetry::{causal, trace_export};

/// The seed every E20 job runs with.
const SEED: u64 = 1;

/// Flight-recorder window for every traced run.
const FLIGHT_ROUNDS: usize = 16;

/// The traced job list: the CHA clique (propose→decide timeline) plus
/// one open-loop traffic variant per app over `robot_patrol`
/// (invoke→complete timelines for register, mutex, tracking, and
/// georouting).
pub fn protocol_specs() -> Vec<ScenarioSpec> {
    let mut specs = vec![catalog::scenario("clique").expect("catalog scenario")];
    specs.extend(
        traffic_jobs()
            .into_iter()
            .filter(|(s, _)| s.name.starts_with("robot_patrol/") && s.name.ends_with("/open"))
            .map(|(s, _)| s),
    );
    specs
}

/// The tracing tuning every E20 run uses. Telemetry stays off:
/// phase timers are wall-clock and would break the byte-for-byte
/// outcome comparison (E19 owns the counter-invariance claim).
pub fn traced_tuning() -> EngineTuning {
    EngineTuning::DEFAULT
        .with_tracing()
        .with_flight(FLIGHT_ROUNDS)
}

/// Runs `specs` traced under 1 and 4 sweep workers and asserts the
/// outcome tables serialize byte-identically.
///
/// # Panics
///
/// Panics if the sweeps disagree — that would mean a causal span, a
/// flight event, or a counter was recorded on a parallel code path.
pub fn paired_traced_sweep(specs: &[ScenarioSpec]) -> Vec<ScenarioOutcome> {
    let tuning = traced_tuning();
    let sequential = SweepRunner::new(1).run_matrix_with(specs, &[SEED], tuning);
    let parallel = SweepRunner::new(4).run_matrix_with(specs, &[SEED], tuning);
    assert_eq!(
        serde_json::to_string(&sequential).expect("serializable outcomes"),
        serde_json::to_string(&parallel).expect("serializable outcomes"),
        "traced outcomes must not depend on the worker count"
    );
    parallel
}

/// Asserts a traced outcome equals the plain run of the same job once
/// its observability fields are stripped: tracing must not perturb
/// the simulation.
///
/// # Panics
///
/// Panics on any divergence.
pub fn assert_zero_perturbation(spec: &ScenarioSpec, traced: &ScenarioOutcome) {
    let plain = spec.run(SEED);
    let mut stripped = traced.clone();
    stripped.telemetry = None;
    stripped.causal = None;
    stripped.incident = None;
    assert_eq!(stripped, plain, "{}: tracing perturbed the run", spec.name);
}

/// The forced-violation fixture: runs `broken_majority` traced,
/// extracts the incident bundle, verifies it replays to the identical
/// audit verdict and bundle at 1 and 4 workers, and returns it.
///
/// # Panics
///
/// Panics if no bundle is dumped or a replay diverges.
pub fn forced_violation_bundle() -> IncidentBundle {
    let spec = catalog::scenario("broken_majority").expect("catalog scenario");
    let out = spec.run_with(SEED, traced_tuning());
    let report = out.audit.as_ref().expect("always audited");
    assert!(!report.ok(), "broken_majority must violate linearizability");
    let bundle = out
        .incident
        .expect("violation must dump an incident bundle");
    for workers in [1usize, 4] {
        let replay = bundle.replay(workers);
        assert_eq!(
            replay.audit.as_ref(),
            bundle.audit.as_ref(),
            "replay({workers}) must reproduce the audit verdict"
        );
        assert_eq!(
            replay.incident.as_ref(),
            Some(&bundle),
            "replay({workers}) must reproduce the bundle byte-identically"
        );
    }
    bundle
}

/// E20 — the protocol-trace table: per-app decision timelines, causal
/// DAG sizes, and the forced-violation incident bundle.
pub fn protocol_trace() -> Table {
    let specs = protocol_specs();
    let outcomes = paired_traced_sweep(&specs);
    for (spec, out) in specs.iter().zip(&outcomes) {
        assert_zero_perturbation(spec, out);
    }
    // Under VI_TRACE, ride the E19 collector: the clique's causal DAG
    // becomes Perfetto flow arrows on the protocol lane. The sweep
    // already flushed its own spans, so flush again to append the
    // flow events.
    if trace_export::tracing_enabled() {
        if let Some(summary) = &outcomes[0].causal {
            causal::export_flows(summary);
        }
        trace_export::flush_env();
    }

    let mut t = Table::new(
        "E20 protocol trace: causal DAGs, decision timelines, incident bundles",
        &[
            "scenario", "timeline", "samples", "p50", "p95", "p99", "max", "spans", "edges",
            "flight",
        ],
    );
    for out in &outcomes {
        let c = out.causal.as_ref().expect("tracing was enabled");
        let base = out.scenario.split('/').next().unwrap_or(&out.scenario);
        for (app, d) in &c.decision {
            t.row(&[
                base.to_string(),
                app.clone(),
                d.samples.to_string(),
                d.p50.to_string(),
                d.p95.to_string(),
                d.p99.to_string(),
                d.max.to_string(),
                c.spans.len().to_string(),
                c.edges.len().to_string(),
                out.incident
                    .as_ref()
                    .map_or("-".to_string(), |b| b.flight.len().to_string()),
            ]);
        }
    }

    let bundle = forced_violation_bundle();
    t.row(&[
        "broken_majority".to_string(),
        "(incident)".to_string(),
        bundle.audit.as_ref().map_or(0, |r| r.ops).to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        bundle
            .causal
            .as_ref()
            .map_or(0, |c| c.spans.len())
            .to_string(),
        bundle
            .causal
            .as_ref()
            .map_or(0, |c| c.edges.len())
            .to_string(),
        bundle.flight.len().to_string(),
    ]);
    if let Ok(dir) = std::env::var("VI_INCIDENT_DIR") {
        let path = std::path::Path::new(&dir).join("incident_broken_majority.json");
        match bundle.save(&path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    t.note("latencies in rounds: invoke→complete per traffic app, propose→decide for cha");
    t.note("1-worker vs 4-worker traced sweeps asserted byte-identical (causal DAGs included)");
    t.note(
        "every traced outcome, observability fields stripped, asserted equal to its untraced run",
    );
    t.note("broken_majority: WGL violation dumped as an incident bundle; replay at 1 and 4 workers asserted to reproduce verdict and bundle byte-identically");
    t.note("set VI_INCIDENT_DIR=. to write incident_broken_majority.json; replay it via `repro --replay incident_broken_majority.json`");
    t.note("set VI_TRACE=out.json to export the causal DAG as Perfetto flow events");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_scenario::IncidentReason;

    /// Acceptance: traced sweeps are worker-invariant and tracing is
    /// zero-perturbation (subset for test runtime: clique + one
    /// traffic app).
    #[test]
    fn traced_sweeps_are_worker_invariant_and_zero_perturbation() {
        let specs: Vec<ScenarioSpec> = protocol_specs()
            .into_iter()
            .filter(|s| s.name == "clique" || s.name.starts_with("robot_patrol/register/"))
            .collect();
        assert_eq!(specs.len(), 2);
        let outcomes = paired_traced_sweep(&specs);
        for (spec, out) in specs.iter().zip(&outcomes) {
            assert_zero_perturbation(spec, out);
            let c = out.causal.as_ref().expect("tracing on");
            assert!(!c.spans.is_empty(), "{}: spans recorded", spec.name);
            assert!(!c.edges.is_empty(), "{}: receptions traced", spec.name);
        }
    }

    /// The decision timelines cover both protocol layers: CHA's
    /// propose→decide chain and a traffic app's invoke→complete path.
    #[test]
    fn decision_timelines_cover_cha_and_traffic_apps() {
        let clique = catalog::scenario("clique").expect("catalog scenario");
        let out = clique.run_with(SEED, traced_tuning());
        let c = out.causal.as_ref().expect("tracing on");
        let cha = c.decision.get("cha").expect("cha timeline");
        assert!(cha.samples > 0);
        assert!(cha.p50 <= cha.p95 && cha.p95 <= cha.p99 && cha.p99 <= cha.max);
        assert!(cha.max >= 2, "a CHA instance spans 3 rounds: {cha:?}");
        assert!(out.incident.is_none(), "clean run, no bundle");

        let register = protocol_specs()
            .into_iter()
            .find(|s| s.name.starts_with("robot_patrol/register/"))
            .expect("register variant");
        let out = register.run_with(SEED, traced_tuning());
        let c = out.causal.as_ref().expect("tracing on");
        let reg = c.decision.get("register").expect("register timeline");
        assert!(reg.samples > 0);
        let t = out.traffic.as_ref().expect("traffic summary");
        assert_eq!(reg.samples, t.completed, "one sample per completion");
        assert_eq!(
            c.op_spans.len() as u64,
            t.issued,
            "every issued op links to an invoke span"
        );
    }

    /// Acceptance: the forced violation produces a bundle that
    /// replays to the identical verdict at 1 and 4 workers (asserted
    /// inside `forced_violation_bundle`), and the bundle's JSON
    /// round-trips.
    #[test]
    fn forced_violation_bundle_replays_and_round_trips() {
        let bundle = forced_violation_bundle();
        assert_eq!(bundle.reason, IncidentReason::Violation);
        assert!(bundle.flight.len() <= FLIGHT_ROUNDS);
        assert!(!bundle.flight.is_empty());
        let back = IncidentBundle::from_json(&bundle.to_json()).expect("parses");
        assert_eq!(back, bundle);
    }
}
