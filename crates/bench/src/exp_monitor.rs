//! Experiment E21 (`live_monitor`): the live-monitoring pipeline —
//! periodic telemetry snapshots, streaming sinks, the Prometheus
//! `/metrics` exporter, and sweep progress events.
//!
//! The experiment drives monitored sweeps of catalog scenarios through
//! a [`RingSink`] and a live [`PrometheusExporter`] and asserts the
//! acceptance criteria inline before reporting anything:
//!
//! * the deterministic projection of every snapshot (counter deltas,
//!   totals, rounds, traffic progress — everything except wall-clock
//!   phase timings) is byte-identical between a 1-worker and an
//!   `auto()`-worker sweep;
//! * a monitored run's final [`ScenarioOutcome`] is byte-for-byte the
//!   unmonitored run's (monitoring rides the wall-clock side);
//! * snapshot deltas merged in `seq` order reconcile exactly with the
//!   run's final counter totals;
//! * a `/metrics` scrape against the exporter during the sweep returns
//!   well-formed Prometheus text exposition with per-scenario
//!   counters;
//! * every sweep job emits Queued → Started → Finished, and each
//!   Finished digest matches the FNV-1a digest of the job's outcome.
//!
//! The table reports, per job, the snapshot count plus the wall-clock
//! monitoring overhead (ms/round off vs. on) — the CI-gated ≤1.3x
//! bound lives in the `#[ignore]`d `monitor_on_overhead_is_bounded`
//! test, run explicitly in release.

use crate::table::{f2, Table};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vi_scenario::{catalog, EngineTuning, ScenarioOutcome, ScenarioSpec, SweepRunner};
use vi_telemetry::monitor::{self, scrape_metrics};
use vi_telemetry::{
    Counters, JobState, MonitorEvent, PrometheusExporter, RingSink, TrafficProgress,
};

/// Seeds of the monitored matrix.
const SEEDS: [u64; 2] = [1, 2];

/// Catalog picks: a static clique (pure engine rounds), heavy mobility
/// (re-anchors keep the counters moving), and an audited traffic
/// workload (exercises [`TrafficProgress`] snapshots).
const SCENARIOS: [&str; 3] = ["clique", "commuter_wave", "quake_drill"];

/// Snapshot period: small enough that every catalog run samples
/// several times.
const EVERY: u64 = 16;

/// The catalog picks with `prefix`ed names, so concurrently running
/// tests (which share the process-global sink registry) can never
/// collide with this experiment's events.
fn specs(prefix: &str) -> Vec<ScenarioSpec> {
    SCENARIOS
        .iter()
        .map(|name| {
            let mut spec = catalog::scenario(name).expect("catalog name");
            spec.name = format!("{prefix}{name}");
            spec
        })
        .collect()
}

/// The deterministic projection of a snapshot: everything except the
/// wall-clock `phases_delta`. Two monitored runs of the same job must
/// produce identical sequences of these at any worker count.
#[derive(Debug, PartialEq, Serialize)]
struct DetSnap {
    scenario: String,
    seed: u64,
    seq: u64,
    round: u64,
    last: bool,
    counters_delta: Counters,
    counters_total: Counters,
    traffic: Option<TrafficProgress>,
}

/// Extracts the deterministic snapshot projections for runs whose
/// scenario name starts with `prefix` (stripped), sorted by
/// `(scenario, seed, seq)` so worker interleaving cannot matter.
fn det_snaps(events: &[MonitorEvent], prefix: &str) -> Vec<DetSnap> {
    let mut snaps: Vec<DetSnap> = events
        .iter()
        .filter_map(|e| match e {
            MonitorEvent::Snapshot(s) if s.scenario.starts_with(prefix) => Some(DetSnap {
                scenario: s.scenario[prefix.len()..].to_string(),
                seed: s.seed,
                seq: s.seq,
                round: s.round,
                last: s.last,
                counters_delta: s.counters_delta,
                counters_total: s.counters_total,
                traffic: s.traffic,
            }),
            _ => None,
        })
        .collect();
    snaps.sort_by(|a, b| (&a.scenario, a.seed, a.seq).cmp(&(&b.scenario, b.seed, b.seq)));
    snaps
}

/// Asserts that every non-empty line of `body` is Prometheus text
/// exposition: a `# TYPE`/`# HELP` comment or a `name{labels} value` /
/// `name value` sample with a numeric value.
fn assert_prometheus_well_formed(body: &str) {
    assert!(!body.trim().is_empty(), "empty /metrics body");
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# TYPE ") || line.starts_with("# HELP "),
                "malformed comment line: {line:?}"
            );
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value: {line:?}"
        );
        let name = name_part.split('{').next().unwrap_or("");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "malformed metric name: {line:?}"
        );
        if let Some(rest) = name_part.split_once('{') {
            assert!(rest.1.ends_with('}'), "unterminated label set: {line:?}");
        }
    }
}

/// Asserts the sweep's job events: one Queued, one Started, and one
/// Finished per job, with every Finished digest equal to the FNV-1a
/// digest of the job's actual outcome JSON.
fn assert_job_events(events: &[MonitorEvent], prefix: &str, outcomes: &[ScenarioOutcome]) {
    for (job, out) in outcomes.iter().enumerate() {
        let mine: Vec<&JobState> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::Job(j)
                    if j.scenario.starts_with(prefix)
                        && j.job == job as u64
                        && j.seed == out.seed =>
                {
                    Some(&j.state)
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            mine.len(),
            3,
            "job {job}: expected Queued/Started/Finished, got {mine:?}"
        );
        assert_eq!(*mine[0], JobState::Queued, "job {job}");
        assert_eq!(*mine[1], JobState::Started, "job {job}");
        let expect = monitor::outcome_digest(serde_json::to_string(out).unwrap().as_bytes());
        assert_eq!(
            *mine[2],
            JobState::Finished { digest: expect },
            "job {job}: outcome digest mismatch"
        );
    }
}

/// E21 — the live-monitoring pipeline, acceptance-asserted inline.
///
/// # Panics
///
/// Panics if any acceptance criterion fails: snapshot determinism
/// across worker counts, outcome identity under monitoring, delta
/// reconciliation, `/metrics` well-formedness, or job-event digests.
pub fn live_monitor() -> Table {
    let ring: Arc<RingSink> = Arc::new(RingSink::with_capacity(1 << 16));
    let ring_sink: Arc<dyn monitor::MonitorSink> = ring.clone();
    let exporter = PrometheusExporter::bind("127.0.0.1:0").expect("bind ephemeral /metrics port");
    let exporter_sink: Arc<dyn monitor::MonitorSink> = exporter.clone();
    monitor::install_sink(ring_sink.clone());
    monitor::install_sink(exporter_sink.clone());
    let addr = exporter.addr().to_string();
    let tuning = EngineTuning::DEFAULT.with_monitor(EVERY);

    // Acceptance (d): scrape /metrics *while* the auto-worker sweep
    // runs. The sweep runs on a helper thread; this thread polls until
    // a scrape shows one of the sweep's scenarios (or the sweep ends —
    // the exporter keeps serving, so the final scrape still validates).
    let sweep_specs = specs("e21a_");
    let sweep = std::thread::spawn(move || {
        SweepRunner::auto().run_matrix_with(&sweep_specs, &SEEDS, tuning)
    });
    let mut live_body = String::new();
    for _ in 0..400 {
        if let Ok(body) = scrape_metrics(&addr) {
            if body.contains("vi_round{scenario=\"e21a_") {
                live_body = body;
                break;
            }
        }
        if sweep.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let auto_outcomes = sweep.join().expect("sweep thread");
    if live_body.is_empty() {
        live_body = scrape_metrics(&addr).expect("post-sweep scrape");
    }
    assert_prometheus_well_formed(&live_body);
    assert!(
        live_body.contains("# TYPE vi_rounds_total counter"),
        "missing counter family in /metrics"
    );
    assert!(
        live_body.contains("vi_rounds_total{scenario=\"e21a_"),
        "missing per-scenario counter samples in /metrics"
    );

    // Acceptance (a): the same matrix on 1 worker — the deterministic
    // snapshot projections must be byte-identical to the auto sweep's.
    let seq_specs = specs("e21s_");
    let seq_outcomes = SweepRunner::new(1).run_matrix_with(&seq_specs, &SEEDS, tuning);
    let events = ring.events();
    let auto_snaps = det_snaps(&events, "e21a_");
    let seq_snaps = det_snaps(&events, "e21s_");
    assert!(!auto_snaps.is_empty(), "no snapshots sampled");
    assert_eq!(
        serde_json::to_string(&auto_snaps).unwrap(),
        serde_json::to_string(&seq_snaps).unwrap(),
        "snapshot stream depends on the worker count"
    );
    assert_job_events(&events, "e21a_", &auto_outcomes);
    assert_job_events(&events, "e21s_", &seq_outcomes);

    // Reconciliation: per job, deltas merged in seq order equal the
    // final totals.
    for out in &seq_outcomes {
        let mine: Vec<&DetSnap> = seq_snaps
            .iter()
            .filter(|s| format!("e21s_{}", s.scenario) == out.scenario && s.seed == out.seed)
            .collect();
        assert!(
            !mine.is_empty(),
            "{}#{}: no snapshots",
            out.scenario,
            out.seed
        );
        let mut merged = Counters::default();
        for s in &mine {
            merged.merge(&s.counters_delta);
        }
        let last = mine.last().unwrap();
        assert!(last.last, "final snapshot not marked last");
        assert_eq!(
            merged, last.counters_total,
            "{}#{}: deltas do not reconcile with totals",
            out.scenario, out.seed
        );
    }

    monitor::uninstall_sink(&ring_sink);
    monitor::uninstall_sink(&exporter_sink);

    // Acceptance (b) + overhead columns: per job, an unmonitored run
    // must serialize byte-for-byte like the monitored one, and the
    // informational ms/round pair shows what sampling costs.
    let mut t = Table::new(
        "E21 live_monitor: snapshot pipeline, sinks, /metrics, sweep progress",
        &[
            "scenario",
            "seed",
            "rounds",
            "snapshots",
            "ms/round off",
            "ms/round on",
            "overhead ratio",
        ],
    );
    for (job, out) in seq_outcomes.iter().enumerate() {
        let spec = &seq_specs[job / SEEDS.len()];
        let t0 = Instant::now();
        let plain = spec.run_with(out.seed, EngineTuning::DEFAULT);
        let off_ms = t0.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(out).unwrap(),
            "{}#{}: monitoring changed the outcome",
            out.scenario,
            out.seed
        );
        monitor::install_sink(ring_sink.clone());
        let t1 = Instant::now();
        let _ = spec.run_with(out.seed, tuning);
        let on_ms = t1.elapsed().as_secs_f64() * 1000.0;
        monitor::uninstall_sink(&ring_sink);
        let snaps = seq_snaps
            .iter()
            .filter(|s| format!("e21s_{}", s.scenario) == out.scenario && s.seed == out.seed)
            .count();
        let rounds = out.rounds.max(1) as f64;
        t.row(&[
            out.scenario["e21s_".len()..].to_string(),
            out.seed.to_string(),
            out.rounds.to_string(),
            snaps.to_string(),
            f2(off_ms / rounds),
            f2(on_ms / rounds),
            f2((on_ms / rounds) / (off_ms / rounds).max(f64::MIN_POSITIVE)),
        ]);
    }
    t.note(format!(
        "snapshots every {EVERY} rounds; deterministic projections asserted identical between 1-worker and auto-worker sweeps"
    ));
    t.note("monitored outcomes asserted byte-identical to unmonitored runs before reporting");
    t.note("overhead columns are single-shot wall clock (informational); the CI-gated <=1.3x bound is the ignored monitor_on_overhead_is_bounded test");
    t.note("set VI_MONITOR_LOG=out.jsonl / VI_MONITOR_ADDR=127.0.0.1:9464 to stream any run; `repro monitor <addr>` tails an exporter");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp_metropolis::metropolis_spec;
    use vi_telemetry::{Monitor, Probe, SinkSet};

    /// Fast end-to-end: the full experiment runs, asserts its
    /// acceptance criteria inline, and reports one row per job.
    #[test]
    fn live_monitor_reports_every_job() {
        let t = live_monitor();
        assert_eq!(t.len(), SCENARIOS.len() * SEEDS.len());
        assert_eq!(t.cell(0, 0), "clique");
        for row in 0..t.len() {
            assert!(
                t.cell(row, 3).parse::<u64>().unwrap() >= 2,
                "row {row}: a monitored run samples at least twice"
            );
        }
    }

    /// An explicit monitor over a local sink set (no global registry):
    /// a scenario run samples on the tuning period and the deltas
    /// reconcile — the embedder-facing API works without env vars.
    #[test]
    fn explicit_monitor_samples_a_run() {
        let ring = Arc::new(RingSink::with_capacity(1024));
        let probe = Probe::enabled();
        let monitor = Monitor::enabled(
            "local",
            7,
            8,
            probe.clone(),
            SinkSet::new(vec![ring.clone()]),
        );
        for round in 1..=20u64 {
            probe.count(|c| c.rounds_total += 1);
            monitor.on_round(round);
        }
        monitor.finish();
        let snaps: Vec<_> = ring
            .events()
            .into_iter()
            .filter_map(|e| match e {
                MonitorEvent::Snapshot(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(
            snaps.iter().map(|s| s.round).collect::<Vec<_>>(),
            vec![8, 16, 20]
        );
        let mut merged = Counters::default();
        for s in &snaps {
            merged.merge(&s.counters_delta);
        }
        assert_eq!(merged.rounds_total, 20);
        assert_eq!(merged, probe.counters().unwrap());
    }

    /// Acceptance guard, CI-release only: monitoring-on must stay
    /// within ~1.3x of monitoring-off on a metropolis-scale run — a
    /// snapshot is two struct copies, a subtraction, and one JSON
    /// line every `EVERY` rounds.
    #[test]
    #[ignore = "wall-clock benchmark; CI runs it explicitly in release (monitor smoke step)"]
    fn monitor_on_overhead_is_bounded() {
        let spec = metropolis_spec("monitor_overhead_5000", 5000, 0.02, 10);
        let ring: Arc<dyn monitor::MonitorSink> = Arc::new(RingSink::with_capacity(1 << 14));
        monitor::install_sink(ring.clone());
        let run_ms = |tuning: EngineTuning| -> f64 {
            let t0 = Instant::now();
            let out = spec.run_with(1, tuning);
            t0.elapsed().as_secs_f64() * 1000.0 / out.rounds.max(1) as f64
        };
        let mut failure = String::new();
        for attempt in 0..3 {
            // Interleaved min-of-pairs: scheduler noise only inflates.
            let mut off_ms = f64::INFINITY;
            let mut on_ms = f64::INFINITY;
            for _ in 0..2 {
                off_ms = off_ms.min(run_ms(EngineTuning::with_workers(1)));
                on_ms = on_ms.min(run_ms(EngineTuning::with_workers(1).with_monitor(64)));
            }
            let ratio = on_ms / off_ms.max(f64::MIN_POSITIVE);
            if ratio <= 1.3 {
                eprintln!(
                    "monitor overhead n=5000: {off_ms:.3} -> {on_ms:.3} ms/round ({ratio:.2}x)"
                );
                monitor::uninstall_sink(&ring);
                return;
            }
            failure = format!(
                "attempt {attempt}: {off_ms:.3} -> {on_ms:.3} ms/round, {ratio:.2}x (want <= 1.3x)"
            );
        }
        monitor::uninstall_sink(&ring);
        panic!("monitor overhead above 1.3x on every attempt; last: {failure}");
    }
}
