//! Experiment E18 (`metropolis`): the engine hot path at city scale —
//! pre-overhaul vs overhauled vs tile-sharded rounds, through the
//! scenario subsystem.
//!
//! Deployments are constant-density metropolises of up to 1 000 000
//! nodes with mixed static/mobile populations, compiled from
//! [`ScenarioSpec`]s and executed through the [`SweepRunner`]. Every
//! configuration runs on the sequential overhauled path and on the
//! tile-sharded parallel path ([`SHARD_WORKERS`] intra-round
//! workers); the affordable sizes additionally run on the
//! pre-overhaul path. All outcome tables are asserted byte-identical
//! before any timing is reported: neither the overhaul nor the
//! sharding buys anything but wall-clock.
//!
//! The `static_heavy` rows are the headline: in a city where most
//! nodes never move, the old path re-sorts and re-bucketizes
//! identical geometry round after round, the overhauled path resolves
//! each round from cached neighborhoods, and the sharded path fans
//! the neighborhood scans across row-band tiles of the spatial grid.
//!
//! The n=200 000 and n=1 000 000 rows are expensive, so they only run
//! when `VI_METROPOLIS_LARGE=1` is set (CI runs them in a non-gating
//! nightly-style job); otherwise they are skipped with a table note.

use crate::table::{f2, Table};
use std::time::Instant;
use vi_radio::geometry::Rect;
use vi_radio::{AdversaryKind, RadioConfig};
use vi_scenario::{
    CmSpec, EngineTuning, MobilitySpec, PlacementSpec, PopulationSpec, ScenarioOutcome,
    ScenarioSpec, SweepRunner, WorkloadSpec,
};

/// Seed shared by every metropolis run (one seed keeps the experiment
/// affordable; determinism is already covered by the E15 matrix).
const SEED: u64 = 1;

/// Constant-density spacing (matches E14's deployments): each `R2`
/// disk holds a handful of nodes regardless of `n`.
const SPACING: f64 = 15.0;

/// Intra-round worker count of the sharded columns (matches the CI
/// speedup guard: ≥1.5x at 4 workers on `static_heavy`).
pub const SHARD_WORKERS: usize = 4;

/// One E18 configuration row. The experiment table, its tests, and
/// the CI guards all derive from [`CONFIGS`], so rows cannot drift
/// between the experiment and its assertions.
#[derive(Clone, Copy, Debug)]
pub struct MetroConfig {
    /// Mobility-mix label (`static_heavy` / `commuter` / `rush_hour`).
    pub mix: &'static str,
    /// Node count.
    pub n: usize,
    /// Fraction of nodes roaming as random waypoints.
    pub mobile_fraction: f64,
    /// CHA instances (3 rounds each).
    pub instances: u64,
    /// Expensive row: runs only with `VI_METROPOLIS_LARGE=1`, and
    /// skips the legacy-path timing entirely.
    pub large: bool,
}

/// The E18 configuration matrix: three mobility mixes at two
/// affordable city sizes, plus the large-n scaling rows.
pub const CONFIGS: &[MetroConfig] = &[
    MetroConfig {
        mix: "static_heavy",
        n: 5000,
        mobile_fraction: 0.02,
        instances: 20,
        large: false,
    },
    MetroConfig {
        mix: "commuter",
        n: 5000,
        mobile_fraction: 0.30,
        instances: 20,
        large: false,
    },
    MetroConfig {
        mix: "rush_hour",
        n: 5000,
        mobile_fraction: 0.60,
        instances: 20,
        large: false,
    },
    MetroConfig {
        mix: "static_heavy",
        n: 20000,
        mobile_fraction: 0.02,
        instances: 10,
        large: false,
    },
    MetroConfig {
        mix: "commuter",
        n: 20000,
        mobile_fraction: 0.30,
        instances: 10,
        large: false,
    },
    MetroConfig {
        mix: "rush_hour",
        n: 20000,
        mobile_fraction: 0.60,
        instances: 10,
        large: false,
    },
    MetroConfig {
        mix: "static_heavy",
        n: 200_000,
        mobile_fraction: 0.02,
        instances: 4,
        large: true,
    },
    MetroConfig {
        mix: "commuter",
        n: 200_000,
        mobile_fraction: 0.30,
        instances: 3,
        large: true,
    },
    MetroConfig {
        mix: "static_heavy",
        n: 1_000_000,
        mobile_fraction: 0.02,
        instances: 2,
        large: true,
    },
];

/// Whether the expensive large-n rows should run (documented env
/// gate; CI sets it in the non-gating nightly-style job).
fn large_rows_enabled() -> bool {
    std::env::var("VI_METROPOLIS_LARGE").is_ok_and(|v| v.trim() == "1")
}

/// A constant-density metropolis: `n` nodes uniform over a square
/// growing with `sqrt(n)`, of which `mobile_fraction` roam as random
/// waypoints and the rest never move. The workload is CHA under the
/// randomized backoff contention manager, so pre-capture rounds keep
/// genuine broadcast contention on the channel.
pub fn metropolis_spec(name: &str, n: usize, mobile_fraction: f64, instances: u64) -> ScenarioSpec {
    let side = (n as f64).sqrt() * SPACING;
    let mobile = ((n as f64) * mobile_fraction).round() as usize;
    let mut populations = vec![PopulationSpec::fixed(n - mobile, PlacementSpec::Uniform)];
    if mobile > 0 {
        populations.push(
            PopulationSpec::fixed(mobile, PlacementSpec::Uniform)
                .with_mobility(MobilitySpec::Waypoint { speed: 0.5 }),
        );
    }
    ScenarioSpec {
        name: name.into(),
        arena: Rect::square(side),
        radio: RadioConfig::reliable(10.0, 20.0),
        populations,
        adversary: AdversaryKind::None,
        nemesis: vi_scenario::NemesisSpec::none(),
        cm: CmSpec::Backoff,
        workload: WorkloadSpec::ChaClique { instances },
    }
}

fn spec_of(cfg: &MetroConfig) -> ScenarioSpec {
    metropolis_spec(
        &format!("metropolis_{}_{}", cfg.mix, cfg.n),
        cfg.n,
        cfg.mobile_fraction,
        cfg.instances,
    )
}

/// Wall-clock of one run under the given tuning: `(ms per round,
/// outcome)`.
pub fn timed_run(spec: &ScenarioSpec, tuning: EngineTuning) -> (f64, ScenarioOutcome) {
    let t0 = Instant::now();
    let out = spec.run_with(SEED, tuning);
    let ms = t0.elapsed().as_secs_f64() * 1000.0 / out.rounds.max(1) as f64;
    (ms, out)
}

/// Sequential wall-clock of one run on the given engine path, as
/// milliseconds per round.
pub fn ms_per_round(spec: &ScenarioSpec, legacy_engine: bool) -> f64 {
    let tuning = EngineTuning {
        legacy_engine,
        workers: 1,
        ..EngineTuning::DEFAULT
    };
    timed_run(spec, tuning).0
}

/// E18 — metropolis-scale ms/round across engine paths, with
/// byte-identity asserted through the sweep runner first: legacy vs
/// overhauled on the affordable sizes, 1-worker vs [`SHARD_WORKERS`]
/// on every row that runs.
///
/// # Panics
///
/// Panics if any two engine paths ever disagree on an outcome — that
/// would be a determinism bug in the hot-path overhaul or in the
/// tile-sharded resolver.
pub fn metropolis() -> Table {
    let small: Vec<ScenarioSpec> = CONFIGS.iter().filter(|c| !c.large).map(spec_of).collect();

    // The safety nets first: identical matrices through the runner on
    // all three engine paths (legacy, overhauled sequential,
    // overhauled sharded).
    let runner = SweepRunner::auto();
    let fast = runner.run_matrix(&small, &[SEED]);
    let legacy = runner.run_matrix_tuned(&small, &[SEED], true);
    assert_eq!(
        serde_json::to_string(&fast).expect("serializable outcomes"),
        serde_json::to_string(&legacy).expect("serializable outcomes"),
        "legacy and overhauled engine paths must be byte-identical"
    );
    let sharded =
        runner.run_matrix_with(&small, &[SEED], EngineTuning::with_workers(SHARD_WORKERS));
    assert_eq!(
        serde_json::to_string(&fast).expect("serializable outcomes"),
        serde_json::to_string(&sharded).expect("serializable outcomes"),
        "sequential and tile-sharded rounds must be byte-identical"
    );

    let mut t = Table::new(
        "E18 metropolis: engine hot path — pre-overhaul vs overhauled vs tile-sharded rounds",
        &[
            "mix",
            "n",
            "rounds",
            "workers",
            "old ms/round",
            "seq ms/round",
            "sharded ms/round",
            "shard speedup",
            "steady",
            "reanchor",
            "churn",
            "receptions",
        ],
    );
    let large_on = large_rows_enabled();
    for cfg in CONFIGS {
        if cfg.large && !large_on {
            continue;
        }
        let spec = spec_of(cfg);
        // The large sizes skip the legacy path: per-round index
        // rebuilds with per-receiver allocation at n >= 200 000 are
        // exactly what the overhaul exists to avoid paying.
        let old_ms = if cfg.large {
            None
        } else {
            Some(ms_per_round(&spec, true))
        };
        let (seq_ms, seq_out) = timed_run(&spec, EngineTuning::with_workers(1));
        let (shard_ms, shard_out) = timed_run(&spec, EngineTuning::with_workers(SHARD_WORKERS));
        assert_eq!(
            seq_out, shard_out,
            "sequential and sharded outcomes diverged on {}",
            spec.name
        );
        // One extra telemetry-on run per row feeds the counter columns
        // and the phase breakdown below. The timing columns above stay
        // telemetry-off, and stripping the summary must recover the
        // plain outcome exactly — telemetry observes, never perturbs.
        let tele_out = spec.run_with(SEED, EngineTuning::with_workers(1).with_telemetry());
        let mut stripped = tele_out.clone();
        stripped.telemetry = None;
        assert_eq!(
            stripped, seq_out,
            "telemetry perturbed the simulation on {}",
            spec.name
        );
        let tele = tele_out.telemetry.expect("telemetry was enabled");
        t.row(&[
            cfg.mix.to_string(),
            seq_out.nodes.to_string(),
            seq_out.rounds.to_string(),
            SHARD_WORKERS.to_string(),
            old_ms.map_or_else(|| "-".to_string(), |ms| format!("{ms:.3}")),
            format!("{seq_ms:.3}"),
            format!("{shard_ms:.3}"),
            f2(seq_ms / shard_ms.max(f64::MIN_POSITIVE)),
            tele.counters.rounds_steady.to_string(),
            tele.counters.rounds_reanchor.to_string(),
            tele.counters.rounds_churn.to_string(),
            tele.counters.receptions.to_string(),
        ]);
        let phases: Vec<String> = tele
            .phases
            .phases
            .iter()
            .filter(|p| p.samples > 0)
            .map(|p| format!("{} p50={}µs p95={}µs", p.phase, p.p50_us, p.p95_us))
            .collect();
        t.note(format!(
            "{} {}k phase breakdown: {}",
            cfg.mix,
            cfg.n / 1000,
            phases.join(", ")
        ));
    }
    t.note("constant density (15 m spacing); mobile nodes are 0.5 m/round waypoints");
    t.note("static_heavy = 2% mobile, commuter = 30%, rush_hour = 60% (high churn exercises the churn fallback)");
    t.note("outcome tables asserted byte-identical across all engine paths (legacy, sequential, sharded) before timing");
    t.note("`workers` is the intra-round worker count of the sharded column; shard speedup = seq / sharded");
    t.note("steady/reanchor/churn are deterministic round-mode counters; receptions is total deliveries (telemetry run, timing columns are telemetry-off)");
    if large_on {
        t.note("large rows (n >= 200000) enabled via VI_METROPOLIS_LARGE=1; their legacy-path timing is skipped ('-')");
    } else {
        t.note("large rows (n = 200000, 1000000) skipped; set VI_METROPOLIS_LARGE=1 to run them");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vi_radio::adversary::NoAdversary;
    use vi_radio::channel::{Medium, ReceptionBuffer, TopologyDelta, TxIntent};
    use vi_radio::geometry::Point;
    use vi_radio::NodeId;

    /// A scaled-down metropolis stays byte-identical across engine
    /// paths — legacy, sequential, and sharded with the threshold
    /// forced down so tiny rounds actually shard — and produces sane
    /// outcomes (the full-size differential runs inside `metropolis()`
    /// itself and in CI release smoke).
    #[test]
    fn small_metropolis_paths_agree() {
        let spec = metropolis_spec("metropolis_test", 300, 0.1, 4);
        spec.validate().expect("metropolis spec validates");
        let fast = spec.run(SEED);
        let legacy = spec.run_tuned(SEED, true);
        assert_eq!(fast, legacy, "engine paths must be byte-identical");
        let sharded = spec.run_with(SEED, EngineTuning::with_workers(3));
        assert_eq!(fast, sharded, "sharded path must be byte-identical");
        assert_eq!(fast.nodes, 300);
        assert_eq!(fast.rounds, 12);
        assert!(fast.broadcasts > 0, "backoff CM must admit broadcasters");
    }

    #[test]
    fn table_has_expected_shape() {
        // Shape only — tiny stand-ins for the real configs would still
        // run nine sweeps, so assert over the shared CONFIGS const.
        assert_eq!(CONFIGS.len(), 9);
        assert!(CONFIGS
            .iter()
            .any(|c| c.mix == "static_heavy" && c.n == 20000 && !c.large));
        assert!(
            CONFIGS.iter().any(|c| c.n == 1_000_000 && c.large),
            "the million-node scaling row must exist"
        );
        assert!(
            CONFIGS.iter().filter(|c| c.large).all(|c| c.n >= 200_000),
            "only genuinely large rows may hide behind the env gate"
        );
    }

    /// Acceptance criterion for the hot-path overhaul, CI-release
    /// only: at metropolis scale the static-heavy configuration must
    /// run at least 2x faster per round on the overhauled path.
    ///
    /// Wall-clock assertions are noise-sensitive on shared CI
    /// runners, so a failed attempt is re-measured before concluding
    /// the fast path has actually regressed.
    #[test]
    #[ignore = "wall-clock benchmark; CI runs it explicitly in release (metropolis smoke step)"]
    fn metropolis_static_heavy_speedup() {
        let spec = metropolis_spec("metropolis_static_heavy_20000", 20000, 0.02, 10);
        let mut failure = String::new();
        for attempt in 0..3 {
            // Two interleaved pairs per attempt; the minimum of each
            // side is the standard noise-robust wall-clock estimator
            // (scheduler interference only ever inflates a run).
            let mut old_ms = f64::INFINITY;
            let mut new_ms = f64::INFINITY;
            for _ in 0..2 {
                old_ms = old_ms.min(ms_per_round(&spec, true));
                new_ms = new_ms.min(ms_per_round(&spec, false));
            }
            let speedup = old_ms / new_ms.max(f64::MIN_POSITIVE);
            if speedup >= 2.0 {
                eprintln!(
                    "metropolis static_heavy n=20000: {old_ms:.3} -> {new_ms:.3} ms/round ({speedup:.1}x)"
                );
                return;
            }
            failure = format!(
                "attempt {attempt}: {old_ms:.3} -> {new_ms:.3} ms/round, {speedup:.2}x (want >= 2x)"
            );
        }
        panic!("static-heavy metropolis speedup below 2x on every attempt; last: {failure}");
    }

    /// CI acceptance: 1-vs-N-worker byte-identity at n=20 000 on
    /// every affordable configuration (release smoke; the proptests
    /// cover randomized small topologies, this covers real scale).
    #[test]
    #[ignore = "full-scale differential; CI runs it explicitly in release (metropolis smoke step)"]
    fn metropolis_sharded_byte_identity() {
        for cfg in CONFIGS.iter().filter(|c| !c.large && c.n == 20000) {
            let spec = spec_of(cfg);
            let sequential = spec.run_with(SEED, EngineTuning::with_workers(1));
            // Telemetry counters are part of the deterministic surface:
            // the same run at any worker count must report the same
            // counter set (phase timings are excluded from equality).
            let tele_seq = spec.run_with(SEED, EngineTuning::with_workers(1).with_telemetry());
            let seq_counters = tele_seq
                .telemetry
                .as_ref()
                .expect("telemetry was enabled")
                .counters;
            assert!(seq_counters.rounds_total > 0, "rounds were counted");
            for workers in [2usize, SHARD_WORKERS] {
                let sharded = spec.run_with(SEED, EngineTuning::with_workers(workers));
                assert_eq!(
                    sequential, sharded,
                    "{} diverged at {workers} workers",
                    spec.name
                );
                let tele_shard =
                    spec.run_with(SEED, EngineTuning::with_workers(workers).with_telemetry());
                assert_eq!(
                    seq_counters,
                    tele_shard
                        .telemetry
                        .as_ref()
                        .expect("telemetry was enabled")
                        .counters,
                    "{} counters diverged at {workers} workers",
                    spec.name
                );
            }
        }
    }

    /// Acceptance criterion for tile sharding, CI-release only: the
    /// *round resolver* at 4 workers must be ≥1.5x faster than
    /// sequential on a static-heavy metropolis-scale medium, while
    /// byte-identical.
    ///
    /// This times `Medium::resolve_round_cached` directly rather than
    /// whole scenario runs: protocol work (CHA state machines,
    /// contention management, intent collection) is inherently
    /// sequential, so Amdahl caps the end-to-end speedup well below
    /// the resolver's own scaling — and the resolver is what this PR
    /// parallelizes.
    #[test]
    #[ignore = "wall-clock benchmark; CI runs it explicitly in release (metropolis smoke step)"]
    fn metropolis_sharded_speedup() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if cores < SHARD_WORKERS {
            eprintln!("skipping sharded speedup guard: {cores} cores < {SHARD_WORKERS} workers");
            return;
        }
        // A dense static metropolis medium: hash-scattered positions
        // at 8 m spacing (~20 nodes per R2 disk), every third slot
        // broadcasting on a rotating schedule — the ScanCached steady
        // state that dominates static-heavy rounds.
        let n = 20_000usize;
        let side = (n as f64).sqrt() * 8.0;
        let positions: Vec<Point> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Point::new(
                    (h % 100_000) as f64 / 100_000.0 * side,
                    ((h >> 32) % 100_000) as f64 / 100_000.0 * side,
                )
            })
            .collect();
        let cfg = RadioConfig::reliable(10.0, 20.0);
        let intents_of = |round: u64| -> Vec<TxIntent<u64>> {
            positions
                .iter()
                .enumerate()
                .map(|(i, &pos)| TxIntent {
                    node: NodeId::from(i),
                    pos,
                    payload: (round as usize + i).is_multiple_of(3).then_some(i as u64),
                })
                .collect()
        };
        let run = |workers: usize, rounds: u64| -> (f64, u64) {
            let mut medium = Medium::new(cfg);
            medium.set_workers(workers);
            let mut out = ReceptionBuffer::new();
            let mut rng = StdRng::seed_from_u64(SEED);
            let mut digest = 0u64;
            // Warm-up: round 0 anchors the cache, rounds 1-2 settle
            // the rotating broadcast pattern and grow all scratch.
            for round in 0..3u64 {
                let delta = if round == 0 {
                    TopologyDelta::Rebuild
                } else {
                    TopologyDelta::Unchanged
                };
                let intents = intents_of(round);
                medium.resolve_round_cached(
                    round,
                    &intents,
                    delta,
                    &mut NoAdversary,
                    &mut rng,
                    &mut out,
                );
            }
            let t0 = Instant::now();
            for round in 3..3 + rounds {
                let intents = intents_of(round);
                medium.resolve_round_cached(
                    round,
                    &intents,
                    TopologyDelta::Unchanged,
                    &mut NoAdversary,
                    &mut rng,
                    &mut out,
                );
                digest = digest
                    .wrapping_mul(31)
                    .wrapping_add(out.len() as u64)
                    .wrapping_add((0..out.len()).filter(|&k| out.collision(k)).count() as u64);
            }
            (t0.elapsed().as_secs_f64() * 1000.0 / rounds as f64, digest)
        };

        let mut failure = String::new();
        for attempt in 0..3 {
            // Interleaved min-of-pairs: scheduler noise only inflates.
            let mut seq_ms = f64::INFINITY;
            let mut shard_ms = f64::INFINITY;
            let mut digests = (0u64, 0u64);
            for _ in 0..2 {
                let (s, d1) = run(1, 30);
                let (p, d2) = run(SHARD_WORKERS, 30);
                seq_ms = seq_ms.min(s);
                shard_ms = shard_ms.min(p);
                digests = (d1, d2);
            }
            assert_eq!(
                digests.0, digests.1,
                "sharded resolver digest diverged from sequential"
            );
            let speedup = seq_ms / shard_ms.max(f64::MIN_POSITIVE);
            if speedup >= 1.5 {
                eprintln!(
                    "sharded resolver n=20000: {seq_ms:.3} -> {shard_ms:.3} ms/round ({speedup:.2}x at {SHARD_WORKERS} workers)"
                );
                return;
            }
            failure = format!(
                "attempt {attempt}: {seq_ms:.3} -> {shard_ms:.3} ms/round, {speedup:.2}x (want >= 1.5x)"
            );
        }
        panic!("sharded resolver speedup below 1.5x on every attempt; last: {failure}");
    }
}
