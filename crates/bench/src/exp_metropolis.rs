//! Experiment E18 (`metropolis`): the engine hot-path overhaul at
//! city scale, old round path vs new, through the scenario subsystem.
//!
//! Deployments are constant-density metropolises of up to 20 000
//! nodes with mixed static/mobile populations, compiled from
//! [`ScenarioSpec`]s and executed through the [`SweepRunner`]. Every
//! configuration runs twice — once on the pre-overhaul engine path
//! (per-round spatial-index rebuild, per-receiver allocation, no
//! static-node fast path) and once on the overhauled path (settled
//! nodes skipped, incrementally maintained index, cached `R2`
//! neighborhoods, zero-alloc SoA rounds) — and the two outcome tables
//! are asserted byte-identical before any timing is reported: the
//! overhaul buys wall-clock, never behaviour.
//!
//! The `static_heavy` rows are the headline: in a city where most
//! nodes never move, the old path re-sorts and re-bucketizes
//! identical geometry round after round, while the new path resolves
//! each round from cached neighborhoods without touching the index.

use crate::table::{f2, Table};
use std::time::Instant;
use vi_radio::geometry::Rect;
use vi_radio::{AdversaryKind, RadioConfig};
use vi_scenario::{
    CmSpec, MobilitySpec, PlacementSpec, PopulationSpec, ScenarioSpec, SweepRunner, WorkloadSpec,
};

/// Seed shared by every metropolis run (one seed keeps the experiment
/// affordable; determinism is already covered by the E15 matrix).
const SEED: u64 = 1;

/// Constant-density spacing (matches E14's deployments): each `R2`
/// disk holds a handful of nodes regardless of `n`.
const SPACING: f64 = 15.0;

/// A constant-density metropolis: `n` nodes uniform over a square
/// growing with `sqrt(n)`, of which `mobile_fraction` roam as random
/// waypoints and the rest never move. The workload is CHA under the
/// randomized backoff contention manager, so pre-capture rounds keep
/// genuine broadcast contention on the channel.
pub fn metropolis_spec(name: &str, n: usize, mobile_fraction: f64, instances: u64) -> ScenarioSpec {
    let side = (n as f64).sqrt() * SPACING;
    let mobile = ((n as f64) * mobile_fraction).round() as usize;
    let mut populations = vec![PopulationSpec::fixed(n - mobile, PlacementSpec::Uniform)];
    if mobile > 0 {
        populations.push(
            PopulationSpec::fixed(mobile, PlacementSpec::Uniform)
                .with_mobility(MobilitySpec::Waypoint { speed: 0.5 }),
        );
    }
    ScenarioSpec {
        name: name.into(),
        arena: Rect::square(side),
        radio: RadioConfig::reliable(10.0, 20.0),
        populations,
        adversary: AdversaryKind::None,
        nemesis: vi_scenario::NemesisSpec::none(),
        cm: CmSpec::Backoff,
        workload: WorkloadSpec::ChaClique { instances },
    }
}

/// The E18 configuration matrix: `(mix, n, mobile fraction,
/// instances)`. Three mobility mixes at two city sizes.
fn configs() -> Vec<(&'static str, usize, f64, u64)> {
    vec![
        ("static_heavy", 5000, 0.02, 20),
        ("commuter", 5000, 0.30, 20),
        ("rush_hour", 5000, 0.60, 20),
        ("static_heavy", 20000, 0.02, 10),
        ("commuter", 20000, 0.30, 10),
        ("rush_hour", 20000, 0.60, 10),
    ]
}

fn spec_of(mix: &str, n: usize, frac: f64, instances: u64) -> ScenarioSpec {
    metropolis_spec(&format!("metropolis_{mix}_{n}"), n, frac, instances)
}

/// Sequential wall-clock of one run on the given engine path, as
/// milliseconds per round.
pub fn ms_per_round(spec: &ScenarioSpec, legacy_engine: bool) -> f64 {
    let t0 = Instant::now();
    let out = spec.run_tuned(SEED, legacy_engine);
    t0.elapsed().as_secs_f64() * 1000.0 / out.rounds.max(1) as f64
}

/// E18 — metropolis-scale old-vs-new ms/round, with old-path/new-path
/// byte-identity asserted through the sweep runner first.
///
/// # Panics
///
/// Panics if the two engine paths ever disagree on an outcome — that
/// would be a determinism bug in the hot-path overhaul.
pub fn metropolis() -> Table {
    let specs: Vec<ScenarioSpec> = configs()
        .into_iter()
        .map(|(mix, n, frac, instances)| spec_of(mix, n, frac, instances))
        .collect();

    // The safety net first: identical matrices through the runner on
    // both engine paths.
    let runner = SweepRunner::auto();
    let fast = runner.run_matrix(&specs, &[SEED]);
    let legacy = runner.run_matrix_tuned(&specs, &[SEED], true);
    assert_eq!(
        serde_json::to_string(&fast).expect("serializable outcomes"),
        serde_json::to_string(&legacy).expect("serializable outcomes"),
        "legacy and overhauled engine paths must be byte-identical"
    );

    let mut t = Table::new(
        "E18 metropolis: engine hot path, pre-overhaul vs overhauled round path",
        &[
            "mix",
            "n",
            "rounds",
            "old ms/round",
            "new ms/round",
            "speedup",
        ],
    );
    for (spec, outcome) in specs.iter().zip(&fast) {
        let mix = spec
            .name
            .strip_prefix("metropolis_")
            .and_then(|s| s.rsplit_once('_'))
            .map_or(spec.name.as_str(), |(m, _)| m);
        let old_ms = ms_per_round(spec, true);
        let new_ms = ms_per_round(spec, false);
        t.row(&[
            mix.to_string(),
            outcome.nodes.to_string(),
            outcome.rounds.to_string(),
            format!("{old_ms:.3}"),
            format!("{new_ms:.3}"),
            f2(old_ms / new_ms.max(f64::MIN_POSITIVE)),
        ]);
    }
    t.note("constant density (15 m spacing); mobile nodes are 0.5 m/round waypoints");
    t.note("static_heavy = 2% mobile, commuter = 30%, rush_hour = 60% (high churn exercises the churn fallback)");
    t.note("outcome tables on both paths asserted byte-identical via SweepRunner before timing");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down metropolis stays byte-identical across engine
    /// paths and produces sane outcomes (the full-size differential
    /// runs inside `metropolis()` itself and in CI release smoke).
    #[test]
    fn small_metropolis_paths_agree() {
        let spec = metropolis_spec("metropolis_test", 300, 0.1, 4);
        spec.validate().expect("metropolis spec validates");
        let fast = spec.run(SEED);
        let legacy = spec.run_tuned(SEED, true);
        assert_eq!(fast, legacy, "engine paths must be byte-identical");
        assert_eq!(fast.nodes, 300);
        assert_eq!(fast.rounds, 12);
        assert!(fast.broadcasts > 0, "backoff CM must admit broadcasters");
    }

    #[test]
    fn table_has_expected_shape() {
        // Shape only — tiny stand-ins for the real configs would still
        // run six sweeps, so exercise the row builder via configs().
        assert_eq!(configs().len(), 6);
        assert!(configs()
            .iter()
            .any(|&(m, n, _, _)| m == "static_heavy" && n == 20000));
    }

    /// Acceptance criterion for the hot-path overhaul, CI-release
    /// only: at metropolis scale the static-heavy configuration must
    /// run at least 2x faster per round on the overhauled path.
    ///
    /// Wall-clock assertions are noise-sensitive on shared CI
    /// runners, so a failed attempt is re-measured before concluding
    /// the fast path has actually regressed.
    #[test]
    #[ignore = "wall-clock benchmark; CI runs it explicitly in release (metropolis smoke step)"]
    fn metropolis_static_heavy_speedup() {
        let spec = spec_of("static_heavy", 20000, 0.02, 10);
        let mut failure = String::new();
        for attempt in 0..3 {
            // Two interleaved pairs per attempt; the minimum of each
            // side is the standard noise-robust wall-clock estimator
            // (scheduler interference only ever inflates a run).
            let mut old_ms = f64::INFINITY;
            let mut new_ms = f64::INFINITY;
            for _ in 0..2 {
                old_ms = old_ms.min(ms_per_round(&spec, true));
                new_ms = new_ms.min(ms_per_round(&spec, false));
            }
            let speedup = old_ms / new_ms.max(f64::MIN_POSITIVE);
            if speedup >= 2.0 {
                eprintln!(
                    "metropolis static_heavy n=20000: {old_ms:.3} -> {new_ms:.3} ms/round ({speedup:.1}x)"
                );
                return;
            }
            failure = format!(
                "attempt {attempt}: {old_ms:.3} -> {new_ms:.3} ms/round, {speedup:.2}x (want >= 2x)"
            );
        }
        panic!("static-heavy metropolis speedup below 2x on every attempt; last: {failure}");
    }
}
