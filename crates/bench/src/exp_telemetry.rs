//! Experiment E19 (`telemetry`): the observability layer itself —
//! deterministic engine counters and wall-clock phase timers across
//! representative catalog scenarios.
//!
//! Every row runs with [`EngineTuning::with_telemetry`] through the
//! [`SweepRunner`] and reports the counter set a run accumulated:
//! round-mode split (steady / scatter / re-anchor / churn), cache
//! re-anchors, receptions and collisions, adversary consultations,
//! traffic timeouts and audited operations. Counters live on the
//! sequential control path of the engine, so the experiment asserts
//! the tentpole acceptance criterion inline: the same matrix on 1
//! worker and on `auto()` workers yields identical counter sets
//! (wall-clock phase stats are excluded from summary equality).
//!
//! The Perfetto side (`VI_TRACE`) is exercised by this module's
//! tests: sweeps emit `sweep-worker` and per-job spans that must
//! round-trip through the Chrome trace-event JSON format.

use crate::table::Table;
use vi_scenario::{catalog, EngineTuning, ScenarioOutcome, ScenarioSpec, SweepRunner};
use vi_telemetry::Phase;

/// Seeds of the telemetry matrix (two is enough — determinism across
/// seeds is E15's job; this experiment characterizes counter shapes).
const SEEDS: [u64; 2] = [1, 2];

/// Catalog picks covering every counter family: a static clique
/// (steady rounds), heavy mobility (movers + re-anchors), a lying
/// detector (adversary consultations), city scale (scatter + churn),
/// and an audited traffic workload (timeouts + audit ops).
const SCENARIOS: [&str; 5] = [
    "clique",
    "commuter_wave",
    "broken_detector",
    "city_scale",
    "quake_drill",
];

fn specs() -> Vec<ScenarioSpec> {
    SCENARIOS
        .iter()
        .map(|name| catalog::scenario(name).expect("catalog name"))
        .collect()
}

/// Compact per-phase p95 cell: `advance/geometry/finalize/deliver/
/// checker` in microseconds (`-` for phases with no samples).
fn phase_p95_cell(out: &ScenarioOutcome) -> String {
    let tele = out.telemetry.as_ref().expect("telemetry was enabled");
    Phase::ALL
        .iter()
        .map(|&p| match tele.phases.get(p) {
            Some(s) if s.samples > 0 => s.p95_us.to_string(),
            _ => "-".to_string(),
        })
        .collect::<Vec<_>>()
        .join("/")
}

/// E19 — per-scenario deterministic counters, with the 1-vs-N-worker
/// counter identity asserted before anything is reported.
///
/// # Panics
///
/// Panics if any counter set differs between the 1-worker and the
/// `auto()`-worker run of the same job — that would mean a counter
/// leaked onto a parallel code path.
pub fn telemetry() -> Table {
    let specs = specs();
    let tuning = EngineTuning::DEFAULT.with_telemetry();
    let outcomes = SweepRunner::auto().run_matrix_with(&specs, &SEEDS, tuning);
    let sequential = SweepRunner::new(1).run_matrix_with(&specs, &SEEDS, tuning);
    for (a, b) in outcomes.iter().zip(&sequential) {
        assert_eq!(
            a.telemetry, b.telemetry,
            "{}#{}: counters depend on the worker count",
            a.scenario, a.seed
        );
    }

    let mut t = Table::new(
        "E19 telemetry: deterministic engine counters across catalog scenarios",
        &[
            "scenario",
            "seed",
            "rounds",
            "steady",
            "scatter",
            "reanchor",
            "churn",
            "receptions",
            "collisions",
            "adv checks",
            "timeouts",
            "audit ops",
            "phase p95 µs (adv/geo/fin/del/chk)",
        ],
    );
    for out in &outcomes {
        let c = out
            .telemetry
            .as_ref()
            .expect("telemetry was enabled")
            .counters;
        t.row(&[
            out.scenario.clone(),
            out.seed.to_string(),
            c.rounds_total.to_string(),
            c.rounds_steady.to_string(),
            c.rounds_scatter.to_string(),
            c.rounds_reanchor.to_string(),
            c.rounds_churn.to_string(),
            c.receptions.to_string(),
            c.collisions.to_string(),
            c.adversary_checks.to_string(),
            c.traffic_timeouts.to_string(),
            c.audit_ops.to_string(),
            phase_p95_cell(out),
        ]);
    }
    t.note("counters asserted identical between 1-worker and auto-worker sweeps before reporting");
    t.note("phase timings are wall-clock (µs, excluded from determinism); traffic workloads drive their own engine, so their round-mode counters stay 0");
    t.note("set VI_TRACE=out.json on any sweep to additionally export a Perfetto/Chrome trace of worker and job spans");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp_metropolis::metropolis_spec;
    use vi_telemetry::trace_export;

    /// The counter algebra of a pure-CHA run: the round-mode counters
    /// partition `rounds_total`, and the delivery counters mirror the
    /// channel stats.
    #[test]
    fn counters_reconcile_on_a_clique() {
        let spec = catalog::scenario("clique").expect("catalog name");
        let out = spec.run_with(1, EngineTuning::DEFAULT.with_telemetry());
        let c = out.telemetry.as_ref().expect("telemetry on").counters;
        assert_eq!(c.rounds_total, out.rounds, "every round is counted");
        assert_eq!(
            c.rounds_total,
            c.rounds_steady
                + c.rounds_scatter
                + c.rounds_reanchor
                + c.rounds_churn
                + c.rounds_legacy,
            "round modes partition the total"
        );
        assert!(c.receptions > 0, "a clique delivers messages");
        // Telemetry off: the field is absent and the rest identical.
        let plain = spec.run_with(1, EngineTuning::DEFAULT);
        assert!(plain.telemetry.is_none());
        let mut stripped = out.clone();
        stripped.telemetry = None;
        assert_eq!(stripped, plain, "telemetry must not perturb the run");
    }

    /// Satellite requirement: sweeps under tracing emit spans that
    /// round-trip through the Chrome trace-event format — every span
    /// carries `ts`/`dur`/`tid`, and each sweep worker contributes at
    /// least its lifetime span.
    #[test]
    fn sweep_trace_validates_as_chrome_trace_json() {
        trace_export::enable_tracing();
        let spec = catalog::scenario("clique").expect("catalog name");
        let workers = 2usize;
        let _ = SweepRunner::new(workers).run_matrix(&[spec], &[1, 2, 3, 4]);

        let dir = std::env::temp_dir().join("vi_bench_trace_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.json");
        let path_str = path.to_str().expect("utf-8 temp path");
        let written = trace_export::flush_to_path(path_str).expect("flush trace");
        assert!(written >= workers, "at least one span per sweep worker");

        // The Chrome trace format fixes the field name.
        #[derive(serde::Deserialize)]
        #[allow(non_snake_case)]
        struct TraceFileIn {
            traceEvents: Vec<trace_export::TraceEvent>,
        }
        let raw = std::fs::read_to_string(&path).expect("read trace");
        let parsed: TraceFileIn = serde_json::from_str(&raw).expect("trace must be valid JSON");
        let events = parsed.traceEvents;
        assert!(events.len() >= workers);
        for ev in &events {
            assert_eq!(ev.ph, "X", "complete events only");
            assert!(ev.dur > 0 || ev.ts > 0, "span has a timestamp: {ev:?}");
            assert!(!ev.name.is_empty() && !ev.cat.is_empty());
        }
        // One lifetime span per sweep worker, on distinct tid lanes.
        let worker_tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|ev| ev.name == "sweep-worker")
            .map(|ev| ev.tid)
            .collect();
        for tid in 0..workers as u64 {
            assert!(
                worker_tids.contains(&tid),
                "missing sweep-worker span on tid {tid}"
            );
        }
        // Per-job spans are named `scenario#seed` on the sweep pid.
        let job = events
            .iter()
            .find(|ev| ev.name == "clique#3")
            .expect("per-job span missing");
        assert_eq!(job.pid, trace_export::PID_SWEEP);
        std::fs::remove_file(&path).ok();
    }

    /// Acceptance guard, CI-release only: telemetry-on must stay
    /// within ~1.3x of telemetry-off on a metropolis-scale run — the
    /// counters are plain u64 bumps on the control path and the phase
    /// timers are five `Instant` reads per round, nothing more.
    ///
    /// (The telemetry-*off* regression guard against the pre-telemetry
    /// baseline is the existing E18 static-heavy ≥2x speedup test,
    /// which CI keeps running with telemetry off.)
    #[test]
    #[ignore = "wall-clock benchmark; CI runs it explicitly in release (telemetry smoke step)"]
    fn telemetry_on_overhead_is_bounded() {
        let spec = metropolis_spec("telemetry_overhead_5000", 5000, 0.02, 10);
        let run_ms = |tuning: EngineTuning| -> f64 {
            let t0 = std::time::Instant::now();
            let out = spec.run_with(1, tuning);
            t0.elapsed().as_secs_f64() * 1000.0 / out.rounds.max(1) as f64
        };
        let mut failure = String::new();
        for attempt in 0..3 {
            // Interleaved min-of-pairs: scheduler noise only inflates.
            let mut off_ms = f64::INFINITY;
            let mut on_ms = f64::INFINITY;
            for _ in 0..2 {
                off_ms = off_ms.min(run_ms(EngineTuning::with_workers(1)));
                on_ms = on_ms.min(run_ms(EngineTuning::with_workers(1).with_telemetry()));
            }
            let ratio = on_ms / off_ms.max(f64::MIN_POSITIVE);
            if ratio <= 1.3 {
                eprintln!(
                    "telemetry overhead n=5000: {off_ms:.3} -> {on_ms:.3} ms/round ({ratio:.2}x)"
                );
                return;
            }
            failure = format!(
                "attempt {attempt}: {off_ms:.3} -> {on_ms:.3} ms/round, {ratio:.2}x (want <= 1.3x)"
            );
        }
        panic!("telemetry overhead above 1.3x on every attempt; last: {failure}");
    }
}
