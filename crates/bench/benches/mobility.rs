//! Criterion benches for the mobility fast path: raw `advance` cost
//! per model (static vs waypoint vs billiard vs patrol), and engine
//! rounds on a static deployment with the settled-node fast path
//! against the legacy round path. Tracked alongside the channel
//! benches so the hot-path overhaul's mobility win stays visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use vi_radio::geometry::{Point, Rect};
use vi_radio::mobility::{Billiard, MobilityModel, PatrolRoute, Static, Waypoint};
use vi_radio::{Engine, EngineConfig, NodeSpec, Process, RadioConfig, RoundCtx, RoundReception};

const ROUNDS: u64 = 10_000;

fn advance_rounds(mut model: Box<dyn MobilityModel>) -> f64 {
    let mut rng = StdRng::seed_from_u64(7);
    let mut acc = 0.0;
    for round in 0..ROUNDS {
        acc += model.advance(round, &mut rng).x;
    }
    acc
}

/// Raw `advance` throughput per mobility model, 10k rounds per
/// iteration. `Static` is the settled baseline the engine's fast path
/// skips entirely.
fn mobility_advance(c: &mut Criterion) {
    let bounds = Rect::square(100.0);
    let start = Point::new(50.0, 50.0);
    let mut g = c.benchmark_group("mobility_advance_10k");
    g.sample_size(20);
    g.bench_with_input(BenchmarkId::from_parameter("static"), &(), |b, ()| {
        b.iter(|| advance_rounds(Box::new(Static::new(start))))
    });
    g.bench_with_input(BenchmarkId::from_parameter("waypoint"), &(), |b, ()| {
        b.iter(|| advance_rounds(Box::new(Waypoint::new(start, 0.5, bounds))))
    });
    g.bench_with_input(BenchmarkId::from_parameter("billiard"), &(), |b, ()| {
        b.iter(|| advance_rounds(Box::new(Billiard::new(start, (0.4, 0.3), bounds))))
    });
    g.bench_with_input(BenchmarkId::from_parameter("patrol"), &(), |b, ()| {
        b.iter(|| {
            advance_rounds(Box::new(PatrolRoute::new(
                vec![start, Point::new(60.0, 50.0), Point::new(55.0, 60.0)],
                0.5,
            )))
        })
    });
    g.finish();
}

/// Broadcasts every third round, listens otherwise; never allocates.
struct Chatty(u64);

impl Process<u64> for Chatty {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<u64> {
        (ctx.round + self.0).is_multiple_of(3).then_some(self.0)
    }
    fn deliver(&mut self, _ctx: &RoundCtx, _rx: RoundReception<'_, u64>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn static_engine(n: usize, legacy: bool) -> Engine<u64> {
    let side = (n as f64).sqrt() * 15.0;
    let mut engine: Engine<u64> = Engine::new(EngineConfig {
        radio: RadioConfig::reliable(10.0, 20.0),
        seed: 1,
        record_trace: false,
    });
    engine.set_legacy_round_path(legacy);
    for i in 0..n {
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let x = (h % 10_000) as f64 / 10_000.0 * side;
        let y = ((h >> 32) % 10_000) as f64 / 10_000.0 * side;
        engine.add_node(NodeSpec::new(
            Box::new(Static::new(Point::new(x, y))),
            Box::new(Chatty(i as u64)),
        ));
    }
    engine
}

/// 50 engine rounds over an all-static constant-density deployment:
/// the settled-node fast path (cached neighborhoods, zero-alloc SoA
/// rounds) against the legacy per-round-rebuild path.
fn static_rounds_fast_vs_legacy(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_static_50_rounds");
    g.sample_size(10);
    for n in [1000usize, 5000] {
        g.bench_with_input(BenchmarkId::new("fast", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = static_engine(n, false);
                e.run(50);
                e.stats().deliveries
            })
        });
        g.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = static_engine(n, true);
                e.run(50);
                e.stats().deliveries
            })
        });
    }
    g.finish();
}

criterion_group!(benches, mobility_advance, static_rounds_fast_vs_legacy);
criterion_main!(benches);
