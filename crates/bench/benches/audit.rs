//! Criterion bench for the WGL linearizability checker hot path: a
//! full memoized search over legal histories of 1k and 10k operations
//! (the dancing-links frontier keeps each visited node O(width), so
//! the happy path stays near-linear in history length).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vi_audit::{check_register, synthetic_history, LinResult};

fn wgl_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("audit_wgl_check");
    g.sample_size(10);
    for n in [1_000usize, 10_000] {
        let ops = synthetic_history(n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ops, |b, ops| {
            b.iter(|| {
                let verdict = check_register(criterion::black_box(ops));
                assert!(matches!(verdict, LinResult::Ok), "bench history is legal");
                verdict
            })
        });
    }
    g.finish();
}

fn wgl_witness_minimization(c: &mut Criterion) {
    // A failing history: legal 1k-op prefix plus a stale-read pair —
    // the witness search must shrink it to the contradiction.
    let mut ops = synthetic_history(1_000, 11);
    let t = ops.last().map(|o| o.inv + 100).unwrap_or(0);
    ops.push(vi_audit::RegOp {
        id: 999_990,
        kind: vi_audit::RegOpKind::Write { value: 7 },
        inv: t,
        ret: t + 2,
    });
    ops.push(vi_audit::RegOp {
        id: 999_991,
        kind: vi_audit::RegOpKind::Read { returned: 0 },
        inv: t + 5,
        ret: t + 6,
    });
    let mut g = c.benchmark_group("audit_wgl_witness");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter(ops.len()), |b| {
        b.iter(|| {
            let verdict = check_register(criterion::black_box(&ops));
            assert!(matches!(verdict, LinResult::Violation { .. }));
            verdict
        })
    });
    g.finish();
}

criterion_group!(benches, wgl_check, wgl_witness_minimization);
criterion_main!(benches);
