//! Criterion benches for the traffic metrics hot path: histogram
//! record and merge — the per-request cost of the streaming metrics
//! pipeline (must stay allocation-free and branch-cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vi_traffic::LatencyHistogram;

fn histogram_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic_histogram_record");
    g.sample_size(40);
    for n in [1_000u64, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut h = LatencyHistogram::new();
                // A latency-like stream: mostly small with a heavy tail.
                for i in 0..n {
                    let v = (i % 13) + ((i % 97) * (i % 97)) / 13;
                    h.record(criterion::black_box(v));
                }
                h.count()
            })
        });
    }
    g.finish();
}

fn histogram_merge(c: &mut Criterion) {
    // Shards as a sweep would produce them: per-job histograms merged
    // in job order.
    let shards: Vec<LatencyHistogram> = (0..64u64)
        .map(|s| {
            let mut h = LatencyHistogram::new();
            for i in 0..1_000u64 {
                h.record((i * (s + 1)) % 4_096);
            }
            h
        })
        .collect();
    let mut g = c.benchmark_group("traffic_histogram_merge");
    g.sample_size(40);
    g.bench_function(BenchmarkId::from_parameter(shards.len()), |b| {
        b.iter(|| {
            let mut all = LatencyHistogram::new();
            for s in &shards {
                all.merge(criterion::black_box(s));
            }
            all.count()
        })
    });
    g.finish();
}

criterion_group!(benches, histogram_record, histogram_merge);
criterion_main!(benches);
