//! Criterion benches for the radio substrate: channel-resolution
//! throughput as the node population grows (the simulator's own
//! scalability, independent of any protocol).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::any::Any;
use vi_radio::geometry::{Point, Rect};
use vi_radio::mobility::Waypoint;
use vi_radio::{Engine, EngineConfig, NodeSpec, Process, RadioConfig, RoundCtx, RoundReception};

/// Broadcasts every third round, listens otherwise.
struct Chatty {
    phase: u64,
}

impl Process<u64> for Chatty {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<u64> {
        (ctx.round + self.phase)
            .is_multiple_of(3)
            .then_some(ctx.round)
    }
    fn deliver(&mut self, _ctx: &RoundCtx, _rx: RoundReception<'_, u64>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn rounds_by_population(c: &mut Criterion) {
    let mut g = c.benchmark_group("radio_100_rounds");
    g.sample_size(20);
    for n in [10usize, 100, 300] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut engine: Engine<u64> = Engine::new(EngineConfig {
                    radio: RadioConfig::reliable(10.0, 20.0),
                    seed: 1,
                    record_trace: false,
                });
                for i in 0..n {
                    let x = (i % 20) as f64 * 10.0;
                    let y = (i / 20) as f64 * 10.0;
                    engine.add_node(NodeSpec::new(
                        Box::new(Waypoint::new(
                            Point::new(x, y),
                            0.5,
                            Rect::new(Point::ORIGIN, Point::new(200.0, 200.0)),
                        )),
                        Box::new(Chatty { phase: i as u64 }),
                    ));
                }
                engine.run(100);
                engine.stats().deliveries
            })
        });
    }
    g.finish();
}

/// Channel-resolution scaling: the grid-indexed `Medium` vs the naive
/// reference resolver on identical constant-density inputs (the
/// acceptance benchmark for the spatial-index refactor).
fn medium_vs_reference(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vi_bench::exp_radio::{make_intents, radio};
    use vi_radio::adversary::NoAdversary;
    use vi_radio::channel::{resolve_round_reference, Medium};

    let mut g = c.benchmark_group("radio_scale_medium");
    g.sample_size(10);
    for n in [500usize, 1000, 2000, 5000] {
        let intents = make_intents(n, 42);
        let mut medium = Medium::new(radio());
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                medium.resolve_into(0, &intents, &mut NoAdversary, &mut rng, &mut out);
                out.len()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("radio_scale_reference");
    g.sample_size(10);
    for n in [500usize, 1000, 2000, 5000] {
        let intents = make_intents(n, 42);
        let cfg = radio();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| resolve_round_reference(0, &cfg, &intents, &mut NoAdversary, &mut rng).len())
        });
    }
    g.finish();
}

criterion_group!(benches, rounds_by_population, medium_vs_reference);
criterion_main!(benches);
