//! Criterion benches for the CHA protocol and its baselines.
//!
//! Timing complements the round/byte counting of the `repro` tables:
//! `chap_instances` shows that simulated cost per instance is flat in
//! `n` (Theorem 14), `full_history` shows the naïve baseline's
//! super-linear total cost in execution length, and `majority` the
//! Θ(n) window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vi_baselines::{FullHistoryMessage, FullHistoryNode, MajorityConsensus, MajorityMessage};
use vi_bench::harness::{run_clique, CliqueConfig};
use vi_contention::{OracleCm, SharedCm};
use vi_core::cha::TaggedProposer;
use vi_radio::geometry::Point;
use vi_radio::mobility::Static;
use vi_radio::{Engine, EngineConfig, NodeSpec, RadioConfig};

fn chap_instances(c: &mut Criterion) {
    let mut g = c.benchmark_group("chap_50_instances");
    for n in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run_clique(CliqueConfig::reliable(n, 50, 9)))
        });
    }
    g.finish();
}

fn full_history(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_history_instances");
    g.sample_size(20);
    for k in [100u64, 1_000] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut engine: Engine<FullHistoryMessage<u64>> = Engine::new(EngineConfig {
                    radio: RadioConfig::reliable(10.0, 20.0),
                    seed: 9,
                    record_trace: false,
                });
                let cm = SharedCm::new(OracleCm::perfect());
                for i in 0..3u64 {
                    engine.add_node(NodeSpec::new(
                        Box::new(Static::new(Point::new(i as f64 * 0.2, 0.0))),
                        Box::new(FullHistoryNode::new(
                            Box::new(TaggedProposer::new(i)),
                            cm.clone(),
                        )),
                    ));
                }
                engine.run(k);
                engine.stats().total_bytes
            })
        });
    }
    g.finish();
}

fn majority(c: &mut Criterion) {
    let mut g = c.benchmark_group("majority_20_decisions");
    for n in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut engine: Engine<MajorityMessage<u64>> = Engine::new(EngineConfig {
                    radio: RadioConfig::reliable(20.0, 40.0),
                    seed: 9,
                    record_trace: false,
                });
                for i in 0..n {
                    engine.add_node(NodeSpec::new(
                        Box::new(Static::new(Point::new(i as f64 * 0.1, 0.0))),
                        Box::new(MajorityConsensus::<u64>::new(i, n, Box::new(|k| k))),
                    ));
                }
                engine.run(20 * MajorityConsensus::<u64>::window(n));
            })
        });
    }
    g.finish();
}

criterion_group!(benches, chap_instances, full_history, majority);
criterion_main!(benches);
