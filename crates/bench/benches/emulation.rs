//! Criterion benches for the full virtual-infrastructure emulation.
//!
//! Wall-clock per simulated virtual round, swept over device count
//! (must stay near-flat: the protocol work per round is constant, only
//! channel resolution grows) and over deployment size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vi_core::vi::{CounterAutomaton, VnLayout, World, WorldConfig};
use vi_radio::geometry::Point;
use vi_radio::mobility::Static;
use vi_radio::RadioConfig;

fn world_with(devices_per_vn: usize, rows: usize, cols: usize) -> World<CounterAutomaton> {
    let layout = VnLayout::grid(rows, cols, 60.0, Point::new(50.0, 50.0), 2.5);
    let locations: Vec<Point> = layout.iter().map(|(_, p)| p).collect();
    let mut world = World::new(WorldConfig {
        radio: RadioConfig::reliable(10.0, 20.0),
        layout,
        automaton: CounterAutomaton,
        seed: 3,
        record_trace: false,
    });
    for loc in locations {
        for d in 0..devices_per_vn {
            let off = 0.3 + 0.1 * d as f64;
            world.add_device(Box::new(Static::new(Point::new(loc.x + off, loc.y))), None);
        }
    }
    world
}

fn virtual_rounds_vs_devices(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulation_10_vrs_by_devices");
    for devs in [3usize, 10, 30] {
        g.bench_with_input(BenchmarkId::from_parameter(devs), &devs, |b, &devs| {
            b.iter(|| {
                let mut world = world_with(devs, 1, 1);
                world.run_virtual_rounds(10);
                *world.stats()
            })
        });
    }
    g.finish();
}

fn virtual_rounds_vs_vns(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulation_10_vrs_by_vns");
    g.sample_size(20);
    for (rows, cols) in [(1usize, 1usize), (2, 2), (3, 3)] {
        let vns = rows * cols;
        g.bench_with_input(BenchmarkId::from_parameter(vns), &vns, |b, _| {
            b.iter(|| {
                let mut world = world_with(3, rows, cols);
                world.run_virtual_rounds(10);
                *world.stats()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, virtual_rounds_vs_devices, virtual_rounds_vs_vns);
criterion_main!(benches);
