//! The library of named scenarios.
//!
//! Each scenario is a ready-to-run [`ScenarioSpec`] covering one of
//! the execution regimes the paper argues about. The E15
//! `scenario_matrix` experiment sweeps all of them across seeds; any
//! of them can also serve as a template — serialize one to JSON, edit
//! it, and load it back (see `examples/scenarios.json`).

use crate::spec::{
    CmSpec, LayoutSpec, MobilitySpec, PlacementSpec, PopulationSpec, ScenarioSpec, WorkloadSpec,
};
use vi_audit::{NemesisFault, NemesisSpec};
use vi_contention::PreStability;
use vi_radio::geometry::{Point, Rect};
use vi_radio::{AdversaryKind, RadioConfig};
use vi_traffic::{AppKind, LoadMode, RatePhase, TrafficSpec};

const R1: f64 = 10.0;
const R2: f64 = 20.0;
const REGION: f64 = 2.5;

fn line(n: usize) -> PopulationSpec {
    PopulationSpec::fixed(
        n,
        PlacementSpec::Line {
            start: Point::ORIGIN,
            step_x: 0.1,
            step_y: 0.0,
        },
    )
}

fn cluster(n: usize, center: Point) -> PopulationSpec {
    PopulationSpec::fixed(
        n,
        PlacementSpec::Cluster {
            center,
            radius: 0.4,
        },
    )
}

/// `clique` — the paper's base case: a reliable single region, perfect
/// contention manager, CHA deciding every instance.
fn clique() -> ScenarioSpec {
    ScenarioSpec {
        name: "clique".into(),
        arena: Rect::square(10.0),
        radio: RadioConfig::reliable(R1, R2),
        populations: vec![line(5)],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::ChaClique { instances: 30 },
    }
}

/// `sparse_grid` — a 2×2 virtual-node grid with static device
/// clusters, measuring emulation overhead on a quiet network.
fn sparse_grid() -> ScenarioSpec {
    let origin = Point::new(50.0, 50.0);
    let spacing = 60.0;
    let locations: Vec<Point> = (0..2)
        .flat_map(|r| {
            (0..2).map(move |c| {
                Point::new(origin.x + c as f64 * spacing, origin.y + r as f64 * spacing)
            })
        })
        .collect();
    ScenarioSpec {
        name: "sparse_grid".into(),
        arena: Rect::square(200.0),
        radio: RadioConfig::reliable(R1, R2),
        populations: locations.iter().map(|&loc| cluster(3, loc)).collect(),
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::ViCounter {
            layout: LayoutSpec::Grid {
                rows: 2,
                cols: 2,
                spacing,
                origin,
                region_radius: REGION,
            },
            virtual_rounds: 8,
        },
    }
}

/// `flash_crowd` — a small core joined by a staggered arrival wave on
/// a still-misbehaving channel (ad hoc deployment, Section 1).
fn flash_crowd() -> ScenarioSpec {
    ScenarioSpec {
        name: "flash_crowd".into(),
        arena: Rect::square(10.0),
        radio: RadioConfig::stabilizing(R1, R2, 60),
        populations: vec![
            line(3),
            PopulationSpec::fixed(
                6,
                PlacementSpec::Line {
                    start: Point::new(0.3, 0.0),
                    step_x: 0.1,
                    step_y: 0.0,
                },
            )
            .spawning(30, 6),
        ],
        adversary: AdversaryKind::Random(0.3, 0.1),
        nemesis: NemesisSpec::none(),
        cm: CmSpec::Oracle {
            stabilize_at: 60,
            pre: PreStability::Random(0.5),
        },
        workload: WorkloadSpec::ChaClique { instances: 40 },
    }
}

/// `partition_heal` — the paper's "alternating periods of stability
/// and instability": total-loss bursts before `rcf`, then the channel
/// heals and liveness resumes with O(1) lag (Theorem 12).
fn partition_heal() -> ScenarioSpec {
    ScenarioSpec {
        name: "partition_heal".into(),
        arena: Rect::square(10.0),
        radio: RadioConfig::stabilizing(R1, R2, 120),
        populations: vec![line(5)],
        adversary: AdversaryKind::Burst(vec![30..60, 90..120]),
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::ChaClique { instances: 50 },
    }
}

/// `robot_patrol` — robots patrolling a fixed circuit through two
/// virtual-node regions while static anchors keep both regions alive.
fn robot_patrol() -> ScenarioSpec {
    let a = Point::new(50.0, 50.0);
    let b = Point::new(70.0, 50.0);
    ScenarioSpec {
        name: "robot_patrol".into(),
        arena: Rect::square(120.0),
        radio: RadioConfig::reliable(R1, R2),
        populations: vec![
            cluster(2, a),
            cluster(2, b),
            PopulationSpec::fixed(3, PlacementSpec::Uniform).with_mobility(
                MobilitySpec::PatrolRoute {
                    route: vec![a, b, Point::new(60.0, 60.0)],
                    speed: 1.0,
                },
            ),
        ],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::ViCounter {
            layout: LayoutSpec::Explicit {
                locations: vec![a, b],
                region_radius: REGION,
            },
            virtual_rounds: 10,
        },
    }
}

/// `commuter_wave` — churn at a single virtual node: anchored
/// replicas plus commuter populations that depart in scripted waves
/// (the Section 4.2 availability regime).
fn commuter_wave() -> ScenarioSpec {
    let vn = Point::new(50.0, 50.0);
    let commuters = |depart_at: u64| {
        cluster(4, vn).with_mobility(MobilitySpec::DepartAt {
            dir_x: 1.0,
            dir_y: 0.3,
            speed: 0.5,
            depart_at,
        })
    };
    ScenarioSpec {
        name: "commuter_wave".into(),
        arena: Rect::square(200.0),
        radio: RadioConfig::reliable(R1, R2),
        populations: vec![cluster(2, vn), commuters(40), commuters(80)],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::ViCounter {
            layout: LayoutSpec::Explicit {
                locations: vec![vn],
                region_radius: REGION,
            },
            virtual_rounds: 12,
        },
    }
}

/// `broken_detector` — the E13 ablation as a scenario: a detector
/// that violates completeness (Property 1), demonstrating why the
/// guarantee is load-bearing.
fn broken_detector() -> ScenarioSpec {
    ScenarioSpec {
        name: "broken_detector".into(),
        arena: Rect::square(10.0),
        radio: RadioConfig::stabilizing(R1, R2, u64::MAX),
        populations: vec![line(4)],
        adversary: AdversaryKind::BrokenDetector {
            drop_p: 0.35,
            miss_p: 0.7,
        },
        nemesis: NemesisSpec::none(),
        cm: CmSpec::Oracle {
            stabilize_at: u64::MAX,
            pre: PreStability::Random(0.5),
        },
        workload: WorkloadSpec::ChaClique { instances: 40 },
    }
}

/// `broken_majority` — the majority-acked register with quorum-free
/// local reads, partitioned so the bug fires: from round 6 the last
/// replica is cut off while the leader keeps completing writes with
/// the remaining majority, so the cut replica's local reads go stale
/// and the WGL audit reports a **deterministic linearizability
/// violation**. The incident-bundle pipeline (flight recorder, causal
/// slice, `vi-bench --replay`) is exercised against this scenario.
fn broken_majority() -> ScenarioSpec {
    ScenarioSpec {
        name: "broken_majority".into(),
        arena: Rect::square(10.0),
        radio: RadioConfig::stabilizing(R1, R2, u64::MAX),
        populations: vec![PopulationSpec::fixed(
            4,
            PlacementSpec::Line {
                start: Point::ORIGIN,
                step_x: 0.2,
                step_y: 0.0,
            },
        )],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::MajorityRegister {
            writes: 8,
            rounds: 24,
            partition_from: Some(6),
        },
    }
}

/// `city_scale` — 2000 nodes (a quarter of them mobile) at constant
/// density across a ~670 m square: the throughput regime the
/// spatially-indexed medium exists for.
fn city_scale() -> ScenarioSpec {
    let side = (2000.0f64).sqrt() * 15.0;
    ScenarioSpec {
        name: "city_scale".into(),
        arena: Rect::square(side),
        radio: RadioConfig::reliable(R1, R2),
        populations: vec![
            PopulationSpec::fixed(1500, PlacementSpec::Uniform),
            PopulationSpec::fixed(500, PlacementSpec::Uniform)
                .with_mobility(MobilitySpec::Waypoint { speed: 0.5 }),
        ],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::ChaClique { instances: 4 },
    }
}

/// `mall_rush` — a flash crowd hammering the register: four anchored
/// clients under an open-loop schedule that bursts to the service
/// capacity mid-run, while an arrival wave of extra devices churns
/// the region. The latency histogram shows the queue build-up and
/// drain.
fn mall_rush() -> ScenarioSpec {
    let vn = Point::new(50.0, 50.0);
    ScenarioSpec {
        name: "mall_rush".into(),
        arena: Rect::square(100.0),
        radio: RadioConfig::reliable(R1, R2),
        populations: vec![
            // Clients first: deployment order assigns the ports.
            cluster(4, vn),
            // Replica anchors.
            cluster(2, vn),
            // The rush: extra devices joining the region mid-run.
            PopulationSpec::fixed(
                6,
                PlacementSpec::Cluster {
                    center: vn,
                    radius: 0.8,
                },
            )
            .spawning(200, 40),
        ],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::Traffic {
            app: AppKind::Register,
            layout: LayoutSpec::Explicit {
                locations: vec![vn],
                region_radius: REGION,
            },
            traffic: TrafficSpec {
                clients: 4,
                mode: LoadMode::Open {
                    rate_per_round: 0.25,
                    phases: vec![
                        RatePhase {
                            from_vr: 20,
                            rate_per_round: 1.0,
                        },
                        RatePhase {
                            from_vr: 40,
                            rate_per_round: 0.25,
                        },
                    ],
                },
                query_fraction: 0.5,
                timeout_rounds: 30,
                virtual_rounds: 60,
            },
            audit: false,
        },
    }
}

/// `courier_fleet` — mobile couriers streaming tracking updates: a
/// closed loop of position reports and lookups from waypoint-moving
/// clients, against two anchored virtual-node regions.
fn courier_fleet() -> ScenarioSpec {
    let a = Point::new(50.0, 50.0);
    let b = Point::new(110.0, 50.0);
    ScenarioSpec {
        name: "courier_fleet".into(),
        arena: Rect::square(160.0),
        radio: RadioConfig::reliable(R1, R2),
        populations: vec![
            // The couriers (clients) roam the arena.
            PopulationSpec::fixed(
                4,
                PlacementSpec::Cluster {
                    center: a,
                    radius: 2.0,
                },
            )
            .with_mobility(MobilitySpec::Waypoint { speed: 0.4 }),
            // Anchors keep both regions alive.
            cluster(2, a),
            cluster(2, b),
        ],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::Traffic {
            app: AppKind::Tracking,
            layout: LayoutSpec::Explicit {
                locations: vec![a, b],
                region_radius: REGION,
            },
            traffic: TrafficSpec {
                clients: 4,
                mode: LoadMode::Closed {
                    outstanding_per_client: 1,
                    think_rounds: 2,
                },
                query_fraction: 0.3,
                timeout_rounds: 25,
                virtual_rounds: 50,
            },
            audit: false,
        },
    }
}

/// `blackout_market` — the register **audited** through a Jepsen-style
/// nemesis schedule: a mid-run total radio blackout (requests retry or
/// time out; timed-out ops are `:info`, maybe-applied), then a replica
/// crash burst after the channel heals. The linearizability checker
/// certifies that whatever completed is an atomic register — the
/// blackout may cost liveness, never consistency. (Traffic runs ~13
/// real rounds per virtual round: the jam covers ≈ vr 20–30 of the
/// 40-round admission window, inside the radio's `rcf = 400`.)
fn blackout_market() -> ScenarioSpec {
    let vn = Point::new(50.0, 50.0);
    ScenarioSpec {
        name: "blackout_market".into(),
        arena: Rect::square(100.0),
        radio: RadioConfig::stabilizing(R1, R2, 400),
        populations: vec![
            // Clients first: deployment order assigns the ports (and
            // shields them from the crash burst, which takes victims
            // from the deployment tail).
            cluster(3, vn),
            // Replica anchors — the crash burst's victims.
            cluster(4, vn),
        ],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec {
            faults: vec![
                NemesisFault::Jam { window: 260..390 },
                NemesisFault::CrashBurst {
                    at_round: 520,
                    victims: 2,
                },
            ],
        },
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::Traffic {
            app: AppKind::Register,
            layout: LayoutSpec::Explicit {
                locations: vec![vn],
                region_radius: REGION,
            },
            traffic: TrafficSpec {
                clients: 3,
                mode: LoadMode::Open {
                    rate_per_round: 0.3,
                    phases: vec![],
                },
                query_fraction: 0.5,
                timeout_rounds: 30,
                virtual_rounds: 40,
            },
            audit: true,
        },
    }
}

/// `quake_drill` — the tracking service **audited** under detector
/// corruption and infrastructure loss: collision detectors lie for a
/// third of the run (partition-style corruption window), then half the
/// anchor replicas crash, while patrol clients keep streaming position
/// reports and lookups. The monotone-freshness checker certifies that
/// lookups never travel back in time through an object's report
/// sequence.
fn quake_drill() -> ScenarioSpec {
    let vn = Point::new(25.0, 25.0);
    ScenarioSpec {
        name: "quake_drill".into(),
        arena: Rect::square(50.0),
        radio: RadioConfig::stabilizing(R1, R2, 400),
        populations: vec![
            // Patrol clients circle the virtual node, crossing
            // tracking cells while staying in broadcast range.
            PopulationSpec::fixed(3, PlacementSpec::Uniform).with_mobility(
                MobilitySpec::PatrolRoute {
                    route: vec![
                        Point::new(25.0, 20.0),
                        Point::new(30.0, 25.0),
                        Point::new(25.0, 30.0),
                        Point::new(20.0, 25.0),
                    ],
                    speed: 0.5,
                },
            ),
            // Anchor replicas — two fall to the crash burst.
            cluster(4, vn),
        ],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec {
            faults: vec![
                NemesisFault::DetectorChaos {
                    window: 130..390,
                    spurious_p: 0.25,
                },
                NemesisFault::CrashBurst {
                    at_round: 390,
                    victims: 2,
                },
            ],
        },
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::Traffic {
            app: AppKind::Tracking,
            layout: LayoutSpec::Explicit {
                locations: vec![vn],
                region_radius: REGION,
            },
            traffic: TrafficSpec {
                clients: 3,
                mode: LoadMode::Closed {
                    outstanding_per_client: 1,
                    think_rounds: 2,
                },
                query_fraction: 0.4,
                timeout_rounds: 25,
                virtual_rounds: 40,
            },
            audit: true,
        },
    }
}

/// `fuzz_scatter_clique` — **promoted from a vi-fuzz finding**: the
/// E22 campaign (seed 5) mutated the clean `fuzz_cha` ancestor's
/// placement to `Uniform` (mobility mutator, iteration 121) and the
/// CHA safety checker fired under run seed 2384762200; delta
/// debugging shrank it to 3 scattered nodes running a single
/// instance. The bug it demonstrates: CHA assumes a single-hop clique,
/// and uniform placement over a 20 m² arena with `r2 = 20` can seat
/// nodes out of mutual range, splitting the "clique" into
/// independently-deciding fragments that disagree. Scenario-level
/// validation cannot catch this (placement is seed-dependent), which
/// is exactly why the fuzzer owns this regime.
fn fuzz_scatter_clique() -> ScenarioSpec {
    ScenarioSpec {
        name: "fuzz_scatter_clique".into(),
        arena: Rect::square(20.0),
        radio: RadioConfig::reliable(R1, R2),
        populations: vec![PopulationSpec::fixed(3, PlacementSpec::Uniform)],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::ChaClique { instances: 1 },
    }
}

/// `fuzz_split_quorum` — **promoted from a vi-fuzz finding**: the E22
/// campaign (seed 5) rediscovered the `broken_majority` bug *without*
/// the scripted partition — a placement mutation (iteration 138, run
/// seed 199129263) scattered the replicas, and delta debugging shrank
/// the repro to 2 uniformly-placed nodes, a single write, 6 rounds,
/// `partition_from: None`. Same root cause as `broken_majority`
/// (quorum-free local reads go stale on a disconnected replica), but
/// reached through geometry instead of a nemesis schedule: with 2
/// replicas out of mutual range, the writer self-acks a "majority" of
/// its own partition while the other replica's reads serve the stale
/// initial value.
fn fuzz_split_quorum() -> ScenarioSpec {
    ScenarioSpec {
        name: "fuzz_split_quorum".into(),
        arena: Rect::square(20.0),
        radio: RadioConfig::reliable(R1, R2),
        populations: vec![PopulationSpec::fixed(2, PlacementSpec::Uniform)],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload: WorkloadSpec::MajorityRegister {
            writes: 1,
            rounds: 6,
            partition_from: None,
        },
    }
}

/// All named scenarios, in catalog order.
pub fn catalog() -> Vec<ScenarioSpec> {
    vec![
        clique(),
        sparse_grid(),
        flash_crowd(),
        partition_heal(),
        robot_patrol(),
        commuter_wave(),
        broken_detector(),
        broken_majority(),
        city_scale(),
        mall_rush(),
        courier_fleet(),
        blackout_market(),
        quake_drill(),
        fuzz_scatter_clique(),
        fuzz_split_quorum(),
    ]
}

/// Looks up a named scenario from the catalog.
pub fn scenario(name: &str) -> Option<ScenarioSpec> {
    catalog().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_scenario_validates_and_round_trips() {
        let all = catalog();
        assert!(all.len() >= 12, "catalog must stay ≥ 12 scenarios");
        for spec in &all {
            spec.validate().expect("catalog scenario must be valid");
            let json = serde_json::to_string(spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, spec, "{} JSON round-trip", spec.name);
        }
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "names must be unique");
    }

    #[test]
    fn lookup_by_name() {
        assert!(scenario("clique").is_some());
        assert!(scenario("city_scale").is_some());
        assert!(scenario("nope").is_none());
    }

    #[test]
    fn partition_heal_stabilizes_late_but_safely() {
        let out = scenario("partition_heal").unwrap().run(1);
        assert_eq!(out.safety_violations(), 0);
        let kst = out.stabilized_kst.expect("must converge after healing");
        assert!(kst > 30, "bursts must delay stabilization (kst {kst})");
    }

    #[test]
    fn mall_rush_burst_shows_in_the_latency_tail() {
        let out = scenario("mall_rush").unwrap().run(1);
        let t = out.traffic.as_ref().expect("traffic summary");
        assert!(t.issued >= 30, "burst admits plenty of requests: {t:?}");
        assert!(t.completed > 0, "{t:?}");
        assert!(t.p99 >= t.p50, "burst shows up as a latency tail: {t:?}");
    }

    #[test]
    fn courier_fleet_streams_updates() {
        let out = scenario("courier_fleet").unwrap().run(2);
        let t = out.traffic.as_ref().expect("traffic summary");
        assert_eq!(t.app, "tracking");
        assert_eq!(t.mode, "closed");
        assert!(t.completed > 10, "couriers stream updates: {t:?}");
    }

    #[test]
    fn blackout_market_audits_clean_and_jam_hurts() {
        let out = scenario("blackout_market").unwrap().run(1);
        let report = out.audit.as_ref().expect("audited scenario");
        assert!(report.ok(), "{:?}", report.violations());
        assert_eq!(report.app, "register");
        let t = out.traffic.as_ref().expect("traffic summary");
        assert!(t.completed > 0, "service recovers after the jam: {t:?}");
        assert!(
            t.timed_out > 0 || t.p99 > t.p50,
            "the blackout must show up in timeouts or tail latency: {t:?}"
        );
    }

    #[test]
    fn quake_drill_audits_clean_under_chaos() {
        let out = scenario("quake_drill").unwrap().run(2);
        let report = out.audit.as_ref().expect("audited scenario");
        assert!(report.ok(), "{:?}", report.violations());
        assert_eq!(report.app, "tracking");
        assert!(report.ops > 0);
        let t = out.traffic.as_ref().expect("traffic summary");
        assert!(t.completed > 0, "{t:?}");
    }

    #[test]
    fn broken_majority_violates_and_dumps_an_incident_bundle() {
        use crate::compile::EngineTuning;
        let spec = scenario("broken_majority").unwrap();
        // Plain run: the audit catches the stale reads, no bundle.
        let plain = spec.run(1);
        let report = plain.audit.as_ref().expect("always audited");
        assert!(!report.ok(), "the partition must expose the bug");
        assert_eq!(report.app, "majority_register");
        assert!(plain.incident.is_none(), "no flight recorder, no bundle");
        // Traced + flight-recorded run: same verdict, plus a bundle
        // carrying the retained window and the causal summary.
        let tuned = spec.run_with(1, EngineTuning::DEFAULT.with_tracing().with_flight(6));
        assert_eq!(tuned.audit, plain.audit, "tracing is zero-perturbation");
        assert_eq!(tuned.broadcasts, plain.broadcasts);
        assert_eq!(tuned.deliveries, plain.deliveries);
        let bundle = tuned.incident.as_ref().expect("violation dumps a bundle");
        assert_eq!(bundle.flight.len(), 6, "window retains the last 6 rounds");
        assert!(bundle.causal.is_some(), "causal summary rides along");
    }

    /// The promoted fuzz findings reproduce under their discovery
    /// seeds: the scattered clique violates CHA safety, the split
    /// quorum fails the WGL audit — and both are clean little specs
    /// that scenario validation rightly accepts.
    #[test]
    fn promoted_fuzz_findings_reproduce_under_their_discovery_seeds() {
        let scatter = scenario("fuzz_scatter_clique").unwrap();
        let out = scatter.run(2384762200);
        assert!(
            out.safety_violations() > 0,
            "fuzz_scatter_clique must reproduce its CHA safety violation"
        );

        let split = scenario("fuzz_split_quorum").unwrap();
        let out = split.run(199129263);
        let report = out.audit.as_ref().expect("majority register is audited");
        assert!(
            !report.ok(),
            "fuzz_split_quorum must reproduce its linearizability violation"
        );
        assert_eq!(report.app, "majority_register");
    }

    #[test]
    fn clique_is_all_green() {
        let out = scenario("clique").unwrap().run(2);
        assert!(out.decided_fraction > 0.9);
        assert_eq!(out.safety_violations(), 0);
    }
}
