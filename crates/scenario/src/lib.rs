//! # vi-scenario
//!
//! Declarative scenario descriptions for the collision-prone wireless
//! simulator, plus a deterministic parallel sweep runner.
//!
//! The paper's claims quantify over *executions*: adversary bursts
//! before `rcf`/`racc`, churn, mobility, contention misbehaviour.
//! Instead of hand-assembling each such execution in Rust, this crate
//! turns a full deployment into **data**:
//!
//! * [`ScenarioSpec`] (module [`spec`]) — a serde-(de)serializable
//!   description of arena, radio parameters, node populations
//!   (placement, mobility, churn windows), channel adversary,
//!   contention manager, and workload. Round-trips through JSON via
//!   the workspace `serde_json`.
//! * The **compiler** (module [`compile`]) — [`ScenarioSpec::run`]
//!   builds the corresponding [`vi_radio::Engine`] or
//!   [`vi_core::vi::World`], executes it, and extracts a uniform
//!   [`ScenarioOutcome`] row (channel statistics, CHA spec-checker
//!   verdicts, measured stabilization; traffic workloads additionally
//!   carry a [`vi_traffic::TrafficSummary`] with latency quantiles).
//! * [`SweepRunner`] (module [`runner`]) — fans a `scenario × seed`
//!   matrix across `std::thread` workers. Every run owns its engine
//!   (specs are plain data, so jobs are `Send` by construction) and
//!   result ordering is by job index, independent of worker count:
//!   the same matrix yields byte-identical outcome tables with 1 or
//!   N workers.
//! * The **catalog** (module [`catalog`]) — named, ready-to-run
//!   scenarios covering the regimes the paper argues about, from a
//!   single reliable clique to a city-scale deployment.
//!
//! ## Example
//!
//! ```
//! use vi_scenario::{catalog, SweepRunner};
//!
//! let clique = catalog::scenario("clique").expect("named scenario");
//! let outcomes = SweepRunner::new(2).run_matrix(&[clique], &[1, 2]);
//! assert_eq!(outcomes.len(), 2);
//! assert!(outcomes.iter().all(|o| o.safety_violations() == 0));
//! ```

pub mod catalog;
pub mod compile;
pub mod incident;
pub mod runner;
pub mod spec;

pub use compile::{EngineTuning, ScenarioOutcome};
pub use incident::{IncidentBundle, IncidentReason, BUNDLE_VERSION};
pub use runner::SweepRunner;
pub use spec::{
    CmSpec, LayoutSpec, MobilitySpec, PlacementSpec, PopulationSpec, ScenarioSpec, SpecError,
    SpecErrorKind, WorkloadSpec,
};
pub use vi_audit::{AuditReport, NemesisFault, NemesisSpec};
pub use vi_telemetry::{
    CausalSummary, Counters, DecisionStats, FlightEvent, PhaseSummary, RoundWindow,
    TelemetrySummary,
};
pub use vi_traffic::{AppKind, LoadMode, RatePhase, TrafficSpec, TrafficSummary};
