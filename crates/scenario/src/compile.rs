//! The scenario compiler: `ScenarioSpec × seed → execution → outcome`.
//!
//! [`ScenarioSpec::run`] builds the deployment the spec describes —
//! a [`vi_radio::Engine`] running CHA nodes, or a
//! [`vi_core::vi::World`] emulating virtual nodes — executes it, and
//! extracts a uniform [`ScenarioOutcome`] row. Runs are deterministic:
//! identical `(spec, seed)` pairs produce identical outcomes, no
//! matter which thread executes them (every run owns its engine and
//! all of its RNG state).

use crate::incident::{IncidentBundle, IncidentReason};
use crate::spec::{ScenarioSpec, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vi_audit::{audit, audit_register_ops, AuditReport, HistoryRecorder};
use vi_baselines::{collect_register_ops, MajRegMessage, MajorityRegister};
use vi_core::cha::{ChaMessage, ChaNode, ChaSpecChecker, TaggedProposer};
use vi_core::vi::{CounterAutomaton, VnId, World, WorldConfig};
use vi_radio::trace::ChannelStats;
use vi_radio::{Engine, EngineConfig, NodeId, NodeSpec, ScriptedAdversary};
use vi_telemetry::{
    CausalRecorder, CausalSummary, FlightRecorder, Monitor, Phase, Probe, TelemetrySummary,
};
use vi_traffic::{AppKind, DevicePlan, TrafficSpec, TrafficSummary, TrafficWorld};

/// Salt separating the placement RNG stream from the engine's seed
/// stream (so random placement never perturbs channel resolution).
const PLACEMENT_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Execution tuning for a scenario run: which engine path resolves
/// rounds and with how many intra-round workers.
///
/// Tuning is **not** part of the scenario: for any fixed `(spec,
/// seed)` every tuning produces a byte-identical [`ScenarioOutcome`]
/// (the E18 `metropolis` experiment and the sweep-runner tests assert
/// this); only wall-clock changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineTuning {
    /// Route engine-backed workloads through the pre-overhaul round
    /// path (benchmark baseline / differential-test oracle).
    pub legacy_engine: bool,
    /// Intra-round worker count for tile-sharded round resolution.
    /// `0` and `1` resolve sequentially; the [`SweepRunner`] treats
    /// `0` as "split my worker budget across concurrent jobs".
    ///
    /// [`SweepRunner`]: crate::runner::SweepRunner
    pub workers: usize,
    /// Record telemetry for this run: deterministic counters plus
    /// wall-clock phase timers, surfaced as
    /// [`ScenarioOutcome::telemetry`]. Off by default — the disabled
    /// path costs one branch per instrumentation site. Deterministic
    /// counters are byte-identical at any worker count, and enabling
    /// telemetry never changes receptions, traces, or the RNG stream.
    pub telemetry: bool,
    /// Record causal tracing for this run: trace spans for every
    /// protocol broadcast, client op, and CHA propose/decide, plus
    /// reception edges between them, surfaced as
    /// [`ScenarioOutcome::causal`]. Trace ids come from a dedicated
    /// SplitMix64 stream, so tracing never perturbs the simulation:
    /// receptions, counters, and the RNG stream stay byte-identical.
    pub tracing: bool,
    /// Flight-recorder window: retain the last `flight_rounds` rounds
    /// of structured engine events and dump an [`IncidentBundle`] when
    /// the run ends in a checker violation, a liveness stall, or a
    /// panic. `0` (the default) disables the recorder.
    pub flight_rounds: usize,
    /// Live-monitoring sample period in rounds: emit a
    /// `TelemetrySnapshot` to every installed monitor sink each
    /// `monitor_every` rounds. `0` (the default) defers to the
    /// environment (`VI_MONITOR_LOG` / `VI_MONITOR_ADDR` /
    /// `VI_MONITOR_EVERY`); a run only samples when at least one sink
    /// is installed. Monitoring rides the wall-clock side: a monitored
    /// run's [`ScenarioOutcome`] is byte-identical to an unmonitored
    /// run's.
    pub monitor_every: u64,
}

impl EngineTuning {
    /// The default execution: current engine path, sequential rounds,
    /// telemetry, tracing, and flight recording off.
    pub const DEFAULT: EngineTuning = EngineTuning {
        legacy_engine: false,
        workers: 0,
        telemetry: false,
        tracing: false,
        flight_rounds: 0,
        monitor_every: 0,
    };

    /// Current engine path with `workers` intra-round workers.
    pub fn with_workers(workers: usize) -> Self {
        EngineTuning {
            workers,
            ..EngineTuning::DEFAULT
        }
    }

    /// This tuning with telemetry recording on.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// This tuning with causal tracing on.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// This tuning with a `k`-round flight-recorder window.
    pub fn with_flight(mut self, k: usize) -> Self {
        self.flight_rounds = k;
        self
    }

    /// This tuning with live monitoring sampling every `every` rounds
    /// (snapshots still require at least one installed sink).
    pub fn with_monitor(mut self, every: u64) -> Self {
        self.monitor_every = every;
        self
    }

    /// The probe and monitor pair for one run: the probe is live when
    /// telemetry is requested *or* the monitor is (snapshots sample
    /// the probe); the monitor is live when a sampling period is in
    /// effect and at least one sink is installed.
    fn instruments(&self, name: &str, seed: u64) -> (Probe, Monitor) {
        let every = vi_telemetry::monitor::effective_every(self.monitor_every);
        let sinks = vi_telemetry::monitor::installed_sinks();
        let live = every > 0 && !sinks.is_empty();
        let probe = if self.telemetry || live {
            Probe::enabled()
        } else {
            Probe::disabled()
        };
        let monitor = if live {
            Monitor::enabled(name, seed, every, probe.clone(), sinks)
        } else {
            Monitor::disabled()
        };
        (probe, monitor)
    }

    /// A live causal recorder when tracing is requested, else null.
    fn causal(&self, seed: u64) -> CausalRecorder {
        if self.tracing {
            CausalRecorder::enabled(seed)
        } else {
            CausalRecorder::disabled()
        }
    }

    /// A live flight recorder when a window is requested, else null.
    fn flight(&self) -> FlightRecorder {
        FlightRecorder::enabled(self.flight_rounds)
    }
}

/// One row of a sweep result table: everything measured about one
/// `(scenario, seed)` run. Serializable, so whole result tables can be
/// compared byte-for-byte and shipped as bench artifacts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Simulation seed.
    pub seed: u64,
    /// Nodes deployed.
    pub nodes: usize,
    /// Real (slotted) rounds executed.
    pub rounds: u64,
    /// Total broadcast attempts.
    pub broadcasts: u64,
    /// Total successful deliveries to other nodes.
    pub deliveries: u64,
    /// Total collision indications reported.
    pub collision_reports: u64,
    /// Largest message broadcast, in bytes.
    pub max_message_bytes: usize,
    /// CHA outputs fed to the specification checker (0 for VI runs).
    pub outputs_checked: usize,
    /// Validity violations found by the checker.
    pub validity_violations: usize,
    /// Agreement violations found by the checker.
    pub agreement_violations: usize,
    /// Color-spread (Property 4) violations found by the checker.
    pub spread_violations: usize,
    /// Fraction of (node, instance) outcomes that decided; for VI
    /// runs, the fraction of green virtual rounds.
    pub decided_fraction: f64,
    /// Measured stabilization: the checker's liveness instance `kst`
    /// (CHA runs only; `None` if the run never stabilized).
    pub stabilized_kst: Option<u64>,
    /// Virtual-node join transfers (VI runs; 0 for CHA).
    pub vn_joins: u64,
    /// Virtual-node state losses / resets (VI runs; 0 for CHA).
    pub vn_resets: u64,
    /// Client-traffic metrics (traffic workloads only).
    pub traffic: Option<TrafficSummary>,
    /// Consistency-audit verdicts (audited traffic workloads only).
    pub audit: Option<AuditReport>,
    /// Telemetry (counters + phase timers), present only when the run
    /// was executed with [`EngineTuning::telemetry`]. Its equality
    /// compares deterministic counters only, so outcome comparisons
    /// across worker counts tolerate wall-clock jitter.
    pub telemetry: Option<TelemetrySummary>,
    /// The causal DAG and decision timelines, present only when the
    /// run was executed with [`EngineTuning::tracing`]. Fully
    /// deterministic: byte-identical at any worker count.
    pub causal: Option<CausalSummary>,
    /// The incident bundle, present only when the run had a flight
    /// recorder ([`EngineTuning::flight_rounds`] > 0) **and** ended in
    /// a checker violation or a liveness stall.
    pub incident: Option<IncidentBundle>,
}

impl ScenarioOutcome {
    /// Total safety violations (validity + agreement + color spread).
    pub fn safety_violations(&self) -> usize {
        self.validity_violations + self.agreement_violations + self.spread_violations
    }
}

impl ScenarioSpec {
    /// Compiles and executes this scenario with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`ScenarioSpec::validate`];
    /// the sweep runner validates up front).
    pub fn run(&self, seed: u64) -> ScenarioOutcome {
        self.run_with(seed, EngineTuning::DEFAULT)
    }

    /// Like [`ScenarioSpec::run`], but with the engine's round path
    /// pinned: `legacy_engine` routes the engine-backed workloads
    /// (`ChaClique`, `ViCounter`) through the pre-overhaul round path.
    /// Kept as the two-state shorthand for [`ScenarioSpec::run_with`].
    pub fn run_tuned(&self, seed: u64, legacy_engine: bool) -> ScenarioOutcome {
        self.run_with(
            seed,
            EngineTuning {
                legacy_engine,
                ..EngineTuning::DEFAULT
            },
        )
    }

    /// Like [`ScenarioSpec::run`], but with full [`EngineTuning`]:
    /// round path and intra-round worker count.
    ///
    /// The tuning is an execution parameter, **not** part of the
    /// scenario: outcomes are byte-identical under every tuning (the
    /// E18 `metropolis` experiment asserts this), only wall-clock
    /// differs. Traffic workloads always use the default path (their
    /// engine is owned by `vi-traffic`).
    ///
    /// With [`EngineTuning::flight_rounds`] > 0, a run ending in a
    /// checker violation or a liveness stall attaches an
    /// [`IncidentBundle`] to the outcome; a run that *panics* writes
    /// the bundle to `$VI_INCIDENT_DIR/incident_<scenario>_<seed>.json`
    /// (when that variable is set) before resuming the unwind.
    pub fn run_with(&self, seed: u64, tuning: EngineTuning) -> ScenarioOutcome {
        let causal = tuning.causal(seed);
        let flight = tuning.flight();
        let (probe, monitor) = tuning.instruments(&self.name, seed);
        let mut out = if flight.is_enabled() {
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.dispatch(seed, tuning, &causal, &flight, &probe, &monitor)
            }));
            match run {
                Ok(out) => out,
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    let bundle = IncidentBundle::assemble(
                        self,
                        seed,
                        tuning,
                        IncidentReason::Panic { message },
                        flight.window(),
                        causal.summary(),
                        None,
                    );
                    if let Ok(dir) = std::env::var("VI_INCIDENT_DIR") {
                        let path = std::path::Path::new(&dir)
                            .join(format!("incident_{}_{}.json", self.name, seed));
                        let _ = bundle.save(&path);
                    }
                    std::panic::resume_unwind(payload);
                }
            }
        } else {
            self.dispatch(seed, tuning, &causal, &flight, &probe, &monitor)
        };
        // The final snapshot (marked `last`) lands after the checker
        // phase and the workload-level counters, so it reconciles with
        // the run's telemetry summary exactly.
        monitor.finish();
        out.causal = causal.summary();
        if flight.is_enabled() {
            let reason =
                if out.audit.as_ref().is_some_and(|r| !r.ok()) || out.safety_violations() > 0 {
                    Some(IncidentReason::Violation)
                } else if out
                    .traffic
                    .as_ref()
                    .is_some_and(|t| t.issued > 0 && t.completed == 0)
                {
                    Some(IncidentReason::LivenessStall)
                } else {
                    None
                };
            if let Some(reason) = reason {
                out.incident = Some(IncidentBundle::assemble(
                    self,
                    seed,
                    tuning,
                    reason,
                    flight.window(),
                    out.causal.clone(),
                    out.audit.clone(),
                ));
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        seed: u64,
        tuning: EngineTuning,
        causal: &CausalRecorder,
        flight: &FlightRecorder,
        probe: &Probe,
        monitor: &Monitor,
    ) -> ScenarioOutcome {
        match &self.workload {
            WorkloadSpec::ChaClique { instances } => {
                self.run_cha(seed, *instances, tuning, causal, flight, probe, monitor)
            }
            WorkloadSpec::ViCounter {
                layout,
                virtual_rounds,
            } => self.run_vi(
                seed,
                layout,
                *virtual_rounds,
                tuning,
                causal,
                flight,
                probe,
                monitor,
            ),
            WorkloadSpec::Traffic {
                app,
                layout,
                traffic,
                audit,
            } => self.run_traffic(
                seed, *app, layout, traffic, *audit, tuning, causal, flight, probe, monitor,
            ),
            WorkloadSpec::MajorityRegister {
                writes,
                rounds,
                partition_from,
            } => self.run_majority_register(
                seed,
                *writes,
                *rounds,
                *partition_from,
                tuning,
                causal,
                flight,
                probe,
                monitor,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_cha(
        &self,
        seed: u64,
        instances: u64,
        tuning: EngineTuning,
        causal: &CausalRecorder,
        flight: &FlightRecorder,
        probe: &Probe,
        monitor: &Monitor,
    ) -> ScenarioOutcome {
        let rounds = instances * 3;
        let mut engine: Engine<ChaMessage<u64>> = Engine::new(EngineConfig {
            radio: self.radio,
            seed,
            record_trace: false,
        });
        engine.set_legacy_round_path(tuning.legacy_engine);
        if tuning.workers >= 2 {
            engine.set_workers(tuning.workers);
        }
        engine.set_probe(probe.clone());
        engine.set_causal(causal.clone());
        engine.set_flight(flight.clone());
        engine.set_monitor(monitor.clone());
        engine.set_adversary(self.nemesis.compile_adversary(&self.adversary).build());
        let cm = self.cm.build(seed);
        let mut place_rng = StdRng::seed_from_u64(seed ^ PLACEMENT_SALT);

        let mut ids: Vec<NodeId> = Vec::with_capacity(self.node_count());
        let mut crashed: Vec<usize> = Vec::new();
        let mut genesis: Vec<bool> = Vec::with_capacity(self.node_count());
        let mut tag = 0u64;
        for pop in &self.populations {
            for j in 0..pop.count {
                let start = pop.placement.position(j, self.arena, &mut place_rng);
                let spawn = pop.spawn_at + j as u64 * pop.spawn_stride;
                // Nodes deployed from round 0 run the plain Section 3
                // protocol. Late arrivals must enter with a consistent
                // instance counter — the paper's join-by-state-transfer
                // — so they resume from a checkpoint aligned to the
                // global round/instance mapping (their first ballot
                // phase starts instance `spawn.div_ceil(3) + 1`).
                let node: Box<dyn vi_radio::Process<ChaMessage<u64>>> = if spawn == 0 {
                    Box::new(ChaNode::<u64>::new(
                        Box::new(TaggedProposer::new(tag)),
                        cm.clone(),
                    ))
                } else {
                    let k0 = spawn.div_ceil(3);
                    Box::new(ChaNode::<u64>::from_checkpoint(
                        k0,
                        k0,
                        Box::new(TaggedProposer::new(tag)),
                        cm.clone(),
                    ))
                };
                let mut spec = NodeSpec::new(pop.mobility.build(start, self.arena), node);
                if spawn > 0 {
                    spec = spec.spawn_at(spawn);
                }
                if let Some(c) = pop.crash_at {
                    spec = spec.crash_at(c);
                    if c < rounds {
                        crashed.push(tag as usize);
                    }
                }
                ids.push(engine.add_node(spec));
                genesis.push(spawn == 0);
                tag += 1;
            }
        }
        if causal.is_enabled() {
            // Each participant mints propose/decide spans under its
            // simulator node index, so they line up with the engine's
            // broadcast spans and reception edges.
            for (node, &id) in ids.iter().enumerate() {
                if let Some(p) = engine.process_mut::<ChaNode<u64>>(id) {
                    p.set_causal(causal.clone(), node as u64);
                }
            }
        }

        engine.run(rounds);

        let t_check = probe.timer();
        // The Section 3 specification (and its checker) quantifies
        // over a fixed participant set. Every node's proposals are
        // recorded (adopted values must trace back to *some* proposal)
        // and every node counts towards `decided_fraction`, but only
        // genesis nodes' outputs feed the checker: a checkpoint
        // joiner's history summarizes the pre-join prefix as ⊥, which
        // the strict history-equality relation would misread as
        // disagreement.
        let mut checker = ChaSpecChecker::new();
        let mut total_outputs = 0usize;
        let mut decided = 0usize;
        for (node, &id) in ids.iter().enumerate() {
            let p = engine.process::<ChaNode<u64>>(id).expect("cha node");
            for &(k, v) in p.proposals() {
                checker.record_proposal(k, v);
            }
            for out in p.outputs() {
                if genesis[node] {
                    checker.record_output(node, out);
                }
                total_outputs += 1;
                if out.decided() {
                    decided += 1;
                }
            }
        }
        for &node in &crashed {
            checker.mark_crashed(node);
        }

        let decided_fraction = if total_outputs == 0 {
            0.0
        } else {
            decided as f64 / total_outputs as f64
        };
        let mut out = self.outcome(
            seed,
            rounds,
            engine.stats(),
            checker.output_count(),
            &checker,
            decided_fraction,
            0,
            0,
            None,
        );
        probe.phase_since(Phase::Checker, t_check);
        if tuning.telemetry {
            out.telemetry = probe.summary();
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn run_vi(
        &self,
        seed: u64,
        layout: &crate::spec::LayoutSpec,
        virtual_rounds: u64,
        tuning: EngineTuning,
        causal: &CausalRecorder,
        flight: &FlightRecorder,
        probe: &Probe,
        monitor: &Monitor,
    ) -> ScenarioOutcome {
        let layout = layout.build();
        let vns = layout.len();
        let mut world = World::new(WorldConfig {
            radio: self.radio,
            layout,
            automaton: CounterAutomaton,
            seed,
            record_trace: false,
        });
        world.set_legacy_round_path(tuning.legacy_engine);
        if tuning.workers >= 2 {
            world.set_workers(tuning.workers);
        }
        world.set_probe(probe.clone());
        world.set_causal(causal.clone());
        world.set_flight(flight.clone());
        world.set_monitor(monitor.clone());
        world.set_adversary(self.nemesis.compile_adversary(&self.adversary).build());
        let mut place_rng = StdRng::seed_from_u64(seed ^ PLACEMENT_SALT);
        let nemesis_crashes: std::collections::BTreeMap<usize, u64> = self
            .nemesis
            .crash_schedule(self.node_count(), 0)
            .into_iter()
            .collect();
        let mut device = 0usize;
        for pop in &self.populations {
            for j in 0..pop.count {
                let start = pop.placement.position(j, self.arena, &mut place_rng);
                let spawn = pop.spawn_at + j as u64 * pop.spawn_stride;
                let crash = match (pop.crash_at, nemesis_crashes.get(&device)) {
                    (Some(c), Some(&n)) => Some(c.min(n)),
                    (Some(c), None) => Some(c),
                    (None, Some(&n)) => Some(n),
                    (None, None) => None,
                };
                world.add_device_spec(
                    pop.mobility.build(start, self.arena),
                    None,
                    (spawn > 0).then_some(spawn),
                    crash,
                );
                device += 1;
            }
        }

        world.run_virtual_rounds(virtual_rounds);

        let t_check = probe.timer();
        let mut decided = 0u64;
        let mut bottom = 0u64;
        let mut joins = 0u64;
        let mut resets = 0u64;
        for vn in 0..vns {
            let (_, report) = world.vn_report(VnId(vn));
            decided += report.decided;
            bottom += report.bottom;
            joins += report.joins;
            resets += report.resets;
        }
        let decided_fraction = decided as f64 / (decided + bottom).max(1) as f64;
        let stats = *world.stats();
        let checker = ChaSpecChecker::<u64>::new();
        let mut out = self.outcome(
            seed,
            stats.rounds,
            &stats,
            0,
            &checker,
            decided_fraction,
            joins,
            resets,
            None,
        );
        probe.phase_since(Phase::Checker, t_check);
        if tuning.telemetry {
            out.telemetry = probe.summary();
        }
        out
    }

    /// Runs a client-traffic workload: populations emulate the app's
    /// virtual nodes; the first `traffic.clients` devices also run
    /// request ports driven by the vi-traffic generator. With
    /// `audited`, the run's operation history feeds the `vi-audit`
    /// checkers and the outcome carries their verdicts.
    #[allow(clippy::too_many_arguments)]
    fn run_traffic(
        &self,
        seed: u64,
        app: AppKind,
        layout: &crate::spec::LayoutSpec,
        traffic: &TrafficSpec,
        audited: bool,
        tuning: EngineTuning,
        causal: &CausalRecorder,
        flight: &FlightRecorder,
        probe: &Probe,
        monitor: &Monitor,
    ) -> ScenarioOutcome {
        let mut place_rng = StdRng::seed_from_u64(seed ^ PLACEMENT_SALT);
        let mut devices = Vec::with_capacity(self.node_count());
        for pop in &self.populations {
            for j in 0..pop.count {
                let start = pop.placement.position(j, self.arena, &mut place_rng);
                let spawn = pop.spawn_at + j as u64 * pop.spawn_stride;
                devices.push(DevicePlan {
                    start,
                    mobility: pop.mobility.build(start, self.arena),
                    spawn_at: (spawn > 0).then_some(spawn),
                    crash_at: pop.crash_at,
                });
            }
        }
        // Nemesis: crash bursts fold into the device churn (client
        // ports at the deployment front are protected), channel
        // faults compose over the base adversary.
        self.nemesis.apply_crashes(&mut devices, traffic.clients);
        let tw = TrafficWorld {
            radio: self.radio,
            layout: layout.build(),
            seed,
            adversary: self.nemesis.compile_adversary(&self.adversary),
            devices,
        };
        // The traffic driver owns its engine internally, so the probe
        // records the workload-level counters only (timeouts, audit
        // ops, delivery totals); per-round resolver-mode counters stay
        // zero for traffic runs.
        let (out, report) = if audited {
            let (out, history) = HistoryRecorder::record_observed(
                app,
                tw,
                traffic,
                causal.clone(),
                flight.clone(),
                monitor,
            );
            let t_check = probe.timer();
            let report = audit(&history);
            probe.phase_since(Phase::Checker, t_check);
            (out, Some(report))
        } else if monitor.is_enabled() || causal.is_enabled() || flight.is_enabled() {
            let (out, _) = vi_traffic::run_traffic_observed(
                app,
                tw,
                traffic,
                causal.clone(),
                flight.clone(),
                monitor,
            );
            (out, None)
        } else {
            (vi_traffic::run_traffic(app, tw, traffic), None)
        };
        probe.count(|c| {
            c.receptions = out.stats.deliveries;
            c.collisions = out.stats.collision_reports;
            c.traffic_timeouts = out.summary.timed_out;
            if let Some(report) = &report {
                c.audit_ops = report.ops;
            }
        });
        let decided_fraction =
            out.vn_decided as f64 / (out.vn_decided + out.vn_bottom).max(1) as f64;
        let checker = ChaSpecChecker::<u64>::new();
        let mut outcome = self.outcome(
            seed,
            out.stats.rounds,
            &out.stats,
            0,
            &checker,
            decided_fraction,
            out.vn_joins,
            out.vn_resets,
            Some(out.summary),
        );
        outcome.audit = report;
        if tuning.telemetry {
            outcome.telemetry = probe.summary();
        }
        outcome
    }

    /// Runs the deliberately broken majority-register baseline and
    /// always audits the collected WGL operations: with a partition
    /// cutting off the last replica, the stale local reads produce a
    /// deterministic linearizability violation — the fixture the
    /// incident-bundle pipeline is exercised against.
    #[allow(clippy::too_many_arguments)]
    fn run_majority_register(
        &self,
        seed: u64,
        writes: u64,
        rounds: u64,
        partition_from: Option<u64>,
        tuning: EngineTuning,
        causal: &CausalRecorder,
        flight: &FlightRecorder,
        probe: &Probe,
        monitor: &Monitor,
    ) -> ScenarioOutcome {
        let n = self.node_count();
        let mut engine: Engine<MajRegMessage> = Engine::new(EngineConfig {
            radio: self.radio,
            seed,
            record_trace: false,
        });
        engine.set_legacy_round_path(tuning.legacy_engine);
        if tuning.workers >= 2 {
            engine.set_workers(tuning.workers);
        }
        engine.set_probe(probe.clone());
        engine.set_causal(causal.clone());
        engine.set_flight(flight.clone());
        engine.set_monitor(monitor.clone());
        if let Some(from) = partition_from {
            // The partition is part of the workload, not the spec's
            // adversary: everything addressed to the last-ranked
            // replica is dropped from `from` on, so it keeps serving
            // its stale local copy.
            let mut adv = ScriptedAdversary::new();
            for r in from..rounds {
                adv.drop_all_to(r, NodeId::from(n - 1));
            }
            engine.set_adversary(Box::new(adv));
        } else {
            engine.set_adversary(self.nemesis.compile_adversary(&self.adversary).build());
        }
        let mut place_rng = StdRng::seed_from_u64(seed ^ PLACEMENT_SALT);
        let mut rank = 0usize;
        let mut ids: Vec<NodeId> = Vec::with_capacity(n);
        for pop in &self.populations {
            for j in 0..pop.count {
                let start = pop.placement.position(j, self.arena, &mut place_rng);
                ids.push(engine.add_node(NodeSpec::new(
                    pop.mobility.build(start, self.arena),
                    Box::new(MajorityRegister::new(rank, n, writes)),
                )));
                rank += 1;
            }
        }

        engine.run(rounds);

        let ops = collect_register_ops(&engine, &ids);
        // Register the collected history as op spans: each op's
        // invoke round becomes an `Op` span keyed by its audit op id,
        // so a violation's witness ops resolve into the causal DAG
        // and completions feed the `majority_register` timeline. The
        // op vector is flat in node order (writes then reads per
        // node), so the owning node is recovered from the log sizes.
        if causal.is_enabled() {
            let mut cursor = 0usize;
            for (node, &id) in ids.iter().enumerate() {
                let p = engine
                    .process::<MajorityRegister>(id)
                    .expect("majority-register node");
                let count = p.write_log.len() + p.read_log.len();
                for op in &ops[cursor..cursor + count] {
                    causal.invoke(op.id, node as u64, op.inv);
                    if op.ret != vi_audit::linearizability::PENDING {
                        causal.complete("majority_register", op.id, op.ret);
                    }
                }
                cursor += count;
            }
        }
        let t_check = probe.timer();
        let report = audit_register_ops("majority_register", &ops);
        probe.phase_since(Phase::Checker, t_check);
        probe.count(|c| c.audit_ops = report.ops);
        let completed = ops
            .iter()
            .filter(|o| o.ret != vi_audit::linearizability::PENDING)
            .count();
        let decided_fraction = completed as f64 / ops.len().max(1) as f64;
        let checker = ChaSpecChecker::<u64>::new();
        let mut out = self.outcome(
            seed,
            rounds,
            engine.stats(),
            0,
            &checker,
            decided_fraction,
            0,
            0,
            None,
        );
        out.audit = Some(report);
        if tuning.telemetry {
            out.telemetry = probe.summary();
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn outcome(
        &self,
        seed: u64,
        rounds: u64,
        stats: &ChannelStats,
        outputs_checked: usize,
        checker: &ChaSpecChecker<u64>,
        decided_fraction: f64,
        vn_joins: u64,
        vn_resets: u64,
        traffic: Option<TrafficSummary>,
    ) -> ScenarioOutcome {
        ScenarioOutcome {
            scenario: self.name.clone(),
            seed,
            nodes: self.node_count(),
            rounds,
            broadcasts: stats.broadcasts,
            deliveries: stats.deliveries,
            collision_reports: stats.collision_reports,
            max_message_bytes: stats.max_message_bytes,
            outputs_checked,
            validity_violations: checker.check_validity().len(),
            agreement_violations: checker.check_agreement().len(),
            spread_violations: checker.check_color_spread().len(),
            decided_fraction,
            stabilized_kst: checker.liveness_kst(),
            vn_joins,
            vn_resets,
            traffic,
            audit: None,
            telemetry: None,
            causal: None,
            incident: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CmSpec, LayoutSpec, PlacementSpec, PopulationSpec};
    use vi_radio::geometry::{Point, Rect};
    use vi_radio::{AdversaryKind, RadioConfig};

    fn clique(n: usize, instances: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: "test-clique".into(),
            arena: Rect::square(10.0),
            radio: RadioConfig::reliable(10.0, 20.0),
            populations: vec![PopulationSpec::fixed(
                n,
                PlacementSpec::Line {
                    start: Point::ORIGIN,
                    step_x: 0.1,
                    step_y: 0.0,
                },
            )],
            adversary: AdversaryKind::None,
            nemesis: vi_audit::NemesisSpec::none(),
            cm: CmSpec::perfect(),
            workload: WorkloadSpec::ChaClique { instances },
        }
    }

    #[test]
    fn reliable_clique_decides_and_stays_safe() {
        let out = clique(4, 20).run(1);
        assert_eq!(out.nodes, 4);
        assert_eq!(out.rounds, 60);
        assert!(out.decided_fraction > 0.9, "{}", out.decided_fraction);
        assert_eq!(out.safety_violations(), 0);
        assert!(out.stabilized_kst.unwrap_or(u64::MAX) <= 2);
    }

    #[test]
    fn runs_are_deterministic_per_seed_and_distinct_across_seeds() {
        let mut spec = clique(5, 30);
        spec.radio = RadioConfig::stabilizing(10.0, 20.0, 60);
        spec.adversary = AdversaryKind::Random(0.4, 0.2);
        assert_eq!(spec.run(7), spec.run(7));
        assert_ne!(spec.run(7), spec.run(8), "seeds must matter");
    }

    #[test]
    fn traffic_scenario_reports_latency_metrics() {
        let spec = ScenarioSpec {
            name: "test-traffic".into(),
            arena: Rect::square(100.0),
            radio: RadioConfig::reliable(10.0, 20.0),
            populations: vec![PopulationSpec::fixed(
                3,
                PlacementSpec::Cluster {
                    center: Point::new(50.0, 50.0),
                    radius: 0.4,
                },
            )],
            adversary: AdversaryKind::None,
            nemesis: vi_audit::NemesisSpec::none(),
            cm: CmSpec::perfect(),
            workload: WorkloadSpec::Traffic {
                app: vi_traffic::AppKind::Register,
                layout: LayoutSpec::Explicit {
                    locations: vec![Point::new(50.0, 50.0)],
                    region_radius: 2.5,
                },
                traffic: vi_traffic::TrafficSpec::open(2, 0.25, 30),
                audit: false,
            },
        };
        spec.validate().expect("traffic spec validates");
        let out = spec.run(5);
        let t = out.traffic.as_ref().expect("traffic summary present");
        assert!(t.issued > 0);
        assert!(t.completed > 0, "{t:?}");
        assert!(t.p50 >= 1 && t.p50 <= t.p99, "{t:?}");
        assert!(out.audit.is_none(), "unaudited run carries no report");
        assert_eq!(out, spec.run(5), "traffic runs are deterministic");
        // Too many clients for the deployment must fail validation.
        let mut bad = spec.clone();
        if let WorkloadSpec::Traffic { traffic, .. } = &mut bad.workload {
            traffic.clients = 99;
        }
        assert!(bad.validate().unwrap_err().contains("clients"));
    }

    #[test]
    fn audited_traffic_scenario_carries_verdicts_and_nemesis_bites() {
        use vi_audit::{NemesisFault, NemesisSpec};
        let mut spec = ScenarioSpec {
            name: "test-audited".into(),
            arena: Rect::square(100.0),
            radio: RadioConfig::reliable(10.0, 20.0),
            populations: vec![PopulationSpec::fixed(
                5,
                PlacementSpec::Cluster {
                    center: Point::new(50.0, 50.0),
                    radius: 0.4,
                },
            )],
            adversary: AdversaryKind::None,
            nemesis: NemesisSpec {
                faults: vec![NemesisFault::CrashBurst {
                    at_round: 60,
                    victims: 2,
                }],
            },
            cm: CmSpec::perfect(),
            workload: WorkloadSpec::Traffic {
                app: vi_traffic::AppKind::Register,
                layout: LayoutSpec::Explicit {
                    locations: vec![Point::new(50.0, 50.0)],
                    region_radius: 2.5,
                },
                traffic: vi_traffic::TrafficSpec::open(2, 0.3, 30),
                audit: true,
            },
        };
        spec.validate().expect("audited spec validates");
        let out = spec.run(3);
        let report = out.audit.as_ref().expect("audited run carries a report");
        assert!(report.ok(), "{:?}", report.violations());
        assert_eq!(report.app, "register");
        assert!(report.ops > 0);
        assert_eq!(out, spec.run(3), "audited runs are deterministic");
        // The same deployment without the nemesis behaves differently:
        // two crashed replicas receive nothing, so the crash burst
        // must show up as lost deliveries.
        let with_nemesis = out;
        spec.nemesis = NemesisSpec::none();
        let without = spec.run(3);
        assert!(
            with_nemesis.deliveries < without.deliveries,
            "crash burst must cost deliveries ({} vs {})",
            with_nemesis.deliveries,
            without.deliveries
        );
    }

    #[test]
    fn vi_world_scenario_reports_green_fraction() {
        let spec = ScenarioSpec {
            name: "test-world".into(),
            arena: Rect::square(100.0),
            radio: RadioConfig::reliable(10.0, 20.0),
            populations: vec![PopulationSpec::fixed(
                3,
                PlacementSpec::Cluster {
                    center: Point::new(50.0, 50.0),
                    radius: 0.4,
                },
            )],
            adversary: AdversaryKind::None,
            nemesis: vi_audit::NemesisSpec::none(),
            cm: CmSpec::perfect(),
            workload: WorkloadSpec::ViCounter {
                layout: LayoutSpec::Explicit {
                    locations: vec![Point::new(50.0, 50.0)],
                    region_radius: 2.5,
                },
                virtual_rounds: 8,
            },
        };
        let out = spec.run(3);
        assert!(out.decided_fraction > 0.5, "{}", out.decided_fraction);
        assert_eq!(out.outputs_checked, 0);
        assert!(out.rounds > 8, "real rounds exceed virtual rounds");
        assert_eq!(out, spec.run(3), "world runs are deterministic");
    }

    /// Retransmit backoff draws from no RNG: burning the backoff
    /// schedule arbitrarily hard between two runs of a non-traffic
    /// scenario leaves the outcome byte-identical, because the jitter
    /// is a pure hash of `(key, attempt)` rather than a stream shared
    /// with placement, channel, or admission randomness.
    #[test]
    fn backoff_never_perturbs_non_traffic_rng_streams() {
        let spec = clique(4, 6);
        let before = spec.run(11);
        let mut burned = 0u64;
        for key in 0..512u64 {
            for attempt in 0..16u32 {
                burned = burned.wrapping_add(vi_traffic::backoff_delay(key, attempt));
            }
        }
        assert!(burned > 0, "backoff delays are positive");
        assert_eq!(
            before,
            spec.run(11),
            "backoff consumed shared RNG state: non-traffic outcome changed"
        );
    }
}
