//! The declarative scenario description.
//!
//! A [`ScenarioSpec`] is plain serializable data: everything needed to
//! reconstruct a full deployment — arena, radio model, node
//! populations with placement/mobility/churn, channel adversary,
//! contention manager, and workload. The compiler (see
//! [`crate::compile`]) turns a spec plus a seed into an execution;
//! identical `(spec, seed)` pairs yield identical executions.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use vi_audit::NemesisSpec;
use vi_contention::{BackoffCm, BackoffConfig, OracleCm, PreStability, SharedCm};
use vi_core::vi::VnLayout;
use vi_radio::geometry::{Point, Rect};
use vi_radio::mobility::{Billiard, DepartAt, MobilityModel, PatrolRoute, Static, Waypoint};
use vi_radio::{AdversaryKind, RadioConfig};
use vi_traffic::{AppKind, TrafficSpec};

/// Where a population's nodes start, as a function of the node's index
/// within the population.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PlacementSpec {
    /// Node `i` starts at `start + i * (step_x, step_y)` — a
    /// deterministic line (the layout the clique experiments use).
    Line {
        /// Position of node 0.
        start: Point,
        /// Per-node x offset.
        step_x: f64,
        /// Per-node y offset.
        step_y: f64,
    },
    /// Uniformly random within a disc of `radius` around `center`
    /// (seeded; deterministic per run).
    Cluster {
        /// Disc center.
        center: Point,
        /// Disc radius in meters.
        radius: f64,
    },
    /// Uniformly random over the whole arena (seeded; deterministic
    /// per run).
    Uniform,
}

impl PlacementSpec {
    /// The start position of node `i` of a population. Random
    /// placements draw from `rng` and are clamped into `arena`.
    pub fn position(&self, i: usize, arena: Rect, rng: &mut StdRng) -> Point {
        let p = match self {
            PlacementSpec::Line {
                start,
                step_x,
                step_y,
            } => Point::new(start.x + *step_x * i as f64, start.y + *step_y * i as f64),
            PlacementSpec::Cluster { center, radius } => {
                // Polar sampling: uniform over the disc.
                let r = *radius * rng.random_range(0.0..=1.0f64).sqrt();
                let theta = rng.random_range(0.0..std::f64::consts::TAU);
                Point::new(center.x + r * theta.cos(), center.y + r * theta.sin())
            }
            PlacementSpec::Uniform => Point::new(
                rng.random_range(arena.min.x..=arena.max.x),
                rng.random_range(arena.min.y..=arena.max.y),
            ),
        };
        // Mobility constructors assert in-bounds starts; clamp so every
        // placement is valid inside the arena.
        Point::new(
            p.x.clamp(arena.min.x, arena.max.x),
            p.y.clamp(arena.min.y, arena.max.y),
        )
    }
}

/// How a population's nodes move, given their start position and the
/// arena bounds. Mirrors the models in [`vi_radio::mobility`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MobilitySpec {
    /// Never moves ([`Static`]).
    Static,
    /// Random waypoint inside the arena at `speed` m/round
    /// ([`Waypoint`]).
    Waypoint {
        /// Speed in meters per round.
        speed: f64,
    },
    /// Constant velocity, reflecting off the arena bounds
    /// ([`Billiard`]).
    Billiard {
        /// X velocity in meters per round.
        vel_x: f64,
        /// Y velocity in meters per round.
        vel_y: f64,
    },
    /// Cyclic patrol through explicit waypoints ([`PatrolRoute`]);
    /// starts at the first waypoint (the placement is ignored).
    PatrolRoute {
        /// Waypoints, visited cyclically.
        route: Vec<Point>,
        /// Speed in meters per round.
        speed: f64,
    },
    /// Stationary until `depart_at`, then a straight-line walk
    /// ([`DepartAt`]).
    DepartAt {
        /// X component of the departure direction.
        dir_x: f64,
        /// Y component of the departure direction.
        dir_y: f64,
        /// Speed in meters per round.
        speed: f64,
        /// Round at which the node departs.
        depart_at: u64,
    },
}

impl MobilitySpec {
    /// Builds the mobility model for a node starting at `start`.
    pub fn build(&self, start: Point, arena: Rect) -> Box<dyn MobilityModel> {
        match self {
            MobilitySpec::Static => Box::new(Static::new(start)),
            MobilitySpec::Waypoint { speed } => Box::new(Waypoint::new(start, *speed, arena)),
            MobilitySpec::Billiard { vel_x, vel_y } => {
                Box::new(Billiard::new(start, (*vel_x, *vel_y), arena))
            }
            MobilitySpec::PatrolRoute { route, speed } => {
                Box::new(PatrolRoute::new(route.clone(), *speed))
            }
            MobilitySpec::DepartAt {
                dir_x,
                dir_y,
                speed,
                depart_at,
            } => Box::new(DepartAt::new(start, (*dir_x, *dir_y), *speed, *depart_at)),
        }
    }
}

/// One homogeneous group of nodes: count, placement, mobility, and
/// churn windows (scripted spawn and crash rounds).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Number of nodes in the population.
    pub count: usize,
    /// Start positions.
    pub placement: PlacementSpec,
    /// Motion model.
    pub mobility: MobilitySpec,
    /// Round at which node 0 of the population spawns (0 = deployed
    /// from the start).
    pub spawn_at: u64,
    /// Extra spawn delay per node: node `i` spawns at
    /// `spawn_at + i * spawn_stride` (models arrival waves).
    pub spawn_stride: u64,
    /// Round at which every node of the population crashes, if any.
    pub crash_at: Option<u64>,
}

impl PopulationSpec {
    /// A static, always-alive population (the common case).
    pub fn fixed(count: usize, placement: PlacementSpec) -> Self {
        PopulationSpec {
            count,
            placement,
            mobility: MobilitySpec::Static,
            spawn_at: 0,
            spawn_stride: 0,
            crash_at: None,
        }
    }

    /// Sets the mobility model.
    pub fn with_mobility(mut self, mobility: MobilitySpec) -> Self {
        self.mobility = mobility;
        self
    }

    /// Sets the spawn window (`spawn_at` plus per-node stride).
    pub fn spawning(mut self, spawn_at: u64, spawn_stride: u64) -> Self {
        self.spawn_at = spawn_at;
        self.spawn_stride = spawn_stride;
        self
    }

    /// Crashes the whole population at `round`.
    pub fn crashing_at(mut self, round: u64) -> Self {
        self.crash_at = Some(round);
        self
    }
}

/// Which contention manager the CHA workload runs on.
///
/// Only meaningful for [`WorkloadSpec::ChaClique`]; the virtual-node
/// workload manages contention internally (regional leases).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CmSpec {
    /// [`OracleCm`]: realizes Property 3 exactly from `stabilize_at`,
    /// behaving per `pre` before it.
    Oracle {
        /// Stabilization round.
        stabilize_at: u64,
        /// Pre-stabilization behaviour.
        pre: PreStability,
    },
    /// [`BackoffCm`] with the default configuration: the practical
    /// randomized scheme.
    Backoff,
}

impl CmSpec {
    /// A manager that is perfect from round 0.
    pub fn perfect() -> Self {
        CmSpec::Oracle {
            stabilize_at: 0,
            pre: PreStability::NoneActive,
        }
    }

    /// Builds the shared contention-manager handle for a run.
    pub fn build(&self, seed: u64) -> SharedCm {
        match self {
            CmSpec::Oracle { stabilize_at, pre } => {
                SharedCm::new(OracleCm::new(*stabilize_at, *pre, seed))
            }
            CmSpec::Backoff => SharedCm::new(BackoffCm::new(BackoffConfig::default(), seed)),
        }
    }
}

/// Virtual-node layout for the [`WorkloadSpec::ViCounter`] workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LayoutSpec {
    /// A `rows × cols` grid of virtual nodes.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Spacing between neighbouring locations, in meters.
        spacing: f64,
        /// Location of the first virtual node.
        origin: Point,
        /// Region radius around each location.
        region_radius: f64,
    },
    /// Explicit virtual-node locations.
    Explicit {
        /// Virtual-node locations.
        locations: Vec<Point>,
        /// Region radius around each location.
        region_radius: f64,
    },
}

impl LayoutSpec {
    /// Builds the [`VnLayout`].
    pub fn build(&self) -> VnLayout {
        match self {
            LayoutSpec::Grid {
                rows,
                cols,
                spacing,
                origin,
                region_radius,
            } => VnLayout::grid(*rows, *cols, *spacing, *origin, *region_radius),
            LayoutSpec::Explicit {
                locations,
                region_radius,
            } => VnLayout::new(locations.clone(), *region_radius),
        }
    }
}

/// What the deployed nodes run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Single-region convergent history agreement: every node is a
    /// [`vi_core::cha::ChaNode`] proposing tagged values; the run
    /// lasts `instances` agreement instances (3 rounds each).
    ChaClique {
        /// Agreement instances to run.
        instances: u64,
    },
    /// Virtual-infrastructure emulation: populations are devices
    /// emulating a replicated counter
    /// ([`vi_core::vi::CounterAutomaton`]) at the layout's locations.
    ViCounter {
        /// Virtual-node layout.
        layout: LayoutSpec,
        /// Virtual rounds to run.
        virtual_rounds: u64,
    },
    /// Client traffic against a vi-app: populations are devices
    /// emulating the app's virtual nodes, and the first
    /// `traffic.clients` devices (population order) additionally run
    /// request-generating client ports. The outcome carries a
    /// [`vi_traffic::TrafficSummary`] with latency quantiles and
    /// throughput.
    Traffic {
        /// Which app is driven.
        app: AppKind,
        /// Virtual-node layout.
        layout: LayoutSpec,
        /// Arrival discipline, op mix, timeout, and window.
        traffic: TrafficSpec,
        /// Record the operation history and run the `vi-audit`
        /// consistency checkers; the outcome then carries an
        /// [`vi_audit::AuditReport`].
        audit: bool,
    },
    /// The deliberately broken majority-acked register baseline
    /// ([`vi_baselines::MajorityRegister`]): writes replicate to a
    /// majority but reads are served from the local copy. Always
    /// audited — the WGL checker catches the stale reads once
    /// `partition_from` cuts the last replica off. Exists so the
    /// incident-bundle pipeline has a scenario that *deterministically*
    /// violates linearizability.
    MajorityRegister {
        /// Writes the leader (deployment rank 0) issues, one per
        /// replication window.
        writes: u64,
        /// Engine rounds to run.
        rounds: u64,
        /// From this round on, drop everything addressed to the
        /// last-ranked replica (it keeps serving stale local reads).
        partition_from: Option<u64>,
    },
}

/// A full declarative deployment: the unit the sweep runner executes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (unique within a catalog or spec file).
    pub name: String,
    /// Bounding box for placement and mobility.
    pub arena: Rect,
    /// Radio model parameters (including `rcf`/`racc`).
    pub radio: RadioConfig,
    /// The deployed node populations.
    pub populations: Vec<PopulationSpec>,
    /// Channel adversary active before stabilization.
    pub adversary: AdversaryKind,
    /// Timed fault schedule injected on top of the adversary and the
    /// population churn (see [`vi_audit::NemesisSpec`]; empty = none).
    pub nemesis: NemesisSpec,
    /// Contention manager (CHA workload only).
    pub cm: CmSpec,
    /// The workload to execute.
    pub workload: WorkloadSpec,
}

/// Which part of a [`ScenarioSpec`] a validation failure lives in.
///
/// Mutation-based fuzzing (the `vi-fuzz` crate) leans on this being a
/// *typed error*, never a panic: every mutated spec is either runnable
/// or rejected here, and the fuzzer uses the kind to steer repair
/// mutations. Each variant's `Display` is the human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecErrorKind {
    /// Radio parameters out of range (the `RadioConfig` message).
    Radio(String),
    /// Non-finite or inverted arena bounds.
    Arena,
    /// No populations, or every population is empty.
    EmptyDeployment,
    /// Traffic workload shape: clients, rates, windows.
    Traffic(String),
    /// Adversary probabilities or round windows.
    Adversary(String),
    /// Nemesis schedule (the `NemesisSpec` message, or a
    /// nemesis/workload mismatch).
    Nemesis(String),
    /// Workload parameters.
    Workload(String),
    /// Population `index` has degenerate placement, mobility, or
    /// churn parameters.
    Population {
        /// Index of the offending population.
        index: usize,
        /// What is wrong, phrased to follow "population i has".
        detail: String,
    },
    /// Virtual-node layout geometry (no locations, non-finite
    /// coordinates, bad region radius).
    Layout(String),
    /// A churn, partition, or fault window entirely outside the
    /// statically-known run length.
    Window(String),
    /// Contention-manager parameters.
    Cm(String),
}

impl std::fmt::Display for SpecErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecErrorKind::Radio(d)
            | SpecErrorKind::Traffic(d)
            | SpecErrorKind::Adversary(d)
            | SpecErrorKind::Workload(d)
            | SpecErrorKind::Layout(d)
            | SpecErrorKind::Window(d)
            | SpecErrorKind::Cm(d) => f.write_str(d),
            SpecErrorKind::Arena => f.write_str("arena must be finite with min <= max"),
            SpecErrorKind::EmptyDeployment => f.write_str("scenario deploys no nodes"),
            SpecErrorKind::Nemesis(d) => write!(f, "nemesis {d}"),
            SpecErrorKind::Population { index, detail } => {
                write!(f, "population {index} has {detail}")
            }
        }
    }
}

/// The first validation failure of a spec: which scenario, and which
/// part of it. Produced by [`ScenarioSpec::validate_typed`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpecError {
    /// Name of the offending scenario.
    pub scenario: String,
    /// What is wrong.
    pub kind: SpecErrorKind,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.scenario, self.kind)
    }
}

impl std::error::Error for SpecError {}

impl ScenarioSpec {
    /// Total number of nodes across all populations.
    pub fn node_count(&self) -> usize {
        self.populations.iter().map(|p| p.count).sum()
    }

    /// The engine-round run length, when it is statically known:
    /// [`WorkloadSpec::ChaClique`] runs `3 · instances` rounds and
    /// [`WorkloadSpec::MajorityRegister`] exactly its `rounds`.
    /// Emulation workloads (`ViCounter`, `Traffic`) run until their
    /// virtual-round window drains, so their real-round count is
    /// emergent and `None` is returned. Window validation and the
    /// fuzzer's truncate-rounds minimization pass key off this.
    pub fn planned_rounds(&self) -> Option<u64> {
        match &self.workload {
            WorkloadSpec::ChaClique { instances } => Some(instances.saturating_mul(3)),
            WorkloadSpec::MajorityRegister { rounds, .. } => Some(*rounds),
            WorkloadSpec::ViCounter { .. } | WorkloadSpec::Traffic { .. } => None,
        }
    }

    /// Checks the spec for model violations the builders would panic
    /// on: invalid radio parameters, empty deployments, out-of-range
    /// probabilities, degenerate mobility or layouts, and churn or
    /// fault windows that outlive the run.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem
    /// (the [`Display`](std::fmt::Display) of [`SpecError`]).
    pub fn validate(&self) -> Result<(), String> {
        self.validate_typed().map_err(|e| e.to_string())
    }

    /// [`validate`](Self::validate), but returning the typed
    /// [`SpecError`] so callers can branch on *which* part of the
    /// spec is broken.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate_typed(&self) -> Result<(), SpecError> {
        let fail = |kind: SpecErrorKind| {
            Err(SpecError {
                scenario: self.name.clone(),
                kind,
            })
        };
        if let Err(e) = self.radio.validate() {
            return fail(SpecErrorKind::Radio(e.to_string()));
        }
        // Deserialized `Rect`s bypass `Rect::new`'s assertion, so a
        // hand-edited JSON arena can be degenerate; check here.
        let finite = |p: Point| p.x.is_finite() && p.y.is_finite();
        if !finite(self.arena.min)
            || !finite(self.arena.max)
            || self.arena.min.x > self.arena.max.x
            || self.arena.min.y > self.arena.max.y
        {
            return fail(SpecErrorKind::Arena);
        }
        if self.populations.is_empty() || self.node_count() == 0 {
            return fail(SpecErrorKind::EmptyDeployment);
        }
        if let WorkloadSpec::Traffic { traffic, .. } = &self.workload {
            if let Err(e) = traffic.validate() {
                return fail(SpecErrorKind::Traffic(e));
            }
            if traffic.clients > self.node_count() {
                return fail(SpecErrorKind::Traffic(format!(
                    "traffic needs {} clients but only {} nodes deployed",
                    traffic.clients,
                    self.node_count()
                )));
            }
        }
        if let Err(e) = validate_adversary(&self.adversary) {
            return fail(SpecErrorKind::Adversary(e));
        }
        if let Err(e) = self.nemesis.validate() {
            return fail(SpecErrorKind::Nemesis(e));
        }
        match &self.workload {
            WorkloadSpec::MajorityRegister { writes, rounds, .. }
                if *writes == 0 || *rounds == 0 =>
            {
                return fail(SpecErrorKind::Workload(
                    "majority-register workload needs writes >= 1 and rounds >= 1".into(),
                ));
            }
            WorkloadSpec::ViCounter { virtual_rounds, .. } if *virtual_rounds == 0 => {
                return fail(SpecErrorKind::Workload(
                    "counter workload needs at least one virtual round".into(),
                ));
            }
            _ => {}
        }
        if let WorkloadSpec::ViCounter { layout, .. } | WorkloadSpec::Traffic { layout, .. } =
            &self.workload
        {
            if let Err(e) = validate_layout(layout) {
                return fail(SpecErrorKind::Layout(e));
            }
        }
        if self.nemesis.crashes_devices() {
            if matches!(
                self.workload,
                WorkloadSpec::ChaClique { .. } | WorkloadSpec::MajorityRegister { .. }
            ) {
                return fail(SpecErrorKind::Nemesis(
                    "crash bursts need a device workload (ViCounter or Traffic)".into(),
                ));
            }
            // Victims come from the deployment tail; client ports at
            // the front are protected. A schedule asking for more than
            // the deployment can supply would silently under-crash.
            let protected = match &self.workload {
                WorkloadSpec::Traffic { traffic, .. } => traffic.clients,
                _ => 0,
            };
            let eligible = self.node_count().saturating_sub(protected);
            let victims = self.nemesis.total_victims();
            if victims > eligible {
                return fail(SpecErrorKind::Nemesis(format!(
                    "crash bursts claim {victims} victims but only {eligible} \
                     devices are eligible (client ports are protected)"
                )));
            }
        }
        let prob = |p: f64| (0.0..=1.0).contains(&p);
        if let CmSpec::Oracle {
            pre: PreStability::Random(p),
            ..
        } = self.cm
        {
            if !prob(p) {
                return fail(SpecErrorKind::Cm("CM probability outside [0, 1]".into()));
            }
        }
        let good_speed = |s: f64| s.is_finite() && s >= 0.0;
        for (i, pop) in self.populations.iter().enumerate() {
            let bad = |what: &str| {
                Err(SpecError {
                    scenario: self.name.clone(),
                    kind: SpecErrorKind::Population {
                        index: i,
                        detail: what.into(),
                    },
                })
            };
            if let PlacementSpec::Cluster { radius, .. } = pop.placement {
                if !good_speed(radius) {
                    return bad("an invalid cluster radius");
                }
            }
            match &pop.mobility {
                MobilitySpec::Waypoint { speed } if !good_speed(*speed) => {
                    return bad("an invalid speed");
                }
                MobilitySpec::Billiard { vel_x, vel_y }
                    if !vel_x.is_finite() || !vel_y.is_finite() =>
                {
                    return bad("a non-finite velocity");
                }
                MobilitySpec::PatrolRoute { route, speed } => {
                    if route.is_empty() {
                        return bad("an empty route");
                    }
                    if !good_speed(*speed) {
                        return bad("an invalid speed");
                    }
                }
                MobilitySpec::DepartAt {
                    dir_x,
                    dir_y,
                    speed,
                    ..
                } => {
                    if *dir_x == 0.0 && *dir_y == 0.0 {
                        return bad("a zero departure direction");
                    }
                    if !good_speed(*speed) {
                        return bad("an invalid speed");
                    }
                }
                _ => {}
            }
        }
        // Churn, partition, and fault windows must start inside the
        // run when its length is statically known: a window that only
        // opens after the last round describes behaviour that can
        // never happen, which in a fuzzed spec is a silent no-op
        // masquerading as a fault schedule.
        if let Some(rounds) = self.planned_rounds() {
            for (i, pop) in self.populations.iter().enumerate() {
                if pop.count > 0 && pop.spawn_at >= rounds {
                    return fail(SpecErrorKind::Window(format!(
                        "population {i} spawns at round {} but the run ends at round {rounds}",
                        pop.spawn_at
                    )));
                }
                if let Some(crash) = pop.crash_at {
                    if crash >= rounds {
                        return fail(SpecErrorKind::Window(format!(
                            "population {i} crashes at round {crash} but the run ends at \
                             round {rounds}"
                        )));
                    }
                }
            }
            if let WorkloadSpec::MajorityRegister {
                partition_from: Some(p),
                ..
            } = &self.workload
            {
                if *p >= rounds {
                    return fail(SpecErrorKind::Window(format!(
                        "partition opens at round {p} but the run ends at round {rounds}"
                    )));
                }
            }
            if let Some(start) = self.nemesis.earliest_dead_start(rounds) {
                return fail(SpecErrorKind::Window(format!(
                    "nemesis fault starts at round {start} but the run ends at round {rounds}"
                )));
            }
        }
        Ok(())
    }
}

/// Probability and window sanity over the (possibly composed)
/// adversary description — deserialized specs bypass the
/// constructors' asserts, so a hand-edited (or fuzz-mutated) JSON
/// adversary must be caught here, recursively.
fn validate_adversary(kind: &AdversaryKind) -> Result<(), String> {
    let prob = |p: f64| (0.0..=1.0).contains(&p);
    let windows_ok = |ws: &[std::ops::Range<u64>]| {
        ws.iter()
            .all(|w| w.start < w.end)
            .then_some(())
            .ok_or_else(|| String::from("adversary window inverted or empty (end <= start)"))
    };
    match kind {
        AdversaryKind::Random(d, s) if !prob(*d) || !prob(*s) => {
            Err("adversary probability outside [0, 1]".into())
        }
        AdversaryKind::BrokenDetector { drop_p, miss_p } if !prob(*drop_p) || !prob(*miss_p) => {
            Err("adversary probability outside [0, 1]".into())
        }
        AdversaryKind::Burst(windows) => windows_ok(windows),
        AdversaryKind::WindowedRandom {
            windows,
            drop_p,
            spurious_p,
        } => {
            if !prob(*drop_p) || !prob(*spurious_p) {
                return Err("adversary probability outside [0, 1]".into());
            }
            windows_ok(windows)
        }
        AdversaryKind::Compose(members) => members.iter().try_for_each(validate_adversary),
        _ => Ok(()),
    }
}

/// Geometry sanity over a virtual-node layout — `VnLayout`'s builders
/// assert, so zero-location or non-finite layouts must be rejected
/// before a sweep worker touches them.
fn validate_layout(layout: &LayoutSpec) -> Result<(), String> {
    let finite = |p: &Point| p.x.is_finite() && p.y.is_finite();
    let radius_ok = |r: f64| {
        (r.is_finite() && r > 0.0)
            .then_some(())
            .ok_or_else(|| String::from("layout region radius must be positive and finite"))
    };
    match layout {
        LayoutSpec::Grid {
            rows,
            cols,
            spacing,
            origin,
            region_radius,
        } => {
            if *rows == 0 || *cols == 0 {
                return Err("layout grid has no virtual nodes".into());
            }
            if !spacing.is_finite() || !finite(origin) {
                return Err("layout grid has non-finite spacing or origin".into());
            }
            radius_ok(*region_radius)
        }
        LayoutSpec::Explicit {
            locations,
            region_radius,
        } => {
            if locations.is_empty() {
                return Err("layout has no virtual nodes".into());
            }
            if !locations.iter().all(finite) {
                return Err("layout has a non-finite location".into());
            }
            radius_ok(*region_radius)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit".into(),
            arena: Rect::square(100.0),
            radio: RadioConfig::reliable(10.0, 20.0),
            populations: vec![PopulationSpec::fixed(
                3,
                PlacementSpec::Line {
                    start: Point::new(1.0, 1.0),
                    step_x: 0.1,
                    step_y: 0.0,
                },
            )],
            adversary: AdversaryKind::None,
            nemesis: NemesisSpec::none(),
            cm: CmSpec::perfect(),
            workload: WorkloadSpec::ChaClique { instances: 5 },
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn validate_catches_bad_probability_and_empty_deployment() {
        let mut s = spec();
        s.adversary = AdversaryKind::Random(1.5, 0.0);
        assert!(s.validate().unwrap_err().contains("probability"));
        let mut s = spec();
        s.populations.clear();
        assert!(s.validate().unwrap_err().contains("no nodes"));
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn validate_checks_nemesis_and_composed_adversaries() {
        use vi_audit::NemesisFault;
        // Crash bursts on a CHA workload are rejected (the CHA spec
        // checker quantifies over a fixed participant set).
        let mut s = spec();
        s.nemesis = NemesisSpec {
            faults: vec![NemesisFault::CrashBurst {
                at_round: 10,
                victims: 1,
            }],
        };
        assert!(s.validate().unwrap_err().contains("device workload"));
        // Over-subscribed crash bursts are rejected up front.
        let mut s = spec();
        s.workload = WorkloadSpec::ViCounter {
            layout: LayoutSpec::Explicit {
                locations: vec![Point::new(5.0, 5.0)],
                region_radius: 2.5,
            },
            virtual_rounds: 4,
        };
        s.nemesis = NemesisSpec {
            faults: vec![NemesisFault::CrashBurst {
                at_round: 10,
                victims: 99,
            }],
        };
        assert!(s.validate().unwrap_err().contains("eligible"));
        // Channel-only nemesis on CHA is fine.
        let mut s = spec();
        s.nemesis = NemesisSpec {
            faults: vec![NemesisFault::Jam { window: 5..10 }],
        };
        s.validate().expect("channel faults apply to any workload");
        // Degenerate nemesis windows are caught.
        let mut s = spec();
        s.nemesis = NemesisSpec {
            faults: vec![NemesisFault::Jam { window: 9..9 }],
        };
        assert!(s.validate().unwrap_err().contains("nemesis"));
        // Probability checks recurse into composed adversaries.
        let mut s = spec();
        s.adversary = AdversaryKind::Compose(vec![
            AdversaryKind::None,
            AdversaryKind::WindowedRandom {
                windows: vec![2..5, 9..12],
                drop_p: 2.0,
                spurious_p: 0.0,
            },
        ]);
        assert!(s.validate().unwrap_err().contains("probability"));
        // A spec with a nemesis round-trips losslessly.
        let mut s = spec();
        s.nemesis = NemesisSpec {
            faults: vec![
                NemesisFault::Jam { window: 5..10 },
                NemesisFault::DetectorChaos {
                    window: 12..20,
                    spurious_p: 0.25,
                },
            ],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn validate_rejects_dead_windows_with_typed_errors() {
        use vi_audit::NemesisFault;
        // `spec()` runs ChaClique { instances: 5 } = 15 rounds.
        let mut s = spec();
        s.populations[0].spawn_at = 15;
        let err = s.validate_typed().unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::Window(_)), "{err}");
        assert!(err.to_string().contains("spawns at round 15"), "{err}");
        let mut s = spec();
        s.populations[0].crash_at = Some(99);
        assert!(matches!(
            s.validate_typed().unwrap_err().kind,
            SpecErrorKind::Window(_)
        ));
        // Spawn/crash windows inside the run stay valid.
        let mut s = spec();
        s.populations[0].spawn_at = 3;
        s.populations[0].crash_at = Some(12);
        s.validate().expect("windows inside the run are fine");
        // A nemesis fault starting after the run ends is dead.
        let mut s = spec();
        s.nemesis = NemesisSpec {
            faults: vec![NemesisFault::Jam { window: 20..30 }],
        };
        let err = s.validate_typed().unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::Window(_)), "{err}");
        // A partition that opens after the register run ends is dead.
        let mut s = spec();
        s.workload = WorkloadSpec::MajorityRegister {
            writes: 4,
            rounds: 20,
            partition_from: Some(20),
        };
        let err = s.validate_typed().unwrap_err();
        assert!(err.to_string().contains("partition opens"), "{err}");
        // Emulation workloads have emergent length: no window check.
        let mut s = spec();
        s.populations[0].spawn_at = 10_000;
        s.workload = WorkloadSpec::ViCounter {
            layout: LayoutSpec::Explicit {
                locations: vec![Point::new(5.0, 5.0)],
                region_radius: 2.5,
            },
            virtual_rounds: 4,
        };
        s.validate()
            .expect("emergent-length workloads skip window checks");
    }

    #[test]
    // The inverted range is the point of the test: it must come back
    // as a typed validation error, not yield-nothing behaviour.
    #[allow(clippy::single_range_in_vec_init, clippy::reversed_empty_ranges)]
    fn validate_rejects_inverted_adversary_windows_and_bad_layouts() {
        let mut s = spec();
        s.adversary = AdversaryKind::Burst(vec![10..5]);
        let err = s.validate_typed().unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::Adversary(_)), "{err}");
        assert!(err.to_string().contains("inverted"), "{err}");
        let mut s = spec();
        s.adversary = AdversaryKind::Compose(vec![AdversaryKind::WindowedRandom {
            windows: vec![2..5, 9..9],
            drop_p: 0.1,
            spurious_p: 0.0,
        }]);
        assert!(s.validate().unwrap_err().contains("inverted"));
        // Zero-location and non-finite layouts are typed errors, not
        // `VnLayout` builder panics inside a sweep worker.
        let layouts = [
            LayoutSpec::Grid {
                rows: 0,
                cols: 3,
                spacing: 10.0,
                origin: Point::ORIGIN,
                region_radius: 2.5,
            },
            LayoutSpec::Explicit {
                locations: vec![],
                region_radius: 2.5,
            },
            LayoutSpec::Explicit {
                locations: vec![Point::new(f64::NAN, 0.0)],
                region_radius: 2.5,
            },
            LayoutSpec::Explicit {
                locations: vec![Point::new(5.0, 5.0)],
                region_radius: 0.0,
            },
        ];
        for layout in layouts {
            let mut s = spec();
            s.workload = WorkloadSpec::ViCounter {
                layout,
                virtual_rounds: 4,
            };
            let err = s.validate_typed().unwrap_err();
            assert!(matches!(err.kind, SpecErrorKind::Layout(_)), "{err}");
        }
        let mut s = spec();
        s.workload = WorkloadSpec::ViCounter {
            layout: LayoutSpec::Explicit {
                locations: vec![Point::new(5.0, 5.0)],
                region_radius: 2.5,
            },
            virtual_rounds: 0,
        };
        assert!(matches!(
            s.validate_typed().unwrap_err().kind,
            SpecErrorKind::Workload(_)
        ));
    }

    type SpecEdit = Box<dyn Fn(&mut ScenarioSpec)>;

    #[test]
    fn validate_catches_every_builder_panic_case() {
        // Each of these would otherwise panic inside a sweep worker
        // (mobility/placement constructor asserts, rand range panics).
        let cases: Vec<(&str, SpecEdit)> = vec![
            ("arena", Box::new(|s| s.arena.min = Point::new(50.0, 200.0))),
            (
                "arena",
                Box::new(|s| s.arena.max = Point::new(f64::NAN, 1.0)),
            ),
            (
                "speed",
                Box::new(|s| {
                    s.populations[0].mobility = MobilitySpec::PatrolRoute {
                        route: vec![Point::ORIGIN],
                        speed: -1.0,
                    }
                }),
            ),
            (
                "velocity",
                Box::new(|s| {
                    s.populations[0].mobility = MobilitySpec::Billiard {
                        vel_x: f64::NAN,
                        vel_y: 0.0,
                    }
                }),
            ),
            (
                "speed",
                Box::new(|s| {
                    s.populations[0].mobility = MobilitySpec::DepartAt {
                        dir_x: 1.0,
                        dir_y: 0.0,
                        speed: f64::INFINITY,
                        depart_at: 0,
                    }
                }),
            ),
            (
                "radius",
                Box::new(|s| {
                    s.populations[0].placement = PlacementSpec::Cluster {
                        center: Point::new(5.0, 5.0),
                        radius: -2.0,
                    }
                }),
            ),
        ];
        for (expect, break_it) in cases {
            let mut s = spec();
            break_it(&mut s);
            let err = s.validate().expect_err(expect);
            assert!(err.contains(expect), "{err} should mention {expect}");
        }
    }

    #[test]
    fn placements_stay_in_arena_and_are_deterministic() {
        let arena = Rect::square(50.0);
        for placement in [
            PlacementSpec::Uniform,
            PlacementSpec::Cluster {
                center: Point::new(25.0, 25.0),
                radius: 40.0, // overflows the arena; clamping applies
            },
            PlacementSpec::Line {
                start: Point::new(0.0, 0.0),
                step_x: 1.0,
                step_y: 0.5,
            },
        ] {
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            for i in 0..50 {
                let p = placement.position(i, arena, &mut a);
                assert!(arena.contains(p), "{placement:?} escaped: {p}");
                assert_eq!(p, placement.position(i, arena, &mut b));
            }
        }
    }

    #[test]
    fn line_placement_matches_clique_layout() {
        let arena = Rect::square(10.0);
        let mut rng = StdRng::seed_from_u64(0);
        let line = PlacementSpec::Line {
            start: Point::ORIGIN,
            step_x: 0.1,
            step_y: 0.0,
        };
        assert_eq!(
            line.position(4, arena, &mut rng),
            Point::new(0.1 * 4.0, 0.0)
        );
    }
}
