//! The deterministic parallel sweep runner.
//!
//! A sweep is a list of `(scenario, seed)` jobs. Each job is
//! self-contained — the worker thread builds the engine from the spec,
//! runs it, and extracts the outcome — so jobs never share mutable
//! state and the whole sweep parallelizes embarrassingly across
//! `std::thread` workers with no extra dependencies.
//!
//! **Determinism guarantee:** results are stored by job index, and
//! each run's randomness derives only from its own seed, so the result
//! table is byte-identical no matter how many workers execute it (a
//! property the tests assert). This is what lets multicore sweeps
//! replace the former hand-rolled sequential loops without changing a
//! single table cell.

use crate::compile::{EngineTuning, ScenarioOutcome};
use crate::spec::ScenarioSpec;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use vi_telemetry::monitor::{self, JobEvent, JobState, MonitorEvent};
use vi_telemetry::trace_export;

/// Parses a `VI_WORKERS`-style override: a positive integer (after
/// trimming) yields `Some(n)`. The second component flags a value
/// that was *present but unusable* — set, yet not a positive integer
/// — so callers can warn about the typo instead of silently falling
/// back to autodetection.
fn worker_budget_from(var: Option<&str>) -> (Option<usize>, bool) {
    let Some(raw) = var else {
        return (None, false);
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => (Some(n), false),
        _ => (None, true),
    }
}

/// Splits a runner's worker budget between across-job threads and
/// intra-round workers: `jobs` concurrent jobs on a budget of
/// `workers` threads get `(job_threads, per_job)` where `job_threads
/// <= workers` and `per_job >= 1` **always** — even when jobs ≫
/// workers, a job never receives a zero intra-round worker count (0
/// means "sequential" at the engine layer, but handing it out here
/// would silently re-trigger the budget split downstream).
fn split_worker_budget(workers: usize, jobs: usize) -> (usize, usize) {
    let job_threads = workers.min(jobs.max(1));
    let per_job = (workers / job_threads).max(1);
    (job_threads, per_job)
}

/// Fans `scenario × seed` jobs across a fixed-size worker pool.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    workers: usize,
}

impl SweepRunner {
    /// A runner with exactly `workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "sweep runner needs at least one worker");
        SweepRunner { workers }
    }

    /// A runner sized to the machine (`available_parallelism`, falling
    /// back to 1 if unknown).
    ///
    /// The `VI_WORKERS` environment variable, when set to a positive
    /// integer, overrides the detected size — the documented way for
    /// CI and benches to pin thread counts without code edits.
    pub fn auto() -> Self {
        let detected = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        let raw = std::env::var("VI_WORKERS").ok();
        let (budget, junk) = worker_budget_from(raw.as_deref());
        if junk {
            eprintln!(
                "vi-scenario: ignoring unparsable VI_WORKERS={:?} \
                 (expected a positive integer); using {detected} detected worker(s)",
                raw.unwrap_or_default()
            );
        }
        SweepRunner::new(budget.unwrap_or(detected))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every scenario with every seed (the full cross product,
    /// scenario-major) and returns the outcomes in matrix order.
    ///
    /// Specs are shared with the worker threads by reference — the
    /// matrix never clones a `ScenarioSpec`, and one pool of scoped
    /// workers drains the entire cross product.
    ///
    /// # Panics
    ///
    /// Panics if any spec fails [`ScenarioSpec::validate`].
    pub fn run_matrix(&self, scenarios: &[ScenarioSpec], seeds: &[u64]) -> Vec<ScenarioOutcome> {
        self.run_matrix_with(scenarios, seeds, EngineTuning::DEFAULT)
    }

    /// [`SweepRunner::run_matrix`] with the engine round path pinned
    /// (see [`ScenarioSpec::run_tuned`]): `legacy_engine` routes every
    /// job through the pre-overhaul engine path. Outcomes are
    /// byte-identical either way; the E18 `metropolis` experiment uses
    /// this to time old-vs-new on identical matrices.
    pub fn run_matrix_tuned(
        &self,
        scenarios: &[ScenarioSpec],
        seeds: &[u64],
        legacy_engine: bool,
    ) -> Vec<ScenarioOutcome> {
        self.run_matrix_with(
            scenarios,
            seeds,
            EngineTuning {
                legacy_engine,
                ..EngineTuning::DEFAULT
            },
        )
    }

    /// [`SweepRunner::run_matrix`] with full [`EngineTuning`] — the
    /// one knob sharing the runner's worker budget between across-job
    /// and intra-round parallelism:
    ///
    /// * `tuning.workers == 0` (the default) splits the budget —
    ///   each concurrent job gets `workers / concurrent_jobs`
    ///   (at least 1) intra-round workers;
    /// * `tuning.workers >= 1` pins every job to exactly that many
    ///   intra-round workers on top of the across-job threads.
    ///
    /// Outcomes are byte-identical under every tuning.
    pub fn run_matrix_with(
        &self,
        scenarios: &[ScenarioSpec],
        seeds: &[u64],
        tuning: EngineTuning,
    ) -> Vec<ScenarioOutcome> {
        let jobs: Vec<(&ScenarioSpec, u64)> = scenarios
            .iter()
            .flat_map(|s| seeds.iter().map(move |&seed| (s, seed)))
            .collect();
        self.run_borrowed(&jobs, tuning)
    }

    /// Runs an explicit (owned) job list; `results[i]` is the outcome
    /// of `jobs[i]` regardless of which worker executed it.
    ///
    /// # Panics
    ///
    /// Panics if any spec fails [`ScenarioSpec::validate`].
    pub fn run(&self, jobs: &[(ScenarioSpec, u64)]) -> Vec<ScenarioOutcome> {
        self.run_with(jobs, EngineTuning::DEFAULT)
    }

    /// [`SweepRunner::run`] with full [`EngineTuning`] (budget-sharing
    /// semantics as in [`SweepRunner::run_matrix_with`]). The fuzz
    /// orchestrator drives its candidate batches through this with
    /// telemetry on, so every outcome carries the counter profile the
    /// coverage signature buckets.
    ///
    /// # Panics
    ///
    /// Panics if any spec fails [`ScenarioSpec::validate`].
    pub fn run_with(
        &self,
        jobs: &[(ScenarioSpec, u64)],
        tuning: EngineTuning,
    ) -> Vec<ScenarioOutcome> {
        let borrowed: Vec<(&ScenarioSpec, u64)> =
            jobs.iter().map(|(spec, seed)| (spec, *seed)).collect();
        self.run_borrowed(&borrowed, tuning)
    }

    /// The worker-pool core every public entry point funnels into:
    /// jobs borrow their specs (scoped threads), results land by job
    /// index, determinism is per-seed.
    fn run_borrowed(
        &self,
        jobs: &[(&ScenarioSpec, u64)],
        tuning: EngineTuning,
    ) -> Vec<ScenarioOutcome> {
        for (spec, _) in jobs {
            if let Err(e) = spec.validate() {
                panic!("invalid scenario spec: {e}");
            }
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ScenarioOutcome>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let (job_threads, split) = split_worker_budget(self.workers, jobs.len());
        // Budget sharing: with no explicit intra-round worker count,
        // divide this runner's budget across the concurrent jobs.
        let per_job = match tuning.workers {
            0 => split,
            w => w,
        };
        let job_tuning = EngineTuning {
            workers: per_job,
            ..tuning
        };
        // Span collection is strictly wall-clock-side: when tracing is
        // off this is one cached atomic load per sweep, and nothing
        // below touches deterministic state either way.
        let tracing = trace_export::tracing_enabled();
        // Sweep progress events (also wall-clock-side): every queued
        // job is announced up front in job order, workers report
        // started/finished as they go. Events carry the deterministic
        // job index and the outcome digest, so a consumer ordering by
        // `(job, state)` sees the same sequence at any worker count.
        let monitored = monitor::have_sinks();
        if monitored {
            for (i, (spec, seed)) in jobs.iter().enumerate() {
                monitor::emit_global(&MonitorEvent::Job(JobEvent {
                    job: i as u64,
                    scenario: spec.name.clone(),
                    seed: *seed,
                    state: JobState::Queued,
                }));
            }
        }
        std::thread::scope(|scope| {
            let next = &next;
            let slots = &slots;
            for w in 0..job_threads {
                scope.spawn(move || {
                    let worker_start = tracing.then(trace_export::now_us);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((spec, seed)) = jobs.get(i) else {
                            break;
                        };
                        let job_start = tracing.then(trace_export::now_us);
                        if monitored {
                            monitor::emit_global(&MonitorEvent::Job(JobEvent {
                                job: i as u64,
                                scenario: spec.name.clone(),
                                seed: *seed,
                                state: JobState::Started,
                            }));
                        }
                        let outcome = spec.run_with(*seed, job_tuning);
                        if monitored {
                            let digest = serde_json::to_string(&outcome)
                                .map(|json| monitor::outcome_digest(json.as_bytes()))
                                .unwrap_or(0);
                            monitor::emit_global(&MonitorEvent::Job(JobEvent {
                                job: i as u64,
                                scenario: spec.name.clone(),
                                seed: *seed,
                                state: JobState::Finished { digest },
                            }));
                        }
                        if let Some(start) = job_start {
                            trace_export::record_span(
                                &format!("{}#{seed}", spec.name),
                                "sweep",
                                trace_export::PID_SWEEP,
                                w as u64,
                                start,
                                trace_export::now_us().saturating_sub(start),
                            );
                        }
                        *slots[i].lock().expect("result slot") = Some(outcome);
                    }
                    if let Some(start) = worker_start {
                        trace_export::record_span(
                            "sweep-worker",
                            "sweep",
                            trace_export::PID_SWEEP,
                            w as u64,
                            start,
                            trace_export::now_us().saturating_sub(start),
                        );
                    }
                });
            }
        });
        // Batch entry point: when `VI_TRACE` is set, every finished
        // sweep flushes what it collected (later sweeps append to the
        // same file path, last writer wins — fine for the one-shot
        // bench/CI usage this serves).
        if trace_export::env_trace_path().is_some() {
            trace_export::flush_env();
        }
        if monitored {
            monitor::flush_global();
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every job ran")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CmSpec, PlacementSpec, PopulationSpec, WorkloadSpec};
    use vi_radio::geometry::{Point, Rect};
    use vi_radio::{AdversaryKind, RadioConfig};

    fn small_matrix() -> Vec<ScenarioSpec> {
        let clique = ScenarioSpec {
            name: "r-clique".into(),
            arena: Rect::square(10.0),
            radio: RadioConfig::reliable(10.0, 20.0),
            populations: vec![PopulationSpec::fixed(
                4,
                PlacementSpec::Line {
                    start: Point::ORIGIN,
                    step_x: 0.1,
                    step_y: 0.0,
                },
            )],
            adversary: AdversaryKind::None,
            nemesis: vi_audit::NemesisSpec::none(),
            cm: CmSpec::perfect(),
            workload: WorkloadSpec::ChaClique { instances: 15 },
        };
        let mut lossy = clique.clone();
        lossy.name = "r-lossy".into();
        lossy.radio = RadioConfig::stabilizing(10.0, 20.0, 30);
        lossy.adversary = AdversaryKind::Random(0.4, 0.2);
        lossy.populations[0].placement = PlacementSpec::Cluster {
            center: Point::new(5.0, 5.0),
            radius: 0.5,
        };
        vec![clique, lossy]
    }

    /// Satellite requirement: the same `scenario × seed` matrix run
    /// with 1 worker and N workers yields byte-identical result
    /// tables.
    #[test]
    fn worker_count_never_changes_the_result_table() {
        let scenarios = small_matrix();
        let seeds = [1u64, 2, 3];
        let sequential = SweepRunner::new(1).run_matrix(&scenarios, &seeds);
        for workers in [2usize, 4, 7] {
            let parallel = SweepRunner::new(workers).run_matrix(&scenarios, &seeds);
            assert_eq!(
                serde_json::to_string(&sequential).unwrap(),
                serde_json::to_string(&parallel).unwrap(),
                "{workers} workers changed the table"
            );
        }
    }

    /// Pinning intra-round workers is also invisible in the table —
    /// small specs stay below the shard threshold (the auto-fallback),
    /// and the engaged-scale identity is covered by the differential
    /// proptests and the E18 smoke.
    #[test]
    fn intra_round_workers_never_change_the_result_table() {
        let scenarios = small_matrix();
        let seeds = [1u64, 2];
        let baseline = SweepRunner::new(1).run_matrix(&scenarios, &seeds);
        for workers in [1usize, 3] {
            let tuned = SweepRunner::new(2).run_matrix_with(
                &scenarios,
                &seeds,
                EngineTuning::with_workers(workers),
            );
            assert_eq!(
                serde_json::to_string(&baseline).unwrap(),
                serde_json::to_string(&tuned).unwrap(),
                "{workers} intra-round workers changed the table"
            );
        }
    }

    /// Satellite requirement: junk `VI_WORKERS` values are ignored
    /// *and flagged* (so `auto()` warns instead of silently falling
    /// back); valid and absent values raise no flag.
    #[test]
    fn worker_budget_parsing_ignores_and_flags_junk() {
        assert_eq!(worker_budget_from(Some("4")), (Some(4), false));
        assert_eq!(worker_budget_from(Some(" 12\n")), (Some(12), false));
        assert_eq!(
            worker_budget_from(Some("0")),
            (None, true),
            "zero is not a budget"
        );
        assert_eq!(worker_budget_from(Some("-3")), (None, true));
        assert_eq!(worker_budget_from(Some("four")), (None, true));
        assert_eq!(worker_budget_from(Some("")), (None, true));
        assert_eq!(worker_budget_from(None), (None, false), "unset is not junk");
    }

    /// Satellite requirement: the worker-budget split hands every job
    /// at least one intra-round worker, even when jobs ≫ workers (a
    /// naive `workers / jobs` computes 0 there, which the engine layer
    /// would reinterpret as "split the budget" instead of
    /// "sequential").
    #[test]
    fn worker_budget_split_clamps_to_one_when_jobs_exceed_workers() {
        assert_eq!(split_worker_budget(4, 100), (4, 1), "jobs ≫ workers");
        assert_eq!(split_worker_budget(1, 64), (1, 1));
        assert_eq!(split_worker_budget(8, 2), (2, 4), "budget splits");
        assert_eq!(split_worker_budget(8, 3), (3, 2));
        assert_eq!(split_worker_budget(16, 0), (1, 16), "empty job list");
        for workers in 1..=32usize {
            for jobs in 0..=64usize {
                let (job_threads, per_job) = split_worker_budget(workers, jobs);
                assert!(job_threads >= 1, "{workers}w/{jobs}j");
                assert!(job_threads <= workers, "{workers}w/{jobs}j");
                assert!(per_job >= 1, "{workers}w/{jobs}j: zero per-job");
                assert!(
                    job_threads * per_job <= workers,
                    "{workers}w/{jobs}j oversubscribes"
                );
            }
        }
    }

    /// A jobs ≫ workers sweep end-to-end: every job still runs (and
    /// deterministically), with each receiving a clamped ≥1 worker.
    #[test]
    fn jobs_exceeding_workers_sweep_cleanly() {
        let scenarios = small_matrix();
        let seeds: Vec<u64> = (1..=6).collect();
        // 2 scenarios × 6 seeds = 12 jobs on 2 workers.
        let narrow = SweepRunner::new(2).run_matrix(&scenarios, &seeds);
        let wide = SweepRunner::new(8).run_matrix(&scenarios, &seeds);
        assert_eq!(narrow.len(), 12);
        assert_eq!(
            serde_json::to_string(&narrow).unwrap(),
            serde_json::to_string(&wide).unwrap(),
            "jobs ≫ workers changed the table"
        );
    }

    /// Tentpole requirement: telemetry counters are part of the
    /// deterministic surface — the same matrix run with 1 worker and
    /// N workers yields identical counter sets (wall-clock phase
    /// stats are excluded from `TelemetrySummary` equality), and
    /// stripping the telemetry field recovers the telemetry-off table
    /// byte for byte.
    #[test]
    fn telemetry_counters_are_worker_count_invariant() {
        let scenarios = small_matrix();
        let seeds = [1u64, 2, 3];
        let tuning = EngineTuning::DEFAULT.with_telemetry();
        let sequential = SweepRunner::new(1).run_matrix_with(&scenarios, &seeds, tuning);
        for out in &sequential {
            let summary = out.telemetry.as_ref().expect("telemetry enabled");
            assert!(summary.counters.rounds_total > 0, "rounds were counted");
        }
        for workers in [2usize, 4, 7] {
            let parallel = SweepRunner::new(workers).run_matrix_with(&scenarios, &seeds, tuning);
            for (a, b) in sequential.iter().zip(&parallel) {
                assert_eq!(
                    a.telemetry, b.telemetry,
                    "{workers} workers changed the counters of {}#{}",
                    a.scenario, a.seed
                );
            }
        }
        // Telemetry must observe, never perturb: strip the summary and
        // the table matches a plain run exactly.
        let plain = SweepRunner::new(1).run_matrix(&scenarios, &seeds);
        let stripped: Vec<ScenarioOutcome> = sequential
            .iter()
            .map(|o| {
                let mut o = o.clone();
                o.telemetry = None;
                o
            })
            .collect();
        assert_eq!(
            serde_json::to_string(&stripped).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "telemetry changed the simulation"
        );
    }

    #[test]
    fn matrix_order_is_scenario_major() {
        let scenarios = small_matrix();
        let out = SweepRunner::new(3).run_matrix(&scenarios, &[5, 6]);
        let labels: Vec<(String, u64)> = out.iter().map(|o| (o.scenario.clone(), o.seed)).collect();
        assert_eq!(
            labels,
            vec![
                ("r-clique".to_string(), 5),
                ("r-clique".to_string(), 6),
                ("r-lossy".to_string(), 5),
                ("r-lossy".to_string(), 6),
            ]
        );
    }

    #[test]
    fn empty_matrix_is_fine() {
        assert!(SweepRunner::new(4).run(&[]).is_empty());
    }

    #[test]
    fn empty_scenario_list_yields_empty_table() {
        let out = SweepRunner::new(3).run_matrix(&[], &[1, 2, 3]);
        assert!(out.is_empty(), "no scenarios → no rows");
    }

    #[test]
    fn zero_seeds_yield_empty_table() {
        let out = SweepRunner::new(3).run_matrix(&small_matrix(), &[]);
        assert!(out.is_empty(), "no seeds → no rows");
    }

    #[test]
    fn more_workers_than_jobs_is_clean() {
        let scenarios = small_matrix();
        // 2 scenarios × 1 seed = 2 jobs on 16 workers: the surplus
        // workers must exit cleanly and the table must match the
        // single-worker run.
        let wide = SweepRunner::new(16).run_matrix(&scenarios, &[4]);
        let narrow = SweepRunner::new(1).run_matrix(&scenarios, &[4]);
        assert_eq!(wide.len(), 2);
        assert_eq!(
            serde_json::to_string(&wide).unwrap(),
            serde_json::to_string(&narrow).unwrap(),
            "surplus workers must not change the table"
        );
    }

    #[test]
    #[should_panic(expected = "invalid scenario spec")]
    fn invalid_specs_are_rejected_up_front() {
        let mut bad = small_matrix().remove(0);
        bad.populations.clear();
        let _ = SweepRunner::new(1).run(&[(bad, 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let _ = SweepRunner::new(0);
    }
}
