//! Self-contained incident bundles: the flight recorder's crash dump.
//!
//! When a run ends badly — an audit checker finds a violation, client
//! traffic stalls completely, or the compiler panics mid-run — the
//! last-K-rounds flight window, the causal summary, and everything
//! needed to re-execute the run byte-identically are dumped into one
//! JSON [`IncidentBundle`]. `vi-bench --replay bundle.json` (or
//! [`IncidentBundle::replay`] programmatically) re-runs the bundled
//! `(scenario, seed, tuning)` and must reproduce the identical
//! [`ScenarioOutcome`], audit verdict included, at any worker count.

use std::path::Path;

use serde::{Deserialize, Serialize};
use vi_audit::AuditReport;
use vi_telemetry::{CausalSummary, RoundWindow};

use crate::compile::{EngineTuning, ScenarioOutcome};
use crate::spec::ScenarioSpec;

/// Bundle format version (bumped on incompatible schema changes).
pub const BUNDLE_VERSION: u64 = 1;

/// Why the bundle was dumped.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentReason {
    /// An audit checker reported a consistency violation.
    Violation,
    /// Clients issued operations but none ever completed.
    LivenessStall,
    /// The run panicked.
    Panic {
        /// The panic payload, if it was a string.
        message: String,
    },
}

/// A self-contained crash/violation dump: the scenario, the seed, the
/// telemetry tuning that was active, the retained flight window, the
/// causal summary with the witness's span slice, and the audit report
/// that triggered the dump. Everything is plain serializable data, so
/// a bundle written on one machine replays anywhere.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IncidentBundle {
    /// Format version ([`BUNDLE_VERSION`]).
    pub version: u64,
    /// The full scenario that produced the incident.
    pub scenario: ScenarioSpec,
    /// The run seed.
    pub seed: u64,
    /// Whether causal tracing was on (replay re-enables it).
    pub tracing: bool,
    /// Flight-recorder window size in rounds (replay re-enables it).
    pub flight_rounds: u64,
    /// Why the dump fired.
    pub reason: IncidentReason,
    /// The retained last-K-rounds event window.
    pub flight: Vec<RoundWindow>,
    /// The causal DAG + decision timelines, when tracing was on.
    pub causal: Option<CausalSummary>,
    /// Causal span ids of the operations implicated by the audit
    /// witness (the "causal slice": join the audit's `witness_ops`
    /// against the summary's `op_spans`). Empty without tracing or
    /// without a violation witness.
    pub witness_spans: Vec<u64>,
    /// The audit report that triggered the dump, if any.
    pub audit: Option<AuditReport>,
}

impl IncidentBundle {
    /// Assembles a bundle from a finished (or panicking) run. The
    /// witness slice is computed here: every op id named by a failed
    /// check's witness is joined against the causal op→span table.
    pub fn assemble(
        scenario: &ScenarioSpec,
        seed: u64,
        tuning: EngineTuning,
        reason: IncidentReason,
        flight: Vec<RoundWindow>,
        causal: Option<CausalSummary>,
        audit: Option<AuditReport>,
    ) -> Self {
        let witness_spans = match (&causal, &audit) {
            (Some(c), Some(report)) => report
                .checks
                .iter()
                .flat_map(|check| check.witness_ops.iter())
                .filter_map(|op| c.op_spans.get(op).copied())
                .collect(),
            _ => Vec::new(),
        };
        IncidentBundle {
            version: BUNDLE_VERSION,
            scenario: scenario.clone(),
            seed,
            tracing: tuning.tracing,
            flight_rounds: tuning.flight_rounds as u64,
            reason,
            flight,
            causal,
            witness_spans,
            audit,
        }
    }

    /// The engine tuning a replay must run under (worker count is a
    /// free choice — outcomes are worker-count invariant).
    pub fn replay_tuning(&self, workers: usize) -> EngineTuning {
        EngineTuning {
            workers,
            tracing: self.tracing,
            flight_rounds: self.flight_rounds as usize,
            ..EngineTuning::DEFAULT
        }
    }

    /// Re-executes the bundled `(scenario, seed)` under the bundled
    /// telemetry tuning and returns the outcome. A faithful bundle
    /// reproduces the original incident byte-identically: same audit
    /// verdict, same flight window, same causal summary.
    pub fn replay(&self, workers: usize) -> ScenarioOutcome {
        self.scenario
            .run_with(self.seed, self.replay_tuning(workers))
    }

    /// Serializes the bundle to JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (bundles are plain finite data,
    /// so it cannot).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("incident bundles serialize")
    }

    /// Parses a bundle from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the parse failure.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let bundle: IncidentBundle =
            serde_json::from_str(json).map_err(|e| format!("incident bundle: {e}"))?;
        if bundle.version != BUNDLE_VERSION {
            return Err(format!(
                "incident bundle: version {} (this build reads {BUNDLE_VERSION})",
                bundle.version
            ));
        }
        Ok(bundle)
    }

    /// Writes the bundle as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a bundle from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn load(path: &Path) -> Result<Self, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("incident bundle {}: {e}", path.display()))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn violating_bundle() -> IncidentBundle {
        let spec = catalog::scenario("broken_majority").expect("catalog scenario");
        let tuning = EngineTuning::DEFAULT.with_tracing().with_flight(8);
        let out = spec.run_with(1, tuning);
        out.incident.expect("violation must dump a bundle")
    }

    #[test]
    fn bundle_round_trips_and_replays_identically() {
        let bundle = violating_bundle();
        assert_eq!(bundle.version, BUNDLE_VERSION);
        assert_eq!(bundle.reason, IncidentReason::Violation);
        assert!(!bundle.flight.is_empty(), "flight window retained");
        assert!(bundle.causal.is_some(), "tracing was on");
        let report = bundle.audit.as_ref().expect("audit triggered the dump");
        assert!(!report.ok());
        let json = bundle.to_json();
        let back = IncidentBundle::from_json(&json).expect("parses");
        assert_eq!(back, bundle);
        let replay = back.replay(1);
        assert_eq!(replay.audit, bundle.audit, "same verdict on replay");
        assert_eq!(
            replay.incident.as_ref().expect("replay re-dumps"),
            &bundle,
            "replay reproduces the bundle byte-identically"
        );
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bundle = violating_bundle();
        bundle.version = BUNDLE_VERSION + 1;
        let err = IncidentBundle::from_json(&bundle.to_json()).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }
}
