//! # vi-core
//!
//! The primary contribution of *Chockler, Gilbert, Lynch: "Virtual
//! Infrastructure for Collision-Prone Wireless Networks"* (PODC 2008):
//!
//! * [`cha`] — **convergent history agreement** (Section 3): the
//!   problem definition, the three-phase CHAP protocol of Figure 1,
//!   the checkpoint/garbage-collection variant of Section 3.5, and a
//!   trace checker for the Validity / Agreement / Liveness
//!   specification.
//! * [`vi`] — **virtual infrastructure emulation** (Section 4):
//!   deterministic virtual-node automata, the non-conflicting
//!   broadcast schedule, the eleven-phase virtual round, the
//!   join/join-ack/reset sub-protocol, and the client runtime.

pub mod cha;
pub mod vi;
