//! Radio adapter: runs [`ChaProtocol`] over the simulated channel.
//!
//! One CHAP instance occupies three consecutive rounds (ballot,
//! veto-1, veto-2 — `round % 3` selects the phase), matching the
//! Section 3 setting: a single region in which all `n` nodes stay
//! within `R1/2` of a fixed location and share one leader-election
//! contention manager.

use crate::cha::history::Ballot;
use crate::cha::protocol::{ChaMessage, ChaOutput, ChaProtocol, Phase};
use std::any::Any;
use vi_contention::{ChannelFeedback, CmSlot, SharedCm};
use vi_radio::{Process, RoundCtx, RoundReception};
use vi_telemetry::CausalRecorder;

/// Supplies the proposal for each instance (Figure 1's `propose(k)`
/// input). In the virtual-infrastructure emulation the proposal is the
/// set of messages a replica believes the virtual node received; in
/// the Section 3 experiments it is a test value.
pub trait Proposer<V>: 'static {
    /// The value this node proposes for `instance`.
    fn propose(&mut self, instance: u64) -> V;
}

impl<V, F: FnMut(u64) -> V + 'static> Proposer<V> for F {
    fn propose(&mut self, instance: u64) -> V {
        self(instance)
    }
}

/// A proposer producing `instance * 1_000_000 + tag`: values are
/// per-node distinguishable and totally ordered, so checkers can
/// verify Validity (every decided value traces back to some node's
/// proposal).
#[derive(Clone, Copy, Debug)]
pub struct TaggedProposer {
    tag: u64,
}

impl TaggedProposer {
    /// Creates a proposer with the given node tag (`tag <
    /// 1_000_000`).
    pub fn new(tag: u64) -> Self {
        assert!(tag < 1_000_000, "tag must fit below the instance stride");
        TaggedProposer { tag }
    }

    /// Decodes a proposed value back into `(instance, tag)`.
    pub fn decode(value: u64) -> (u64, u64) {
        (value / 1_000_000, value % 1_000_000)
    }
}

impl Proposer<u64> for TaggedProposer {
    fn propose(&mut self, instance: u64) -> u64 {
        instance * 1_000_000 + self.tag
    }
}

/// One CHAP participant wired to the radio engine and a shared
/// contention manager.
pub struct ChaNode<V> {
    protocol: ChaProtocol<V>,
    proposer: Box<dyn Proposer<V>>,
    cm: SharedCm,
    slot: CmSlot,
    /// Whether this node has reached its first ballot phase (nodes
    /// spawning mid-instance wait for the next instance boundary).
    synced: bool,
    /// Whether the node broadcast in the current ballot phase (for
    /// contention-manager feedback).
    was_active: bool,
    outputs: Vec<ChaOutput<V>>,
    proposals: Vec<(u64, V)>,
    /// Causal-tracing handle (null by default): propose/decide spans
    /// form the per-instance prev-chain of the causal DAG.
    causal: CausalRecorder,
    /// This node's tag in causal spans (the simulator node index).
    causal_node: u64,
}

impl<V: Clone + Ord + 'static> ChaNode<V> {
    /// Creates a participant that runs from instance 1. `cm` must be
    /// the manager shared by all nodes of this region; the node
    /// registers itself.
    ///
    /// Nodes spawning mid-execution **must not** use this constructor:
    /// without the early ballots they cannot reconstruct histories
    /// (the Section 3 model fixes the participant set up front; late
    /// arrival requires the Section 4 join protocol's state transfer —
    /// use [`ChaNode::from_checkpoint`]).
    pub fn new(proposer: Box<dyn Proposer<V>>, cm: SharedCm) -> Self {
        Self::with_protocol(ChaProtocol::new(), proposer, cm)
    }

    /// Creates a participant resuming from transferred state: the
    /// decided prefix up to `checkpoint` is summarized externally and
    /// the cluster is about to start `next_instance + 1` (see
    /// [`ChaProtocol::from_checkpoint`]).
    pub fn from_checkpoint(
        checkpoint: u64,
        next_instance: u64,
        proposer: Box<dyn Proposer<V>>,
        cm: SharedCm,
    ) -> Self {
        Self::with_protocol(
            ChaProtocol::from_checkpoint(checkpoint, next_instance),
            proposer,
            cm,
        )
    }

    fn with_protocol(
        protocol: ChaProtocol<V>,
        proposer: Box<dyn Proposer<V>>,
        cm: SharedCm,
    ) -> Self {
        let slot = cm.register();
        ChaNode {
            protocol,
            proposer,
            cm,
            slot,
            synced: false,
            was_active: false,
            outputs: Vec::new(),
            proposals: Vec::new(),
            causal: CausalRecorder::disabled(),
            causal_node: 0,
        }
    }

    /// Installs a causal-tracing recorder; `node` tags this
    /// participant's propose/decide spans (use the simulator node
    /// index so spans line up with the engine's broadcast spans).
    pub fn set_causal(&mut self, causal: CausalRecorder, node: u64) {
        self.causal = causal;
        self.causal_node = node;
    }

    /// The per-instance outputs produced so far, in instance order.
    pub fn outputs(&self) -> &[ChaOutput<V>] {
        &self.outputs
    }

    /// The proposals this node made, as `(instance, value)`.
    pub fn proposals(&self) -> &[(u64, V)] {
        &self.proposals
    }

    /// The underlying protocol state (for inspection).
    pub fn protocol(&self) -> &ChaProtocol<V> {
        &self.protocol
    }

    /// Mutable protocol access (used by garbage-collection drivers).
    pub fn protocol_mut(&mut self) -> &mut ChaProtocol<V> {
        &mut self.protocol
    }
}

impl<V: Clone + Ord + vi_radio::WireSized + 'static> Process<ChaMessage<V>> for ChaNode<V> {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<ChaMessage<V>> {
        match Phase::of_round(ctx.round) {
            Phase::Ballot => {
                self.synced = true;
                let instance = self.protocol.instance() + 1;
                let proposal = self.proposer.propose(instance);
                self.proposals.push((instance, proposal.clone()));
                let ballot = self.protocol.begin_instance(proposal);
                self.causal.propose(self.causal_node, instance);
                let advice = self.cm.contend(self.slot, ctx.round, ctx.pos);
                self.was_active = advice.is_active();
                self.was_active.then_some(ChaMessage::Ballot(ballot))
            }
            Phase::Veto1 if self.synced => {
                self.protocol.veto1_broadcast().then_some(ChaMessage::Veto)
            }
            Phase::Veto2 if self.synced => {
                self.protocol.veto2_broadcast().then_some(ChaMessage::Veto)
            }
            _ => None,
        }
    }

    fn deliver(&mut self, ctx: &RoundCtx, rx: RoundReception<'_, ChaMessage<V>>) {
        if !self.synced {
            return;
        }
        let veto_heard = rx.messages.iter().any(|m| matches!(m, ChaMessage::Veto));
        match Phase::of_round(ctx.round) {
            Phase::Ballot => {
                let ballots: Vec<Ballot<V>> = rx
                    .messages
                    .iter()
                    .filter_map(|m| match m {
                        ChaMessage::Ballot(b) => Some(b.clone()),
                        ChaMessage::Veto => None,
                    })
                    .collect();
                let feedback = if self.was_active {
                    if rx.collision {
                        ChannelFeedback::TxCollided
                    } else {
                        ChannelFeedback::TxSucceeded
                    }
                } else if rx.collision {
                    ChannelFeedback::HeardCollision
                } else if !ballots.is_empty() {
                    ChannelFeedback::HeardOther
                } else {
                    ChannelFeedback::Quiet
                };
                self.cm.observe(self.slot, ctx.round, feedback);
                self.protocol.on_ballot_phase(&ballots, rx.collision);
            }
            Phase::Veto1 => self.protocol.on_veto1_phase(veto_heard, rx.collision),
            Phase::Veto2 => {
                let out = self.protocol.on_veto2_phase(veto_heard, rx.collision);
                if out.decided() {
                    self.causal.decide(self.causal_node, out.instance);
                }
                self.outputs.push(out);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cha::history::Color;
    use vi_contention::OracleCm;
    use vi_radio::geometry::Point;
    use vi_radio::mobility::Static;
    use vi_radio::{Engine, EngineConfig, NodeSpec, RadioConfig};

    fn clique(n: usize) -> (Engine<ChaMessage<u64>>, Vec<vi_radio::NodeId>, SharedCm) {
        let mut engine = Engine::new(EngineConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            seed: 1,
            record_trace: false,
        });
        let cm = SharedCm::new(OracleCm::perfect());
        let ids = (0..n)
            .map(|i| {
                engine.add_node(NodeSpec::new(
                    Box::new(Static::new(Point::new(i as f64 * 0.5, 0.0))),
                    Box::new(ChaNode::new(
                        Box::new(TaggedProposer::new(i as u64)),
                        cm.clone(),
                    )),
                ))
            })
            .collect();
        (engine, ids, cm)
    }

    #[test]
    fn reliable_clique_decides_every_instance() {
        let (mut engine, ids, _cm) = clique(4);
        engine.run(30); // 10 instances
        for &id in &ids {
            let node: &ChaNode<u64> = engine.process(id).unwrap();
            assert_eq!(node.outputs().len(), 10);
            // After the oracle's one-round bootstrap, every instance
            // is green (instance 1 may bootstrap the leader).
            for out in &node.outputs()[1..] {
                assert_eq!(out.color, Color::Green, "instance {}", out.instance);
                assert!(out.decided());
            }
        }
    }

    #[test]
    fn decided_values_come_from_the_leader() {
        let (mut engine, ids, _cm) = clique(3);
        engine.run(30);
        let node: &ChaNode<u64> = engine.process(ids[1]).unwrap();
        let last = node.outputs().last().unwrap();
        let h = last.history.as_ref().unwrap();
        for (instance, v) in h.iter() {
            let (inst, tag) = TaggedProposer::decode(*v);
            assert_eq!(inst, instance, "value proposed for its own instance");
            assert_eq!(tag, 0, "oracle leader is the lowest slot");
        }
    }

    #[test]
    fn all_nodes_decide_identical_histories() {
        let (mut engine, ids, _cm) = clique(5);
        engine.run(60);
        let histories: Vec<_> = ids
            .iter()
            .map(|&id| {
                let node: &ChaNode<u64> = engine.process(id).unwrap();
                node.outputs().last().unwrap().history.clone().unwrap()
            })
            .collect();
        for h in &histories[1..] {
            assert_eq!(h, &histories[0]);
        }
    }

    #[test]
    fn late_spawner_with_state_transfer_syncs_to_instance_boundary() {
        let (mut engine, ids, cm) = clique(2);
        // Spawns mid-instance (round 4 is a veto-1 phase) with a
        // checkpoint transferred as of instance 2 (what the Section 4
        // join protocol would hand over): it waits for the round-6
        // ballot phase and participates from instance 3.
        let late = engine.add_node(
            NodeSpec::new(
                Box::new(Static::new(Point::new(2.0, 0.0))),
                Box::new(ChaNode::from_checkpoint(
                    2,
                    2,
                    Box::new(TaggedProposer::new(99)),
                    cm,
                )),
            )
            .spawn_at(4),
        );
        engine.run(12);
        let node: &ChaNode<u64> = engine.process(late).unwrap();
        // Instances 3 and 4 completed by round 12, decided green, and
        // its suffix histories agree with the veterans'.
        assert_eq!(node.outputs().len(), 2);
        assert!(node.outputs().iter().all(|o| o.decided()));
        let veteran: &ChaNode<u64> = engine.process(ids[0]).unwrap();
        let vh = veteran.outputs().last().unwrap().history.as_ref().unwrap();
        let jh = node.outputs().last().unwrap().history.as_ref().unwrap();
        for k in 3..=4 {
            assert_eq!(vh.get(k), jh.get(k), "suffix agreement at {k}");
        }
    }

    #[test]
    fn tagged_proposer_roundtrip() {
        let mut p = TaggedProposer::new(42);
        let v = p.propose(17);
        assert_eq!(TaggedProposer::decode(v), (17, 42));
    }

    #[test]
    #[should_panic(expected = "tag must fit")]
    fn tagged_proposer_rejects_huge_tag() {
        let _ = TaggedProposer::new(1_000_000);
    }
}
