//! Convergent history agreement (Section 3 of the paper).
//!
//! * [`history`] — colors, ballots, histories, `calculate-history`.
//! * [`protocol`] — the pure CHAP state machine (Figure 1).
//! * [`process`] — the radio adapter running CHAP on the simulator.
//! * [`checkpoint`] — the Section 3.5 garbage-collected variant.
//! * [`spec`] — a trace checker for the Section 3.2 problem
//!   definition (Validity, Agreement, Liveness) and Property 4.

pub mod checkpoint;
pub mod history;
pub mod process;
pub mod protocol;
pub mod spec;

pub use checkpoint::CheckpointCha;
pub use history::{calculate_history, Ballot, Color, History};
pub use process::{ChaNode, Proposer, TaggedProposer};
pub use protocol::{ChaMessage, ChaOutput, ChaProtocol, Phase};
pub use spec::{ChaSpecChecker, SpecViolation};
