//! Trace checker for the CHA problem definition (Section 3.2) and
//! Property 4.
//!
//! The checker collects every proposal, output, and final color from
//! an execution and verifies:
//!
//! * **Validity** — every value included in any output history was
//!   proposed for the corresponding instance by some node;
//! * **Agreement** — any two output histories coincide (values *and*
//!   ⊥-placement) on the prefix up to the smaller output instance;
//! * **Liveness** — there is an instance `kst` from which every
//!   non-failed node outputs a history including every instance in
//!   `[kst, k]`;
//! * **Property 4** — for each instance, the colors chosen by
//!   different nodes differ by at most one shade.
//!
//! Agreement is checked in `O(m · len)` by exploiting transitivity:
//! prefix-agreement between histories sorted by output instance is
//! equivalent to pairwise agreement (an exhaustive quadratic checker
//! is provided for cross-validation in property tests).

use crate::cha::history::{Color, History};
use crate::cha::protocol::ChaOutput;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A violation of the CHA specification found in a trace.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecViolation {
    /// An output history contains a value nobody proposed.
    Validity {
        /// Node whose output is invalid.
        node: usize,
        /// Output instance.
        output_instance: u64,
        /// History entry containing the foreign value.
        entry_instance: u64,
    },
    /// Two output histories disagree on their common prefix.
    Agreement {
        /// First (node, output instance).
        a: (usize, u64),
        /// Second (node, output instance).
        b: (usize, u64),
        /// First instance at which they disagree.
        at: u64,
    },
    /// No stabilization instance `kst` exists.
    Liveness,
    /// Colors for one instance span more than one shade.
    ColorSpread {
        /// The instance in question.
        instance: u64,
        /// The distinct colors observed.
        colors: Vec<Color>,
    },
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::Validity {
                node,
                output_instance,
                entry_instance,
            } => write!(
                f,
                "validity: node {node}'s output at instance {output_instance} contains an unproposed value for instance {entry_instance}"
            ),
            SpecViolation::Agreement { a, b, at } => write!(
                f,
                "agreement: outputs of node {} (instance {}) and node {} (instance {}) differ at instance {at}",
                a.0, a.1, b.0, b.1
            ),
            SpecViolation::Liveness => write!(f, "liveness: no stabilization instance exists"),
            SpecViolation::ColorSpread { instance, colors } => write!(
                f,
                "property 4: instance {instance} has colors spanning more than one shade: {colors:?}"
            ),
        }
    }
}

/// Collects an execution's CHA events and checks the specification.
#[derive(Clone, Debug, Default)]
pub struct ChaSpecChecker<V> {
    proposals: BTreeMap<u64, Vec<V>>,
    outputs: Vec<(usize, u64, Option<History<V>>)>,
    colors: BTreeMap<u64, Vec<Color>>,
    crashed: BTreeSet<usize>,
    /// Outputs per live node, keyed by instance, for liveness.
    by_node: BTreeMap<usize, BTreeMap<u64, Option<History<V>>>>,
}

impl<V: Clone + Eq + fmt::Debug> ChaSpecChecker<V> {
    /// Creates an empty checker.
    pub fn new() -> Self {
        ChaSpecChecker {
            proposals: BTreeMap::new(),
            outputs: Vec::new(),
            colors: BTreeMap::new(),
            crashed: BTreeSet::new(),
            by_node: BTreeMap::new(),
        }
    }

    /// Records that `node` proposed `value` for `instance`.
    pub fn record_proposal(&mut self, instance: u64, value: V) {
        self.proposals.entry(instance).or_default().push(value);
    }

    /// Records the output (and final color) `node` produced for one
    /// instance.
    pub fn record_output(&mut self, node: usize, out: &ChaOutput<V>) {
        self.outputs.push((node, out.instance, out.history.clone()));
        self.colors.entry(out.instance).or_default().push(out.color);
        self.by_node
            .entry(node)
            .or_default()
            .insert(out.instance, out.history.clone());
    }

    /// Marks `node` as crashed (excluded from liveness requirements).
    pub fn mark_crashed(&mut self, node: usize) {
        self.crashed.insert(node);
    }

    /// Validity: every included history entry was proposed by someone.
    pub fn check_validity(&self) -> Vec<SpecViolation> {
        let mut violations = Vec::new();
        for (node, output_instance, history) in &self.outputs {
            let Some(h) = history else { continue };
            for (entry_instance, value) in h.iter() {
                let proposed = self
                    .proposals
                    .get(&entry_instance)
                    .is_some_and(|vs| vs.contains(value));
                if !proposed {
                    violations.push(SpecViolation::Validity {
                        node: *node,
                        output_instance: *output_instance,
                        entry_instance,
                    });
                }
            }
        }
        violations
    }

    /// Agreement, in `O(m · len)` via sorted adjacent comparison.
    pub fn check_agreement(&self) -> Vec<SpecViolation> {
        let mut decided: Vec<(usize, u64, &History<V>)> = self
            .outputs
            .iter()
            .filter_map(|(n, k, h)| h.as_ref().map(|h| (*n, *k, h)))
            .collect();
        decided.sort_by_key(|&(_, k, _)| k);
        let mut violations = Vec::new();
        for w in decided.windows(2) {
            let (na, ka, ha) = w[0];
            let (nb, kb, hb) = w[1];
            if let Some(at) = first_disagreement(ha, hb, ka) {
                violations.push(SpecViolation::Agreement {
                    a: (na, ka),
                    b: (nb, kb),
                    at,
                });
            }
        }
        violations
    }

    /// Agreement by exhaustive pairwise comparison (quadratic; used to
    /// cross-validate [`ChaSpecChecker::check_agreement`] on small
    /// traces).
    pub fn check_agreement_exhaustive(&self) -> Vec<SpecViolation> {
        let decided: Vec<(usize, u64, &History<V>)> = self
            .outputs
            .iter()
            .filter_map(|(n, k, h)| h.as_ref().map(|h| (*n, *k, h)))
            .collect();
        let mut violations = Vec::new();
        for i in 0..decided.len() {
            for j in (i + 1)..decided.len() {
                let (na, ka, ha) = decided[i];
                let (nb, kb, hb) = decided[j];
                let upto = ka.min(kb);
                if let Some(at) = first_disagreement(ha, hb, upto) {
                    violations.push(SpecViolation::Agreement {
                        a: (na, ka),
                        b: (nb, kb),
                        at,
                    });
                }
            }
        }
        violations
    }

    /// Liveness: returns the smallest stabilization instance `kst`
    /// such that from `kst` on, every non-crashed node decided every
    /// instance and included all of `[kst, k]` in its output at `k`.
    /// `None` if no such instance exists among the completed ones.
    pub fn liveness_kst(&self) -> Option<u64> {
        let last = self.outputs.iter().map(|(_, k, _)| *k).max()?;
        'candidate: for kst in 1..=last {
            for (node, outs) in &self.by_node {
                if self.crashed.contains(node) {
                    continue;
                }
                // The node may have joined late; only require instances
                // it actually ran.
                let node_last = *outs.keys().max().expect("nonempty");
                for k in kst..=node_last {
                    let Some(h) = outs.get(&k).and_then(|o| o.as_ref()) else {
                        continue 'candidate;
                    };
                    for k2 in kst..=k {
                        if !h.includes(k2) {
                            continue 'candidate;
                        }
                    }
                }
            }
            return Some(kst);
        }
        None
    }

    /// Property 4: per-instance color spread is at most one shade.
    pub fn check_color_spread(&self) -> Vec<SpecViolation> {
        let mut violations = Vec::new();
        for (&instance, colors) in &self.colors {
            let max = colors.iter().map(|c| c.shade()).max().unwrap_or(0);
            let min = colors.iter().map(|c| c.shade()).min().unwrap_or(0);
            if max - min > 1 {
                let mut distinct: Vec<Color> = colors.clone();
                distinct.sort();
                distinct.dedup();
                violations.push(SpecViolation::ColorSpread {
                    instance,
                    colors: distinct,
                });
            }
        }
        violations
    }

    /// Runs every safety check, plus liveness if `expect_liveness`.
    pub fn check_all(&self, expect_liveness: bool) -> Vec<SpecViolation> {
        let mut v = self.check_validity();
        v.extend(self.check_agreement());
        v.extend(self.check_color_spread());
        if expect_liveness && self.liveness_kst().is_none() {
            v.push(SpecViolation::Liveness);
        }
        v
    }

    /// Number of recorded outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }
}

/// First instance `<= upto` where the two histories differ, if any.
fn first_disagreement<V: Eq>(a: &History<V>, b: &History<V>, upto: u64) -> Option<u64> {
    (1..=upto).find(|&k| a.get(k) != b.get(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cha::history::{calculate_history, Ballot};
    use std::collections::BTreeMap;

    fn history(entries: &[(u64, u32)], len: u64) -> History<u32> {
        let mut h = History::new(len);
        for &(k, v) in entries {
            h.insert(k, v);
        }
        h
    }

    fn out(instance: u64, h: Option<History<u32>>, color: Color) -> ChaOutput<u32> {
        ChaOutput {
            instance,
            history: h,
            color,
        }
    }

    #[test]
    fn clean_trace_passes() {
        let mut c = ChaSpecChecker::new();
        for k in 1..=3 {
            c.record_proposal(k, k as u32 * 10);
        }
        for node in 0..3 {
            for k in 1..=3u64 {
                let h = history(&(1..=k).map(|i| (i, i as u32 * 10)).collect::<Vec<_>>(), k);
                c.record_output(node, &out(k, Some(h), Color::Green));
            }
        }
        assert!(c.check_all(true).is_empty());
        assert_eq!(c.liveness_kst(), Some(1));
    }

    #[test]
    fn detects_validity_violation() {
        let mut c = ChaSpecChecker::new();
        c.record_proposal(1, 10);
        let h = history(&[(1, 99)], 1); // 99 was never proposed
        c.record_output(0, &out(1, Some(h), Color::Green));
        let v = c.check_validity();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            SpecViolation::Validity {
                entry_instance: 1,
                ..
            }
        ));
    }

    #[test]
    fn detects_agreement_violation_on_values() {
        let mut c = ChaSpecChecker::new();
        c.record_proposal(1, 10);
        c.record_proposal(1, 20);
        c.record_output(0, &out(1, Some(history(&[(1, 10)], 1)), Color::Green));
        c.record_output(1, &out(1, Some(history(&[(1, 20)], 1)), Color::Green));
        assert!(!c.check_agreement().is_empty());
        assert!(!c.check_agreement_exhaustive().is_empty());
    }

    #[test]
    fn detects_agreement_violation_on_bottom_placement() {
        // One history includes instance 1, the other outputs ⊥ there:
        // the definition requires h(k) equality including ⊥.
        let mut c = ChaSpecChecker::new();
        c.record_proposal(1, 10);
        c.record_proposal(2, 20);
        c.record_output(
            0,
            &out(2, Some(history(&[(1, 10), (2, 20)], 2)), Color::Green),
        );
        c.record_output(1, &out(2, Some(history(&[(2, 20)], 2)), Color::Green));
        assert!(!c.check_agreement().is_empty());
    }

    #[test]
    fn bottom_outputs_do_not_constrain_agreement() {
        let mut c = ChaSpecChecker::new();
        c.record_proposal(1, 10);
        c.record_output(0, &out(1, Some(history(&[(1, 10)], 1)), Color::Green));
        c.record_output(1, &out(1, None, Color::Yellow));
        assert!(c.check_agreement().is_empty());
    }

    #[test]
    fn adjacent_checker_matches_exhaustive_on_chained_histories() {
        // Build protocol-shaped histories via calculate_history and
        // confirm both checkers accept, then corrupt one and confirm
        // both reject.
        let mut ballots = BTreeMap::new();
        for k in 1..=5u64 {
            ballots.insert(k, Ballot::new(k as u32, k - 1));
        }
        let mut c = ChaSpecChecker::new();
        for k in 1..=5u64 {
            c.record_proposal(k, k as u32);
        }
        for node in 0..4usize {
            for k in 2..=5u64 {
                let h = calculate_history(k, k, &ballots, 0);
                c.record_output(node, &out(k, Some(h), Color::Green));
            }
        }
        assert!(c.check_agreement().is_empty());
        assert!(c.check_agreement_exhaustive().is_empty());

        c.record_output(9, &out(3, Some(history(&[(3, 99)], 3)), Color::Green));
        c.record_proposal(3, 99);
        assert!(!c.check_agreement().is_empty());
        assert!(!c.check_agreement_exhaustive().is_empty());
    }

    #[test]
    fn liveness_found_after_unstable_prefix() {
        let mut c = ChaSpecChecker::new();
        for k in 1..=4u64 {
            c.record_proposal(k, k as u32);
        }
        // Instance 1 undecided everywhere; 2..4 decided and include
        // everything from 2 on.
        for node in 0..2 {
            c.record_output(node, &out(1, None, Color::Red));
            for k in 2..=4u64 {
                let entries: Vec<(u64, u32)> = (2..=k).map(|i| (i, i as u32)).collect();
                c.record_output(node, &out(k, Some(history(&entries, k)), Color::Green));
            }
        }
        assert_eq!(c.liveness_kst(), Some(2));
        assert!(c.check_all(true).is_empty());
    }

    #[test]
    fn liveness_fails_when_holes_persist() {
        let mut c = ChaSpecChecker::new();
        c.record_proposal(1, 1);
        c.record_proposal(2, 2);
        // Node 0 never decides instance 2.
        c.record_output(0, &out(1, Some(history(&[(1, 1)], 1)), Color::Green));
        c.record_output(0, &out(2, None, Color::Orange));
        assert_eq!(c.liveness_kst(), None);
        assert!(c.check_all(true).contains(&SpecViolation::Liveness));
    }

    #[test]
    fn crashed_nodes_excluded_from_liveness() {
        let mut c = ChaSpecChecker::new();
        c.record_proposal(1, 1);
        c.record_output(0, &out(1, Some(history(&[(1, 1)], 1)), Color::Green));
        c.record_output(1, &out(1, None, Color::Red));
        c.mark_crashed(1);
        assert_eq!(c.liveness_kst(), Some(1));
    }

    #[test]
    fn detects_color_spread_violation() {
        let mut c = ChaSpecChecker::new();
        c.record_output(0, &out(1, None, Color::Red));
        c.record_output(1, &out(1, None, Color::Yellow));
        let v = c.check_color_spread();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0],
            SpecViolation::ColorSpread { instance: 1, .. }
        ));
    }

    #[test]
    fn adjacent_shades_pass_property4() {
        let mut c = ChaSpecChecker::new();
        c.record_output(0, &out(1, None, Color::Yellow));
        c.record_output(1, &out(1, Some(history(&[], 1)), Color::Green));
        assert!(c.check_color_spread().is_empty());
    }

    #[test]
    fn violations_display_readably() {
        let v = SpecViolation::Agreement {
            a: (0, 3),
            b: (1, 4),
            at: 2,
        };
        let s = v.to_string();
        assert!(s.contains("agreement"));
        assert!(s.contains("instance 2"));
    }
}
