//! Checkpoint-CHA: the garbage-collected variant of Section 3.5.
//!
//! "each node outputs a checkpoint, along with the suffix of the
//! history including every instance after the checkpoint ... a node
//! can garbage-collect whenever a round is designated as green,
//! keeping only (1) a pointer to the most recent green round, (2) the
//! checkpoint up to and including that round, and (3) ballot/status
//! entries that have occurred since that green round."
//!
//! The checkpoint is an application-defined fold over the decided
//! prefix (for a virtual node: the automaton state). On every green
//! instance the suffix since the previous checkpoint is folded in and
//! the per-instance entries are pruned; on yellow/orange/red instances
//! no collection is possible ("there are multiple possible
//! executions") and state accumulates — exactly the memory behaviour
//! experiment E10 measures.

use crate::cha::history::Ballot;
use crate::cha::protocol::{ChaOutput, ChaProtocol};
use std::fmt;

/// Folds one decided instance into the checkpoint state: `apply(state,
/// instance, value_or_bottom)`.
pub type ApplyFn<V, S> = Box<dyn FnMut(&mut S, u64, Option<&V>)>;

/// The per-instance outcome of checkpoint-CHA: the usual CHA output
/// (whose history now covers only the suffix above the checkpoint)
/// plus the current checkpoint position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointOutput<V> {
    /// The underlying CHA output; on green instances its history is
    /// the suffix `(checkpoint_before, instance]`.
    pub output: ChaOutput<V>,
    /// The checkpoint after processing this instance (advances exactly
    /// on green instances).
    pub checkpoint: u64,
}

/// A CHAP participant with Section 3.5 garbage collection.
///
/// `S` is the checkpoint state; the fold function is applied once per
/// instance, in order, with `Some(value)` for included instances and
/// `None` for ⊥ instances (the virtual node's "detected collision").
pub struct CheckpointCha<V, S> {
    protocol: ChaProtocol<V>,
    state: S,
    apply: ApplyFn<V, S>,
}

impl<V: Clone + Ord, S> CheckpointCha<V, S> {
    /// Creates a checkpoint-CHA participant with the given initial
    /// state and fold function.
    pub fn new(initial: S, apply: ApplyFn<V, S>) -> Self {
        CheckpointCha {
            protocol: ChaProtocol::new(),
            state: initial,
            apply,
        }
    }

    /// Restores a participant from a transferred checkpoint (the join
    /// protocol's state transfer): `state` summarizes instances
    /// `1..=checkpoint`; the next instance to run is `next_instance +
    /// 1`.
    pub fn from_checkpoint(
        state: S,
        checkpoint: u64,
        next_instance: u64,
        apply: ApplyFn<V, S>,
    ) -> Self {
        CheckpointCha {
            protocol: ChaProtocol::from_checkpoint(checkpoint, next_instance),
            state,
            apply,
        }
    }

    /// The checkpoint state (the fold of the decided prefix).
    pub fn state(&self) -> &S {
        &self.state
    }

    /// The instance up to (and including) which state is summarized.
    pub fn checkpoint(&self) -> u64 {
        self.protocol.floor()
    }

    /// Resident per-instance entries (the quantity garbage collection
    /// bounds; compare with a plain [`ChaProtocol`]'s linear growth).
    pub fn resident_entries(&self) -> usize {
        self.protocol.resident_entries()
    }

    /// Read access to the wrapped protocol.
    pub fn protocol(&self) -> &ChaProtocol<V> {
        &self.protocol
    }

    /// Ballot phase, send side (delegates to
    /// [`ChaProtocol::begin_instance`]).
    pub fn begin_instance(&mut self, proposal: V) -> Ballot<V> {
        self.protocol.begin_instance(proposal)
    }

    /// Ballot phase, receive side.
    pub fn on_ballot_phase(&mut self, received: &[Ballot<V>], collision: bool) {
        self.protocol.on_ballot_phase(received, collision)
    }

    /// Veto-1 send side.
    pub fn veto1_broadcast(&self) -> bool {
        self.protocol.veto1_broadcast()
    }

    /// Veto-1 receive side.
    pub fn on_veto1_phase(&mut self, veto_heard: bool, collision: bool) {
        self.protocol.on_veto1_phase(veto_heard, collision)
    }

    /// Veto-2 send side.
    pub fn veto2_broadcast(&self) -> bool {
        self.protocol.veto2_broadcast()
    }

    /// Veto-2 receive side + finalization: on a green instance, folds
    /// the decided suffix into the checkpoint state and garbage-
    /// collects it.
    pub fn on_veto2_phase(&mut self, veto_heard: bool, collision: bool) -> CheckpointOutput<V> {
        let out = self.protocol.on_veto2_phase(veto_heard, collision);
        if let Some(history) = &out.history {
            let from = self.protocol.floor() + 1;
            for k in from..=out.instance {
                (self.apply)(&mut self.state, k, history.get(k));
            }
            self.protocol.garbage_collect(out.instance);
        }
        CheckpointOutput {
            output: out,
            checkpoint: self.protocol.floor(),
        }
    }
}

impl<V: fmt::Debug, S: fmt::Debug> fmt::Debug for CheckpointCha<V, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointCha")
            .field("checkpoint", &self.protocol.floor())
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checkpoint state: concatenation of decided values (⊥ recorded
    /// as `None`), so tests can see exactly what was folded.
    fn log_cha() -> CheckpointCha<u32, Vec<(u64, Option<u32>)>> {
        CheckpointCha::new(Vec::new(), Box::new(|s, k, v| s.push((k, v.copied()))))
    }

    /// Runs one clean (all-green) instance where this node is leader.
    fn clean_instance(node: &mut CheckpointCha<u32, Vec<(u64, Option<u32>)>>, proposal: u32) {
        let b = node.begin_instance(proposal);
        node.on_ballot_phase(&[b], false);
        node.on_veto1_phase(false, false);
        let out = node.on_veto2_phase(false, false);
        assert!(out.output.decided());
    }

    /// Runs one instance that ends yellow (collision in veto-2).
    fn yellow_instance(node: &mut CheckpointCha<u32, Vec<(u64, Option<u32>)>>, proposal: u32) {
        let b = node.begin_instance(proposal);
        node.on_ballot_phase(&[b], false);
        node.on_veto1_phase(false, false);
        let out = node.on_veto2_phase(false, true);
        assert!(!out.output.decided());
    }

    #[test]
    fn green_instances_advance_checkpoint_and_prune() {
        let mut node = log_cha();
        for p in [10, 20, 30] {
            clean_instance(&mut node, p);
        }
        assert_eq!(node.checkpoint(), 3);
        assert_eq!(node.resident_entries(), 0, "everything folded away");
        assert_eq!(
            node.state(),
            &vec![(1, Some(10)), (2, Some(20)), (3, Some(30))]
        );
    }

    #[test]
    fn yellow_instances_accumulate_until_next_green() {
        let mut node = log_cha();
        clean_instance(&mut node, 1);
        yellow_instance(&mut node, 2);
        yellow_instance(&mut node, 3);
        assert_eq!(node.checkpoint(), 1);
        assert!(node.resident_entries() > 0, "cannot collect on yellow");
        // The next green folds the whole suffix — including the
        // yellow-but-good instances, which are on the pointer chain.
        clean_instance(&mut node, 4);
        assert_eq!(node.checkpoint(), 4);
        assert_eq!(node.resident_entries(), 0);
        assert_eq!(
            node.state(),
            &vec![(1, Some(1)), (2, Some(2)), (3, Some(3)), (4, Some(4))]
        );
    }

    #[test]
    fn undecided_instances_fold_as_bottom() {
        let mut node = log_cha();
        clean_instance(&mut node, 1);
        // Instance 2: silent ballot phase → red → ⊥, not on the chain.
        node.begin_instance(2);
        node.on_ballot_phase(&[], false);
        node.on_veto1_phase(true, false);
        let out = node.on_veto2_phase(true, false);
        assert!(!out.output.decided());
        clean_instance(&mut node, 3);
        assert_eq!(
            node.state(),
            &vec![(1, Some(1)), (2, None), (3, Some(3))],
            "red instance folded as ⊥ (virtual node detects a collision)"
        );
    }

    #[test]
    fn from_checkpoint_resumes_with_transferred_state() {
        let mut node: CheckpointCha<u32, Vec<(u64, Option<u32>)>> = CheckpointCha::from_checkpoint(
            vec![(1, Some(7))],
            1,
            1,
            Box::new(|s, k, v| s.push((k, v.copied()))),
        );
        assert_eq!(node.checkpoint(), 1);
        clean_instance(&mut node, 22);
        assert_eq!(node.state(), &vec![(1, Some(7)), (2, Some(22))]);
    }

    #[test]
    fn suffix_history_len_matches_instance() {
        let mut node = log_cha();
        clean_instance(&mut node, 5);
        yellow_instance(&mut node, 6);
        let b = node.begin_instance(7);
        node.on_ballot_phase(&[b], false);
        node.on_veto1_phase(false, false);
        let out = node.on_veto2_phase(false, false);
        let h = out.output.history.unwrap();
        assert_eq!(h.len(), 3);
        assert!(!h.includes(1), "pre-checkpoint instances summarized");
        assert!(h.includes(2) && h.includes(3));
        assert_eq!(out.checkpoint, 3);
    }
}
