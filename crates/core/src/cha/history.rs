//! Colors, ballots, histories, and the `calculate-history` function
//! (Figure 1, lines 46–54 of the paper).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The status a node assigns to an agreement instance.
///
/// "There are four possible colors: red < orange < yellow < green.
/// The color reflects each node's local knowledge about the other
/// nodes' knowledge regarding the status of the instance." An
/// instance is *good* at a node if it is yellow or green there.
///
/// The ordering is derived so that [`Ord::min`] yields the *worse*
/// color, matching the pseudocode's `min(orange, status)` downgrades.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Color {
    /// No ballot received (or a collision in the ballot phase).
    Red,
    /// Ballot received, but a veto/collision in the veto-1 phase.
    Orange,
    /// Clean through veto-1, but a veto/collision in the veto-2 phase.
    Yellow,
    /// Clean through all three phases: the node outputs a history.
    Green,
}

impl Color {
    /// An instance is *good* if yellow or green; good instances update
    /// the node's `prev-instance` pointer.
    pub fn is_good(self) -> bool {
        matches!(self, Color::Yellow | Color::Green)
    }

    /// Numeric shade, for Property 4's "differ by at most one shade".
    pub fn shade(self) -> u8 {
        match self {
            Color::Red => 0,
            Color::Orange => 1,
            Color::Yellow => 2,
            Color::Green => 3,
        }
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Color::Red => "red",
            Color::Orange => "orange",
            Color::Yellow => "yellow",
            Color::Green => "green",
        };
        f.write_str(s)
    }
}

/// A ballot: the proposal for the current instance together with the
/// proposer's `prev-instance` pointer (Figure 1, line 16).
///
/// This is the *entire* variable-length content of a CHAP message —
/// one value plus one instance index — which is how the protocol
/// achieves Theorem 14's constant message size (the paper treats an
/// array index as constant size).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ballot<V> {
    /// The proposed value for this instance.
    pub value: V,
    /// The proposer's most recent *good* instance (0 = none).
    pub prev: u64,
}

impl<V> Ballot<V> {
    /// Creates a ballot.
    pub fn new(value: V, prev: u64) -> Self {
        Ballot { value, prev }
    }
}

/// A history: a mapping from instances `1..=len` to either a value or
/// ⊥ (absent).
///
/// Histories are what CHA instances output. Instance `k` is *included*
/// in the history if `h(k) != ⊥`; included instances carry the value
/// agreed for that instance, and excluded ones denote virtual rounds
/// in which the virtual node detects a collision.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct History<V> {
    len: u64,
    entries: BTreeMap<u64, V>,
}

impl<V> History<V> {
    /// Creates the all-⊥ history over instances `1..=len`.
    pub fn new(len: u64) -> Self {
        History {
            len,
            entries: BTreeMap::new(),
        }
    }

    /// The largest instance this history covers.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the history covers no instances at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `h(k)`: the value at instance `k`, or `None` for ⊥ (also
    /// `None` beyond `len`).
    pub fn get(&self, k: u64) -> Option<&V> {
        self.entries.get(&k)
    }

    /// Whether instance `k` is included (`h(k) != ⊥`).
    pub fn includes(&self, k: u64) -> bool {
        self.entries.contains_key(&k)
    }

    /// Number of included instances.
    pub fn included_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(instance, value)` for included instances, in
    /// instance order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.entries.iter().map(|(&k, v)| (k, v))
    }

    /// Inserts an included entry (used by `calculate-history` and by
    /// checkpoint reconstruction).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or beyond the history length.
    pub fn insert(&mut self, k: u64, value: V) {
        assert!(
            k >= 1 && k <= self.len,
            "instance {k} out of 1..={}",
            self.len
        );
        self.entries.insert(k, value);
    }
}

impl<V: PartialEq> History<V> {
    /// Checks the Agreement relation on the common prefix: for every
    /// `k <= upto`, `self(k) == other(k)` (both values *and* ⊥-ness
    /// must match).
    pub fn agrees_with(&self, other: &History<V>, upto: u64) -> bool {
        for k in 1..=upto {
            if self.get(k) != other.get(k) {
                return false;
            }
        }
        true
    }
}

/// The `calculate-history` function (Figure 1, lines 46–54), extended
/// with a checkpoint `floor` for the Section 3.5 garbage-collected
/// variant (pass `floor = 0` for the plain protocol).
///
/// Starting from `prev` (the caller's most recent good instance), the
/// chain of `prev` pointers is followed backward through the ballot
/// array; every instance on the chain is included with its ballot
/// value and every other instance maps to ⊥. With a nonzero `floor`,
/// the walk stops at the checkpoint: instances `<= floor` are
/// summarized by the checkpoint and excluded from the returned
/// history.
///
/// Under the paper's model the chain always resolves: Lemma 5's
/// one-shade spread guarantees every non-red node stores the ballots
/// the chain visits, and Lemma 9 guarantees the chain passes through
/// every green (checkpointed) instance. If state is nevertheless
/// missing — possible only *outside* the model, e.g. under the broken
/// collision detectors of the E13 necessity ablation — the walk stops
/// and the unreachable prefix resolves to ⊥, so the damage surfaces as
/// checker-visible disagreement rather than a crash.
///
/// # Example
///
/// ```
/// use std::collections::BTreeMap;
/// use vi_core::cha::{calculate_history, Ballot};
///
/// // Chain 3 -> 1 (instance 2 never became good anywhere).
/// let mut ballots = BTreeMap::new();
/// ballots.insert(1, Ballot::new("a", 0));
/// ballots.insert(3, Ballot::new("c", 1));
/// let h = calculate_history(3, 3, &ballots, 0);
/// assert_eq!(h.get(1), Some(&"a"));
/// assert_eq!(h.get(2), None); // ⊥
/// assert_eq!(h.get(3), Some(&"c"));
/// ```
pub fn calculate_history<V: Clone>(
    instance: u64,
    prev: u64,
    ballots: &BTreeMap<u64, Ballot<V>>,
    floor: u64,
) -> History<V> {
    let mut history = History::new(instance);
    let mut cursor = prev;
    while cursor > floor {
        let Some(ballot) = ballots.get(&cursor) else {
            break; // unreachable under the model; see above
        };
        history.insert(cursor, ballot.value.clone());
        if ballot.prev >= cursor {
            // A `prev` pointer that fails to decrease can only come
            // from mixing ballots of nodes with inconsistent instance
            // numbering (e.g. a node spawned mid-run with a fresh
            // counter instead of a checkpoint) — outside the model,
            // where every adopted ballot's `prev` precedes the
            // instance it was heard in. Stop rather than chase a
            // cycle; the truncated prefix resolves to ⊥ and surfaces
            // as checker-visible disagreement.
            break;
        }
        cursor = ballot.prev;
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_order_matches_paper() {
        assert!(Color::Red < Color::Orange);
        assert!(Color::Orange < Color::Yellow);
        assert!(Color::Yellow < Color::Green);
        // min() is the downgrade operator.
        assert_eq!(Color::Orange.min(Color::Green), Color::Orange);
        assert_eq!(Color::Red.min(Color::Orange), Color::Red);
    }

    #[test]
    fn goodness() {
        assert!(!Color::Red.is_good());
        assert!(!Color::Orange.is_good());
        assert!(Color::Yellow.is_good());
        assert!(Color::Green.is_good());
    }

    #[test]
    fn shades_are_adjacent_ranks() {
        let shades: Vec<u8> = [Color::Red, Color::Orange, Color::Yellow, Color::Green]
            .iter()
            .map(|c| c.shade())
            .collect();
        assert_eq!(shades, vec![0, 1, 2, 3]);
    }

    fn ballots(entries: &[(u64, u32, u64)]) -> BTreeMap<u64, Ballot<u32>> {
        entries
            .iter()
            .map(|&(k, v, prev)| (k, Ballot::new(v, prev)))
            .collect()
    }

    #[test]
    fn calculate_follows_chain() {
        // Chain: 5 -> 3 -> 1 -> 0. Instances 2 and 4 are ⊥.
        let b = ballots(&[(1, 10, 0), (2, 20, 1), (3, 30, 1), (4, 40, 3), (5, 50, 3)]);
        let h = calculate_history(5, 5, &b, 0);
        assert_eq!(h.len(), 5);
        assert_eq!(h.get(5), Some(&50));
        assert_eq!(h.get(4), None);
        assert_eq!(h.get(3), Some(&30));
        assert_eq!(h.get(2), None);
        assert_eq!(h.get(1), Some(&10));
        assert_eq!(h.included_count(), 3);
    }

    #[test]
    fn calculate_with_stale_prev_excludes_current() {
        // Current instance 6 was bad; prev points to 3.
        let b = ballots(&[(1, 10, 0), (3, 30, 1), (6, 60, 3)]);
        let h = calculate_history(6, 3, &b, 0);
        assert_eq!(h.len(), 6);
        assert!(!h.includes(6));
        assert!(h.includes(3));
        assert!(h.includes(1));
    }

    #[test]
    fn calculate_with_floor_stops_at_checkpoint() {
        let b = ballots(&[(4, 40, 3), (5, 50, 4)]);
        let h = calculate_history(5, 5, &b, 3);
        assert!(h.includes(5) && h.includes(4));
        assert!(!h.includes(3), "at/below floor is summarized elsewhere");
    }

    #[test]
    fn calculate_stops_at_missing_chain_ballot() {
        // A broken chain (impossible under the model, reachable in the
        // E13 ablation) resolves the unreachable prefix to ⊥.
        let b = ballots(&[(5, 50, 3)]);
        let h = calculate_history(5, 5, &b, 0);
        assert!(h.includes(5));
        assert!(!h.includes(3), "unreachable prefix is ⊥");
        assert_eq!(h.included_count(), 1);
    }

    #[test]
    fn calculate_terminates_on_cyclic_prev_chain() {
        // A `prev` pointer that does not decrease (self-loop 4 -> 4 or
        // back-edge 3 -> 4) can only arise when nodes with
        // inconsistent instance numbering exchange ballots — outside
        // the model. The walk must terminate instead of spinning.
        let b = ballots(&[(5, 50, 4), (4, 40, 4)]);
        let h = calculate_history(5, 5, &b, 0);
        assert!(h.includes(5) && h.includes(4));
        assert_eq!(h.included_count(), 2, "cycle truncates the prefix");

        let b = ballots(&[(5, 50, 3), (3, 30, 4), (4, 40, 3)]);
        let h = calculate_history(5, 5, &b, 0);
        assert!(h.includes(5) && h.includes(3));
        assert!(!h.includes(4), "back-edge stops the walk");
    }

    #[test]
    fn calculate_stops_below_skipped_floor() {
        // Chain 5 -> 2 skips floor 3 (contradicting Lemma 9 — again
        // only reachable outside the model): the walk stops at the
        // first at-or-below-floor pointer.
        let b = ballots(&[(5, 50, 2), (2, 20, 0)]);
        let h = calculate_history(5, 5, &b, 3);
        assert!(h.includes(5));
        assert!(!h.includes(2), "below-floor instances stay excluded");
    }

    #[test]
    fn empty_history() {
        let h = History::<u32>::new(0);
        assert!(h.is_empty());
        assert_eq!(h.get(1), None);
    }

    #[test]
    fn agreement_relation() {
        let b = ballots(&[(1, 10, 0), (3, 30, 1), (5, 50, 3)]);
        let h5 = calculate_history(5, 5, &b, 0);
        let h3 = calculate_history(3, 3, &b, 0);
        assert!(h5.agrees_with(&h3, 3));
        assert!(h3.agrees_with(&h5, 3));

        let mut divergent = History::new(3);
        divergent.insert(2, 99);
        assert!(!h5.agrees_with(&divergent, 3));
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn insert_rejects_out_of_range() {
        let mut h = History::new(2);
        h.insert(3, 1u32);
    }

    #[test]
    fn ballot_ordering_is_lexicographic() {
        // min(M) ballot adoption relies on the derived Ord.
        let a = Ballot::new(1u32, 7);
        let b = Ballot::new(2u32, 0);
        assert!(a < b, "value dominates");
        let c = Ballot::new(1u32, 3);
        assert!(c < a, "prev breaks ties");
    }
}
