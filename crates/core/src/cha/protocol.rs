//! The CHAP state machine (Figure 1 of the paper), as a pure protocol
//! core decoupled from the radio.
//!
//! Each agreement instance runs in three single-round phases:
//!
//! 1. **ballot** — the contention-manager-elected leader broadcasts a
//!    ballot `(proposal, prev-instance)`; everyone adopts the minimum
//!    received ballot, or goes *red* on silence/collision;
//! 2. **veto-1** — red nodes broadcast a veto; hearing a veto or a
//!    collision downgrades to *orange*;
//! 3. **veto-2** — red/orange nodes broadcast a veto; hearing a veto
//!    or a collision downgrades to *yellow*.
//!
//! A node that finishes green outputs a history (computed by
//! `calculate-history`); any other color outputs ⊥. Good instances
//! (yellow/green) advance the node's `prev-instance` pointer.
//!
//! Driving the state machine is the caller's job (see
//! [`ChaNode`](crate::cha::ChaNode) for the radio adapter and the
//! virtual-infrastructure emulator in [`crate::vi`] for the
//! multiplexed variant); this separation lets the protocol be unit-
//! and property-tested without a simulated channel, and reused by the
//! emulation with its stretched ballot phase.

use crate::cha::history::{calculate_history, Ballot, Color, History};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use vi_radio::WireSized;

/// The three communication phases of one CHAP instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Leader broadcasts `(proposal, prev)`.
    Ballot,
    /// Red nodes veto.
    Veto1,
    /// Red and orange nodes veto.
    Veto2,
}

impl Phase {
    /// Phase for a global round counter, assuming instances occupy
    /// three consecutive rounds.
    pub fn of_round(round: u64) -> Phase {
        match round % 3 {
            0 => Phase::Ballot,
            1 => Phase::Veto1,
            _ => Phase::Veto2,
        }
    }
}

/// A CHAP wire message.
///
/// Theorem 14: both variants are constant-sized — a ballot carries one
/// proposal value and one instance index; a veto carries nothing.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChaMessage<V> {
    /// A ballot for the current instance.
    Ballot(Ballot<V>),
    /// A veto in one of the veto phases.
    Veto,
}

impl<V: WireSized> WireSized for ChaMessage<V> {
    fn wire_size(&self) -> usize {
        match self {
            // tag + value + prev-instance index (8 bytes, constant per
            // the paper's convention).
            ChaMessage::Ballot(b) => 1 + b.value.wire_size() + 8,
            ChaMessage::Veto => 1,
        }
    }
}

/// The per-instance outcome at one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaOutput<V> {
    /// The instance this output concludes.
    pub instance: u64,
    /// `Some(history)` iff the instance finished green; `None` is ⊥.
    pub history: Option<History<V>>,
    /// The final color (recorded for Property 4 experiments).
    pub color: Color,
}

impl<V> ChaOutput<V> {
    /// `true` if this output decided (non-⊥).
    pub fn decided(&self) -> bool {
        self.history.is_some()
    }
}

/// The CHAP per-node state machine.
///
/// `V` is the proposal domain — any totally ordered, cloneable value
/// (total order is what makes deterministic `min(M)` ballot adoption
/// possible).
///
/// The state serializes (given `V: Serialize`) so that the Section 4.3
/// join protocol can transfer "the entire current state" to a joiner.
///
/// # Example
///
/// One clean instance at a node that is also the elected leader:
///
/// ```
/// use vi_core::cha::{ChaProtocol, Color};
///
/// let mut node = ChaProtocol::<u32>::new();
/// let ballot = node.begin_instance(7);          // ballot phase, send
/// node.on_ballot_phase(&[ballot], false);       // hears its own ballot
/// assert!(!node.veto1_broadcast());             // not red: no veto
/// node.on_veto1_phase(false, false);
/// assert!(!node.veto2_broadcast());
/// let out = node.on_veto2_phase(false, false);  // finalize
/// assert_eq!(out.color, Color::Green);
/// assert_eq!(out.history.unwrap().get(1), Some(&7));
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct ChaProtocol<V> {
    instance: u64,
    prev_instance: u64,
    floor: u64,
    status: BTreeMap<u64, Color>,
    ballots: BTreeMap<u64, Ballot<V>>,
}

impl<V: Clone + Ord> Default for ChaProtocol<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ChaProtocol<V> {
    /// A fresh protocol state: no instances run, `prev-instance = 0`.
    pub fn new() -> Self {
        ChaProtocol {
            instance: 0,
            prev_instance: 0,
            floor: 0,
            status: BTreeMap::new(),
            ballots: BTreeMap::new(),
        }
    }

    /// Reconstructs protocol state from a transferred checkpoint (used
    /// by the join protocol, Section 4.3): the joiner starts as if
    /// instance `checkpoint` had just finished green, with everything
    /// at or below it summarized externally.
    pub fn from_checkpoint(checkpoint: u64, next_instance: u64) -> Self {
        assert!(
            next_instance >= checkpoint,
            "next instance {next_instance} precedes checkpoint {checkpoint}"
        );
        ChaProtocol {
            instance: next_instance,
            prev_instance: checkpoint,
            floor: checkpoint,
            status: BTreeMap::new(),
            ballots: BTreeMap::new(),
        }
    }

    /// The most recently started instance (0 if none).
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// The node's most recent *good* instance (0 if none).
    pub fn prev_instance(&self) -> u64 {
        self.prev_instance
    }

    /// The checkpoint floor (0 for the plain protocol).
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Final color of `k`, if that instance ran here.
    pub fn color_of(&self, k: u64) -> Option<Color> {
        self.status.get(&k).copied()
    }

    /// The ballot stored for `k`, if any.
    pub fn ballot_of(&self, k: u64) -> Option<&Ballot<V>> {
        self.ballots.get(&k)
    }

    /// Number of resident (non-garbage-collected) per-instance
    /// entries, for the Section 3.5 memory experiments.
    pub fn resident_entries(&self) -> usize {
        self.status.len() + self.ballots.len()
    }

    fn current(&self) -> u64 {
        assert!(self.instance > 0, "no instance started");
        self.instance
    }

    fn color(&self) -> Color {
        *self
            .status
            .get(&self.current())
            .expect("instance status initialized by begin_instance")
    }
}

impl<V: Clone + Ord> ChaProtocol<V> {
    /// **Ballot phase, send side** (Figure 1 lines 13–19): starts
    /// instance `k = instance + 1` with `proposal` and returns the
    /// ballot this node *would* broadcast; whether it actually does is
    /// the contention manager's call.
    pub fn begin_instance(&mut self, proposal: V) -> Ballot<V> {
        self.instance += 1;
        self.status.insert(self.instance, Color::Green);
        Ballot::new(proposal, self.prev_instance)
    }

    /// **Ballot phase, receive side** (lines 29–32): `received` holds
    /// the ballots heard this round (including the node's own, if it
    /// broadcast — the sender knows what it sent), `collision` is the
    /// detector's output. Silence or a collision turns the instance
    /// red; otherwise the minimum ballot is adopted.
    pub fn on_ballot_phase(&mut self, received: &[Ballot<V>], collision: bool) {
        let k = self.current();
        if received.is_empty() || collision {
            self.status.insert(k, Color::Red);
        } else {
            let adopted = received.iter().min().expect("nonempty").clone();
            self.ballots.insert(k, adopted);
        }
    }

    /// **Veto-1 phase, send side** (lines 20–23): red nodes veto.
    pub fn veto1_broadcast(&self) -> bool {
        self.color() == Color::Red
    }

    /// **Veto-1 phase, receive side** (lines 33–35): a veto or a
    /// collision downgrades to (at most) orange.
    pub fn on_veto1_phase(&mut self, veto_heard: bool, collision: bool) {
        if veto_heard || collision {
            let k = self.current();
            let cur = self.color();
            self.status.insert(k, cur.min(Color::Orange));
        }
    }

    /// **Veto-2 phase, send side** (lines 24–27): red and orange nodes
    /// veto.
    pub fn veto2_broadcast(&self) -> bool {
        matches!(self.color(), Color::Red | Color::Orange)
    }

    /// **Veto-2 phase, receive side and instance finalization** (lines
    /// 36–45): a veto or collision downgrades to (at most) yellow;
    /// good instances advance `prev-instance`; the history is computed
    /// and the output produced (a history iff green, else ⊥).
    pub fn on_veto2_phase(&mut self, veto_heard: bool, collision: bool) -> ChaOutput<V> {
        let k = self.current();
        if veto_heard || collision {
            let cur = self.color();
            self.status.insert(k, cur.min(Color::Yellow));
        }
        let color = self.color();
        if color.is_good() {
            self.prev_instance = k;
        }
        let history = (color == Color::Green).then(|| self.current_history());
        ChaOutput {
            instance: k,
            history,
            color,
        }
    }

    /// Computes the history this node would output right now,
    /// regardless of the current instance's color (what a replica uses
    /// to compute the virtual node's state from its latest *decided*
    /// knowledge — see Section 4.3's message sub-protocol).
    pub fn current_history(&self) -> History<V> {
        calculate_history(self.instance, self.prev_instance, &self.ballots, self.floor)
    }

    /// Garbage-collects all per-instance state at or below
    /// `checkpoint` and raises the floor (Section 3.5). The caller
    /// must have summarized instances `<= checkpoint` externally and
    /// may only do this for *green* instances.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint` is below the current floor.
    pub fn garbage_collect(&mut self, checkpoint: u64) {
        assert!(
            checkpoint >= self.floor,
            "checkpoint {checkpoint} below current floor {}",
            self.floor
        );
        self.floor = checkpoint;
        self.status = self.status.split_off(&(checkpoint + 1));
        self.ballots = self.ballots.split_off(&(checkpoint + 1));
    }
}

impl<V: fmt::Debug> fmt::Debug for ChaProtocol<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaProtocol")
            .field("instance", &self.instance)
            .field("prev_instance", &self.prev_instance)
            .field("floor", &self.floor)
            .field("resident", &(self.status.len() + self.ballots.len()))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `n` lockstep protocol copies through one instance with a
    /// scripted outcome per phase per node, modelling a clique channel.
    ///
    /// `leader` broadcasts its ballot; `ballot_loss[i]` makes node `i`
    /// miss it (and, by completeness, detect a collision);
    /// `veto1_loss[i]` / `veto2_loss[i]` make node `i` miss the veto
    /// *broadcast* of that phase while still detecting the collision
    /// (a veto heard and a collision have the same effect, so "loss"
    /// here means the detector fires without a clean message).
    fn run_instance(
        nodes: &mut [ChaProtocol<u32>],
        leader: usize,
        proposal_base: u32,
        ballot_loss: &[bool],
        veto1_collision: &[bool],
        veto2_collision: &[bool],
    ) -> Vec<ChaOutput<u32>> {
        let n = nodes.len();
        // Ballot phase.
        let mut ballots: Vec<Ballot<u32>> = Vec::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            let b = node.begin_instance(proposal_base + i as u32);
            if i == leader {
                ballots.push(b);
            }
        }
        for (i, node) in nodes.iter_mut().enumerate() {
            if ballot_loss[i] && i != leader {
                node.on_ballot_phase(&[], true);
            } else {
                node.on_ballot_phase(&ballots, false);
            }
        }
        // Veto-1 phase.
        let any_veto1 = (0..n).any(|i| nodes[i].veto1_broadcast());
        for (i, node) in nodes.iter_mut().enumerate() {
            node.on_veto1_phase(any_veto1 && !veto1_collision[i], veto1_collision[i]);
        }
        // Veto-2 phase.
        let any_veto2 = (0..n).any(|i| nodes[i].veto2_broadcast());
        nodes
            .iter_mut()
            .enumerate()
            .map(|(i, node)| {
                node.on_veto2_phase(any_veto2 && !veto2_collision[i], veto2_collision[i])
            })
            .collect()
    }

    #[test]
    fn clean_instance_goes_green_everywhere() {
        let mut nodes = vec![ChaProtocol::<u32>::new(); 3];
        let outs = run_instance(&mut nodes, 0, 100, &[false; 3], &[false; 3], &[false; 3]);
        for out in &outs {
            assert_eq!(out.color, Color::Green);
            let h = out.history.as_ref().unwrap();
            assert_eq!(h.get(1), Some(&100), "leader's proposal decided");
        }
    }

    #[test]
    fn silent_ballot_phase_goes_red() {
        let mut node = ChaProtocol::<u32>::new();
        node.begin_instance(5);
        node.on_ballot_phase(&[], false);
        assert_eq!(node.color_of(1), Some(Color::Red));
        assert!(node.veto1_broadcast());
    }

    #[test]
    fn collision_in_ballot_phase_goes_red_despite_messages() {
        // Figure 1 line 30: (± ∈ M) ⇒ red even if some ballot arrived.
        let mut node = ChaProtocol::<u32>::new();
        node.begin_instance(5);
        node.on_ballot_phase(&[Ballot::new(5, 0)], true);
        assert_eq!(node.color_of(1), Some(Color::Red));
    }

    #[test]
    fn min_ballot_is_adopted() {
        let mut node = ChaProtocol::<u32>::new();
        node.begin_instance(9);
        node.on_ballot_phase(
            &[Ballot::new(9, 0), Ballot::new(3, 0), Ballot::new(7, 0)],
            false,
        );
        assert_eq!(node.ballot_of(1), Some(&Ballot::new(3, 0)));
    }

    #[test]
    fn figure2_row_yellow() {
        // ✓ ✓ ✗ → yellow, output ⊥.
        let mut node = ChaProtocol::<u32>::new();
        node.begin_instance(1);
        node.on_ballot_phase(&[Ballot::new(1, 0)], false);
        node.on_veto1_phase(false, false);
        assert!(!node.veto2_broadcast());
        let out = node.on_veto2_phase(false, true);
        assert_eq!(out.color, Color::Yellow);
        assert!(out.history.is_none());
        // Yellow is good: prev-instance advanced.
        assert_eq!(node.prev_instance(), 1);
    }

    #[test]
    fn figure2_row_orange() {
        // ✓ ✗ ✗ → orange, output ⊥, prev-instance NOT advanced.
        let mut node = ChaProtocol::<u32>::new();
        node.begin_instance(1);
        node.on_ballot_phase(&[Ballot::new(1, 0)], false);
        node.on_veto1_phase(false, true);
        assert!(node.veto2_broadcast(), "orange nodes veto in veto-2");
        let out = node.on_veto2_phase(true, false);
        assert_eq!(out.color, Color::Orange);
        assert!(out.history.is_none());
        assert_eq!(node.prev_instance(), 0);
    }

    #[test]
    fn figure2_row_red() {
        // ✗ ✗ ✗ → red, output ⊥.
        let mut node = ChaProtocol::<u32>::new();
        node.begin_instance(1);
        node.on_ballot_phase(&[], true);
        assert!(node.veto1_broadcast());
        node.on_veto1_phase(true, false);
        let out = node.on_veto2_phase(true, false);
        assert_eq!(out.color, Color::Red);
        assert_eq!(node.prev_instance(), 0);
    }

    #[test]
    fn red_node_vetoes_drag_everyone_to_orange() {
        // Node 1 misses the ballot; its veto-1 veto must prevent
        // anyone from finishing green (Lemma 5 / Lemma 6 mechanism).
        let mut nodes = vec![ChaProtocol::<u32>::new(); 3];
        let outs = run_instance(
            &mut nodes,
            0,
            10,
            &[false, true, false],
            &[false; 3],
            &[false; 3],
        );
        assert_eq!(outs[1].color, Color::Red);
        for i in [0, 2] {
            assert_eq!(outs[i].color, Color::Orange, "node {i}");
            assert!(outs[i].history.is_none());
        }
    }

    #[test]
    fn color_spread_never_exceeds_one_shade() {
        // Property 4 over all scripted single-fault patterns.
        for fault_node in 0..3usize {
            for phase in 0..3usize {
                let mut nodes = vec![ChaProtocol::<u32>::new(); 3];
                let mut ballot_loss = [false; 3];
                let mut v1 = [false; 3];
                let mut v2 = [false; 3];
                match phase {
                    0 => ballot_loss[fault_node] = true,
                    1 => v1[fault_node] = true,
                    _ => v2[fault_node] = true,
                }
                let outs = run_instance(&mut nodes, 0, 1, &ballot_loss, &v1, &v2);
                let max = outs.iter().map(|o| o.color.shade()).max().unwrap();
                let min = outs.iter().map(|o| o.color.shade()).min().unwrap();
                assert!(
                    max - min <= 1,
                    "spread {max}-{min} with fault at node {fault_node} phase {phase}: {:?}",
                    outs.iter().map(|o| o.color).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn histories_chain_across_instances() {
        let mut nodes = vec![ChaProtocol::<u32>::new(); 2];
        let all_ok = [false; 2];
        // Three clean instances; leader proposals 100, 200, 300.
        for base in [100, 200, 300] {
            let outs = run_instance(&mut nodes, 0, base, &all_ok, &all_ok, &all_ok);
            assert!(outs.iter().all(|o| o.decided()));
        }
        let h = nodes[0].current_history();
        assert_eq!(h.get(1), Some(&100));
        assert_eq!(h.get(2), Some(&200));
        assert_eq!(h.get(3), Some(&300));
    }

    #[test]
    fn failed_instance_leaves_hole_in_history() {
        let mut nodes = vec![ChaProtocol::<u32>::new(); 2];
        let ok = [false; 2];
        run_instance(&mut nodes, 0, 100, &ok, &ok, &ok);
        // Instance 2: total silence (no leader) — red everywhere.
        run_instance(&mut nodes, 0, 200, &[true, true], &ok, &ok);
        let outs = run_instance(&mut nodes, 0, 300, &ok, &ok, &ok);
        let h = outs[0].history.as_ref().unwrap();
        assert!(h.includes(1));
        assert!(!h.includes(2), "undecided instance resolved to ⊥");
        assert!(h.includes(3));
    }

    #[test]
    fn garbage_collect_prunes_and_preserves_suffix() {
        let mut nodes = vec![ChaProtocol::<u32>::new(); 1];
        let ok = [false; 1];
        for base in [1, 2, 3, 4] {
            run_instance(&mut nodes, 0, base, &ok, &ok, &ok);
        }
        let node = &mut nodes[0];
        assert_eq!(node.resident_entries(), 8);
        node.garbage_collect(3);
        assert_eq!(node.floor(), 3);
        assert_eq!(node.resident_entries(), 2, "only instance 4 retained");
        let h = node.current_history();
        assert!(h.includes(4));
        assert!(!h.includes(3), "summarized by the checkpoint");
    }

    #[test]
    fn from_checkpoint_restores_join_state() {
        let p = ChaProtocol::<u32>::from_checkpoint(7, 9);
        assert_eq!(p.prev_instance(), 7);
        assert_eq!(p.floor(), 7);
        assert_eq!(p.instance(), 9);
        assert_eq!(p.resident_entries(), 0);
    }

    #[test]
    fn message_sizes_are_constant() {
        let b: ChaMessage<u64> = ChaMessage::Ballot(Ballot::new(12345, 999_999));
        let v: ChaMessage<u64> = ChaMessage::Veto;
        assert_eq!(b.wire_size(), 17);
        assert_eq!(v.wire_size(), 1);
    }

    #[test]
    #[should_panic(expected = "no instance started")]
    fn ballot_reception_requires_started_instance() {
        let mut p = ChaProtocol::<u32>::new();
        p.on_ballot_phase(&[], false);
    }
}
