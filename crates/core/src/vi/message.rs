//! The emulation's wire format.
//!
//! All traffic — client messages, virtual-node messages, both
//! agreement instances, and the join/reset sub-protocol — shares the
//! one physical channel; the current [`VirtualPhase`](crate::vi::round::VirtualPhase)
//! determines which variants are live. Messages carry the [`VnId`]
//! they concern so that co-located emulations ignore each other's
//! protocol traffic (their *collisions* still interfere, which is
//! exactly the physical reality the schedule manages).

use crate::cha::history::Ballot;
use crate::vi::automaton::VnId;
use serde::{Deserialize, Serialize};
use vi_radio::WireSized;

/// A replica's proposal for one virtual round: what it believes the
/// virtual node received (the client-phase and vn-phase messages it
/// heard, in canonical order) together with the physical
/// collision-detector evidence it observed — which becomes the virtual
/// node's own collision indication if this proposal is decided.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VrProposal<A> {
    /// Whether the proposing replica's detector fired during the
    /// message sub-protocol.
    pub collision: bool,
    /// The messages heard, sorted (canonical form so that equal
    /// receptions propose equal values).
    pub messages: Vec<A>,
}

impl<A: Ord> VrProposal<A> {
    /// An empty, collision-free proposal.
    pub fn empty() -> Self {
        VrProposal {
            collision: false,
            messages: Vec::new(),
        }
    }

    /// Canonicalizes: sorts the message list.
    pub fn canonicalize(&mut self) {
        self.messages.sort();
    }
}

impl<A: WireSized> WireSized for VrProposal<A> {
    fn wire_size(&self) -> usize {
        1 + self.messages.wire_size()
    }
}

/// Serialized replica state handed to joiners (Section 4.3: "a join
/// response including the entire current state (or some digest
/// thereof)").
///
/// The blob is the serde-encoded [`TransferState`](crate::vi::emulator::TransferState);
/// it is opaque at the wire layer so the message type does not depend
/// on the automaton's state type.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// The encoded replica state.
    pub blob: Vec<u8>,
}

impl WireSized for Transfer {
    fn wire_size(&self) -> usize {
        8 + self.blob.len()
    }
}

/// Everything that can appear on the physical channel during an
/// emulation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Wire<A> {
    /// A client's message for the current virtual round (client
    /// phase). Clients are anonymous; the message is addressed to
    /// whoever hears it, like any wireless broadcast.
    Client(A),
    /// A replica broadcasting on behalf of virtual node `vn` (vn
    /// phase).
    VnMsg {
        /// The virtual node speaking.
        vn: VnId,
        /// Its message for this virtual round.
        payload: A,
    },
    /// A CHAP ballot for `vn`'s current agreement instance (scheduled
    /// or unscheduled ballot phase).
    Ballot {
        /// The virtual node whose instance this is.
        vn: VnId,
        /// The ballot: proposal + prev-instance pointer.
        ballot: Ballot<VrProposal<A>>,
    },
    /// A CHAP veto for `vn`'s current instance (any veto phase).
    Veto {
        /// The virtual node whose instance this vetoes.
        vn: VnId,
    },
    /// A new emulator asks to join `vn` (join phase).
    JoinReq {
        /// The virtual node being joined.
        vn: VnId,
    },
    /// An existing replica transfers state to joiners (join-ack
    /// phase).
    JoinAck {
        /// The virtual node being joined.
        vn: VnId,
        /// The state transfer.
        transfer: Transfer,
    },
    /// A replica asserts the virtual node is alive (reset phase);
    /// silence in this phase authorizes a joiner to reset.
    Alive {
        /// The virtual node in question.
        vn: VnId,
    },
}

impl<A> Wire<A> {
    /// The virtual node this message concerns, if any (client messages
    /// are unaddressed).
    pub fn vn(&self) -> Option<VnId> {
        match self {
            Wire::Client(_) => None,
            Wire::VnMsg { vn, .. }
            | Wire::Ballot { vn, .. }
            | Wire::Veto { vn }
            | Wire::JoinReq { vn }
            | Wire::JoinAck { vn, .. }
            | Wire::Alive { vn } => Some(*vn),
        }
    }
}

impl<A: WireSized> WireSized for Wire<A> {
    fn wire_size(&self) -> usize {
        // 1 byte tag + 4 bytes VnId where present + payload.
        match self {
            Wire::Client(a) => 1 + a.wire_size(),
            Wire::VnMsg { payload, .. } => 5 + payload.wire_size(),
            // Ballot = proposal + 8-byte prev-instance index.
            Wire::Ballot { ballot, .. } => 5 + ballot.value.wire_size() + 8,
            Wire::Veto { .. } => 5,
            Wire::JoinReq { .. } => 5,
            Wire::JoinAck { transfer, .. } => 5 + transfer.wire_size(),
            Wire::Alive { .. } => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposal_canonicalization_sorts() {
        let mut p = VrProposal {
            collision: false,
            messages: vec![3u64, 1, 2],
        };
        p.canonicalize();
        assert_eq!(p.messages, vec![1, 2, 3]);
    }

    #[test]
    fn equal_receptions_equal_proposals() {
        let mut a = VrProposal {
            collision: true,
            messages: vec![9u64, 4],
        };
        let mut b = VrProposal {
            collision: true,
            messages: vec![4u64, 9],
        };
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b);
    }

    #[test]
    fn wire_vn_attribution() {
        assert_eq!(Wire::Client(7u64).vn(), None);
        assert_eq!(Wire::<u64>::Veto { vn: VnId(3) }.vn(), Some(VnId(3)));
        assert_eq!(
            Wire::VnMsg {
                vn: VnId(1),
                payload: 0u64
            }
            .vn(),
            Some(VnId(1))
        );
    }

    #[test]
    fn control_messages_are_constant_size() {
        // Veto / join-req / alive never grow with execution length or
        // node count.
        assert_eq!(Wire::<u64>::Veto { vn: VnId(0) }.wire_size(), 5);
        assert_eq!(Wire::<u64>::JoinReq { vn: VnId(9) }.wire_size(), 5);
        assert_eq!(Wire::<u64>::Alive { vn: VnId(9) }.wire_size(), 5);
    }

    #[test]
    fn ballot_size_tracks_proposal_only() {
        let small = Wire::Ballot {
            vn: VnId(0),
            ballot: Ballot::new(
                VrProposal {
                    collision: false,
                    messages: vec![1u64],
                },
                7,
            ),
        };
        let large_prev = Wire::Ballot {
            vn: VnId(0),
            ballot: Ballot::new(
                VrProposal {
                    collision: false,
                    messages: vec![1u64],
                },
                7_000_000,
            ),
        };
        assert_eq!(
            small.wire_size(),
            large_prev.wire_size(),
            "prev pointer is a constant-size index"
        );
    }
}
