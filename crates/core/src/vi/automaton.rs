//! Virtual-node programs: deterministic automata.
//!
//! "A virtual infrastructure consists of a set of *deterministic*
//! virtual nodes distributed throughout the network, each of which
//! resides at a fixed location" (Section 1.2). Determinism is what
//! makes replication work: every replica that knows the decided
//! history computes the identical virtual-node state by replaying the
//! automaton over it.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt;
use vi_radio::WireSized;

/// Identifier of a virtual node.
///
/// Unlike mobile devices (which the model leaves anonymous), virtual
/// nodes are named infrastructure with known, fixed locations — like
/// the base stations they emulate.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VnId(pub usize);

impl VnId {
    /// The underlying index into the layout.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vn{}", self.0)
    }
}

/// Everything a message type must support to flow through the virtual
/// broadcast service: deterministic ordering (for `min(M)` ballot
/// adoption and canonical proposal sorting), serialization (for join
/// state transfer), and size accounting. Blanket-implemented.
pub trait VnMessage:
    Clone + Ord + fmt::Debug + Serialize + DeserializeOwned + WireSized + 'static
{
}

impl<T> VnMessage for T where
    T: Clone + Ord + fmt::Debug + Serialize + DeserializeOwned + WireSized + 'static
{
}

/// Everything a virtual-node state must support: equality (replica
/// consistency checks) and serialization (join state transfer).
/// Blanket-implemented.
pub trait VnState: Clone + Eq + fmt::Debug + Serialize + DeserializeOwned + 'static {}

impl<T> VnState for T where T: Clone + Eq + fmt::Debug + Serialize + DeserializeOwned + 'static {}

/// What a virtual node receives in one virtual round: the delivered
/// messages plus its (complete, eventually accurate) virtual collision
/// detector's output. An *undecided* agreement instance surfaces as
/// `messages: [], collision: true` — the virtual node simulates
/// detecting a collision, exactly as Section 3.3 prescribes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualInput<A> {
    /// Messages the virtual node receives this virtual round, in
    /// canonical (sorted) order. Senders are anonymous, as on the real
    /// channel.
    pub messages: Vec<A>,
    /// The virtual collision detector's output.
    pub collision: bool,
}

impl<A> VirtualInput<A> {
    /// The input representing an undecided instance: the virtual node
    /// simulates detecting a collision.
    pub fn bottom() -> Self {
        VirtualInput {
            messages: Vec::new(),
            collision: true,
        }
    }

    /// A quiet virtual round: nothing received, no collision.
    pub fn silent() -> Self {
        VirtualInput {
            messages: Vec::new(),
            collision: false,
        }
    }
}

/// Per-virtual-round context handed to the automaton.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VnCtx {
    /// Which virtual node this is (virtual nodes, unlike mobile
    /// devices, are named infrastructure).
    pub vn: VnId,
    /// The virtual node's fixed location.
    pub loc: vi_radio::geometry::Point,
    /// The virtual round being executed (1-based).
    pub vr: u64,
    /// Whether this virtual node is scheduled to broadcast in this
    /// virtual round (Section 4.1).
    pub scheduled: bool,
    /// Whether it is scheduled in the *next* virtual round — the round
    /// in which the message returned by this `step` would actually be
    /// broadcast. Schedule-aware automata emit only when this is true;
    /// emitting otherwise is allowed (the emulation then ignores the
    /// schedule too, per Section 4.3) but risks collisions with
    /// neighbours.
    pub next_scheduled: bool,
}

/// A deterministic virtual-node program.
///
/// The automaton is pure state-transition logic: `step` consumes the
/// round's input and returns the message the virtual node will
/// broadcast in the *next* virtual round's vn phase (if any). All
/// replicas hold the same `VirtualAutomaton` value and replay it over
/// the agreed history, so `step` must be deterministic — no clocks, no
/// randomness, no I/O.
pub trait VirtualAutomaton: 'static {
    /// Messages exchanged between this virtual node, its clients, and
    /// neighbouring virtual nodes.
    type Msg: VnMessage;
    /// The virtual node's replicated state.
    type State: VnState;

    /// The state a (re-)initialized virtual node starts in.
    fn init(&self) -> Self::State;

    /// Executes one virtual round, returning the message to broadcast
    /// in the next round's vn phase.
    fn step(
        &self,
        state: &mut Self::State,
        ctx: VnCtx,
        input: &VirtualInput<Self::Msg>,
    ) -> Option<Self::Msg>;
}

/// A trivial automaton for tests and the quickstart example: counts
/// received messages and collisions, and broadcasts the running total
/// into its scheduled rounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct CounterAutomaton;

/// State of [`CounterAutomaton`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterState {
    /// Messages received so far.
    pub received: u64,
    /// Collisions detected so far.
    pub collisions: u64,
}

impl VirtualAutomaton for CounterAutomaton {
    type Msg = u64;
    type State = CounterState;

    fn init(&self) -> CounterState {
        CounterState::default()
    }

    fn step(&self, state: &mut CounterState, ctx: VnCtx, input: &VirtualInput<u64>) -> Option<u64> {
        state.received += input.messages.len() as u64;
        if input.collision {
            state.collisions += 1;
        }
        // Emit into scheduled rounds only (the returned message is
        // broadcast in the *next* round's vn phase).
        ctx.next_scheduled.then_some(state.received)
    }
}

/// Replays an automaton over a sequence of `(vr, scheduled, input)`
/// virtual rounds: the core of replica consistency. Returns the
/// pending outbound message (the one the virtual node broadcasts in
/// the round after the last replayed one).
pub fn replay<VA: VirtualAutomaton>(
    automaton: &VA,
    vn: VnId,
    loc: vi_radio::geometry::Point,
    state: &mut VA::State,
    inputs: impl IntoIterator<Item = (u64, bool, VirtualInput<VA::Msg>)>,
) -> Option<VA::Msg> {
    let mut out = None;
    let mut prev: Option<(u64, bool, VirtualInput<VA::Msg>)> = None;
    let step = |vr: u64,
                scheduled: bool,
                next_scheduled: bool,
                input: &VirtualInput<VA::Msg>,
                state: &mut VA::State| {
        automaton.step(
            state,
            VnCtx {
                vn,
                loc,
                vr,
                scheduled,
                next_scheduled,
            },
            input,
        )
    };
    for item in inputs {
        if let Some((vr, sched, input)) = prev.take() {
            out = step(vr, sched, item.1 && item.0 == vr + 1, &input, state);
        }
        prev = Some(item);
    }
    if let Some((vr, sched, input)) = prev.take() {
        // The last round's successor schedule is unknown to the caller;
        // assume unscheduled (conservative).
        out = step(vr, sched, false, &input, state);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_automaton_is_deterministic() {
        let a = CounterAutomaton;
        let run = || {
            let mut st = a.init();
            let out = replay(
                &a,
                VnId(0),
                vi_radio::geometry::Point::ORIGIN,
                &mut st,
                vec![
                    (
                        1,
                        false,
                        VirtualInput {
                            messages: vec![5, 6],
                            collision: false,
                        },
                    ),
                    (2, false, VirtualInput::bottom()),
                    (
                        3,
                        true,
                        VirtualInput {
                            messages: vec![7],
                            collision: false,
                        },
                    ),
                ],
            );
            (st, out)
        };
        let (s1, o1) = run();
        let (s2, o2) = run();
        assert_eq!(s1, s2);
        assert_eq!(o1, o2);
        assert_eq!(s1.received, 3);
        assert_eq!(s1.collisions, 1);
        assert_eq!(
            o1, None,
            "replay assumes the successor round is unscheduled"
        );
    }

    #[test]
    fn bottom_input_is_collision_without_messages() {
        let b = VirtualInput::<u64>::bottom();
        assert!(b.collision);
        assert!(b.messages.is_empty());
        assert!(!VirtualInput::<u64>::silent().collision);
    }

    #[test]
    fn vnid_display() {
        assert_eq!(VnId(4).to_string(), "vn4");
        assert_eq!(VnId(4).index(), 4);
    }

    #[test]
    fn counter_state_serializes() {
        let st = CounterState {
            received: 3,
            collisions: 1,
        };
        let json = serde_json::to_string(&st).unwrap();
        let back: CounterState = serde_json::from_str(&json).unwrap();
        assert_eq!(st, back);
    }
}
