//! The virtual-node broadcast schedule (Section 4.1).
//!
//! "Let `schedule[0..s−1]` be an array in which each entry is a subset
//! of the virtual nodes ... The schedule is *non-conflicting* if no
//! two neighbouring virtual nodes are scheduled to broadcast at the
//! same time: for all `i`, `v ≠ v'` in `schedule[i]`, `|ℓv − ℓv'| >
//! R1 + 2·R2`. The schedule is *complete* if every virtual node is
//! scheduled for exactly one round."
//!
//! Virtual nodes are static and known in advance, so the schedule is
//! computed centrally, up front, by greedy colouring of the conflict
//! graph; its length depends only on the *density* of the deployment
//! (the maximum conflict degree plus one), never on the number of
//! mobile nodes — the key to Theorem 14's constant emulation overhead.

use crate::vi::automaton::VnId;
use crate::vi::layout::VnLayout;
use serde::{Deserialize, Serialize};

/// A complete, non-conflicting broadcast schedule.
///
/// # Example
///
/// ```
/// use vi_core::vi::{Schedule, VnLayout};
/// use vi_radio::geometry::Point;
///
/// // Two virtual nodes 30 m apart conflict under a 70 m rule, so the
/// // schedule gives them distinct slots.
/// let layout = VnLayout::grid(1, 2, 30.0, Point::ORIGIN, 2.5);
/// let schedule = Schedule::build(&layout, 70.0);
/// assert_eq!(schedule.len(), 2);
/// assert!(schedule.is_complete(&layout));
/// assert!(schedule.is_non_conflicting(&layout, 70.0));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schedule {
    slots: Vec<Vec<VnId>>,
    slot_of: Vec<usize>,
}

impl Schedule {
    /// Builds a schedule for `layout` by greedy colouring of the
    /// conflict graph with edge rule `distance <= conflict_dist`
    /// (Section 4.1 prescribes `conflict_dist = R1 + 2·R2`).
    pub fn build(layout: &VnLayout, conflict_dist: f64) -> Self {
        let n = layout.len();
        let mut adj = vec![Vec::new(); n];
        for (a, b) in layout.conflicts(conflict_dist) {
            adj[a.index()].push(b.index());
            adj[b.index()].push(a.index());
        }
        let mut slot_of = vec![usize::MAX; n];
        for v in 0..n {
            let used: Vec<usize> = adj[v]
                .iter()
                .map(|&u| slot_of[u])
                .filter(|&s| s != usize::MAX)
                .collect();
            let mut color = 0;
            while used.contains(&color) {
                color += 1;
            }
            slot_of[v] = color;
        }
        let s = slot_of.iter().map(|&c| c + 1).max().unwrap_or(1);
        let mut slots = vec![Vec::new(); s];
        for (v, &c) in slot_of.iter().enumerate() {
            slots[c].push(VnId(v));
        }
        Schedule { slots, slot_of }
    }

    /// Schedule length `s`.
    pub fn len(&self) -> u64 {
        self.slots.len() as u64
    }

    /// `true` if the schedule has no slots (never for a built
    /// schedule).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot assigned to `vn`.
    pub fn slot_of(&self, vn: VnId) -> u64 {
        self.slot_of[vn.index()] as u64
    }

    /// The virtual nodes scheduled in `slot`.
    pub fn in_slot(&self, slot: u64) -> &[VnId] {
        &self.slots[slot as usize]
    }

    /// Whether `vn` is scheduled to broadcast in virtual round `vr`
    /// (1-based): the schedule repeats cyclically, `vn ∈
    /// schedule[(vr - 1) mod s]`.
    pub fn is_scheduled(&self, vn: VnId, vr: u64) -> bool {
        assert!(vr >= 1, "virtual rounds are 1-based");
        self.slot_of(vn) == (vr - 1) % self.len()
    }

    /// Verifies completeness: every virtual node in exactly one slot.
    pub fn is_complete(&self, layout: &VnLayout) -> bool {
        if self.slot_of.len() != layout.len() {
            return false;
        }
        let mut seen = vec![0usize; layout.len()];
        for slot in &self.slots {
            for vn in slot {
                seen[vn.index()] += 1;
            }
        }
        seen.iter().all(|&c| c == 1)
    }

    /// Verifies non-conflict: no slot contains two virtual nodes
    /// within `conflict_dist` of each other.
    pub fn is_non_conflicting(&self, layout: &VnLayout, conflict_dist: f64) -> bool {
        for slot in &self.slots {
            for i in 0..slot.len() {
                for j in (i + 1)..slot.len() {
                    let d = layout.location(slot[i]).distance(layout.location(slot[j]));
                    if d <= conflict_dist {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_radio::geometry::Point;

    fn grid_layout(rows: usize, cols: usize, spacing: f64) -> VnLayout {
        VnLayout::grid(rows, cols, spacing, Point::ORIGIN, 2.5)
    }

    #[test]
    fn isolated_nodes_share_one_slot() {
        // Spacing far beyond the conflict distance: chromatic number 1.
        let layout = grid_layout(2, 2, 1000.0);
        let s = Schedule::build(&layout, 70.0);
        assert_eq!(s.len(), 1);
        assert!(s.is_complete(&layout));
        assert!(s.is_non_conflicting(&layout, 70.0));
    }

    #[test]
    fn dense_grid_needs_more_slots_but_stays_valid() {
        let layout = grid_layout(3, 3, 30.0);
        let conflict = 70.0; // R1=10, R2=30 ⇒ R1 + 2·R2 = 70
        let s = Schedule::build(&layout, conflict);
        assert!(s.is_complete(&layout));
        assert!(s.is_non_conflicting(&layout, conflict));
        assert!(s.len() > 1, "dense deployments cannot share one slot");
    }

    #[test]
    fn schedule_length_tracks_density_not_count() {
        // Same density (spacing), more virtual nodes: s must not grow
        // with the count — this is the Section 4.1 claim that the
        // schedule depends only on density.
        let conflict = 70.0;
        let small = Schedule::build(&grid_layout(2, 2, 80.0), conflict);
        let large = Schedule::build(&grid_layout(6, 6, 80.0), conflict);
        assert_eq!(small.len(), large.len());
    }

    #[test]
    fn is_scheduled_cycles() {
        let layout = grid_layout(1, 2, 30.0);
        let s = Schedule::build(&layout, 70.0);
        assert_eq!(s.len(), 2);
        let a = VnId(0);
        let b = VnId(1);
        // Exactly one of a, b scheduled per virtual round, alternating.
        for vr in 1..=6u64 {
            assert_ne!(s.is_scheduled(a, vr), s.is_scheduled(b, vr));
            assert_eq!(s.is_scheduled(a, vr), s.is_scheduled(a, vr + 2));
        }
    }

    #[test]
    fn every_vn_scheduled_exactly_once_per_cycle() {
        let layout = grid_layout(3, 3, 30.0);
        let s = Schedule::build(&layout, 70.0);
        for (vn, _) in layout.iter() {
            let times: Vec<u64> = (1..=s.len()).filter(|&vr| s.is_scheduled(vn, vr)).collect();
            assert_eq!(times.len(), 1, "{vn} scheduled once per cycle");
        }
    }

    #[test]
    #[should_panic(expected = "virtual rounds are 1-based")]
    fn round_zero_rejected() {
        let layout = grid_layout(1, 1, 10.0);
        let s = Schedule::build(&layout, 70.0);
        let _ = s.is_scheduled(VnId(0), 0);
    }
}
