//! Virtual-node placement.
//!
//! Virtual nodes reside at fixed, well-known locations. Each is
//! emulated by the devices within distance `R1/4` of its location
//! (Section 4: "we replicate the virtual node at every device within
//! distance R1/4 of location ℓv"). `R1/4` keeps all replicas of one
//! virtual node pairwise within `R1/2` — a clique, which is what the
//! Section 3 analysis of CHAP assumes.

use crate::vi::automaton::VnId;
use serde::{Deserialize, Serialize};
use vi_radio::geometry::Point;

/// The fixed deployment of virtual nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VnLayout {
    locations: Vec<Point>,
    region_radius: f64,
}

impl VnLayout {
    /// Creates a layout from explicit locations and the emulation
    /// region radius (use `R1/4` of your radio config for the paper's
    /// deployment rule).
    ///
    /// # Panics
    ///
    /// Panics if `locations` is empty or the radius is not positive
    /// and finite.
    pub fn new(locations: Vec<Point>, region_radius: f64) -> Self {
        assert!(!locations.is_empty(), "layout must contain a virtual node");
        assert!(
            region_radius.is_finite() && region_radius > 0.0,
            "region radius must be positive and finite"
        );
        VnLayout {
            locations,
            region_radius,
        }
    }

    /// A `rows × cols` grid with the given spacing, anchored so the
    /// first virtual node sits at `origin`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate grid (`rows == 0 || cols == 0`) or bad
    /// radius.
    pub fn grid(rows: usize, cols: usize, spacing: f64, origin: Point, region_radius: f64) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-degenerate");
        let mut locations = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                locations.push(Point::new(
                    origin.x + c as f64 * spacing,
                    origin.y + r as f64 * spacing,
                ));
            }
        }
        VnLayout::new(locations, region_radius)
    }

    /// Number of virtual nodes.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// `true` if the layout is empty (never: construction forbids it,
    /// but the method completes the collection-like API).
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// The emulation region radius.
    pub fn region_radius(&self) -> f64 {
        self.region_radius
    }

    /// Location of virtual node `vn`.
    ///
    /// # Panics
    ///
    /// Panics if `vn` is out of range.
    pub fn location(&self, vn: VnId) -> Point {
        self.locations[vn.index()]
    }

    /// Iterates over all `(VnId, location)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VnId, Point)> + '_ {
        self.locations
            .iter()
            .enumerate()
            .map(|(i, &p)| (VnId(i), p))
    }

    /// The virtual node whose emulation region contains `pos`, if any.
    /// Regions never overlap in valid deployments (spacing > 2 ·
    /// radius); if they do, the lowest id wins deterministically.
    pub fn region_of(&self, pos: Point) -> Option<VnId> {
        self.iter()
            .find(|&(_, loc)| pos.within(loc, self.region_radius))
            .map(|(vn, _)| vn)
    }

    /// Whether `pos` lies in `vn`'s emulation region.
    pub fn in_region(&self, vn: VnId, pos: Point) -> bool {
        pos.within(self.location(vn), self.region_radius)
    }

    /// Pairs of virtual nodes closer than `conflict_dist` — the
    /// conflict graph edges for schedule construction (Section 4.1
    /// uses `R1 + 2·R2`).
    pub fn conflicts(&self, conflict_dist: f64) -> Vec<(VnId, VnId)> {
        let mut edges = Vec::new();
        for i in 0..self.locations.len() {
            for j in (i + 1)..self.locations.len() {
                if self.locations[i].distance(self.locations[j]) <= conflict_dist {
                    edges.push((VnId(i), VnId(j)));
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_lays_out_row_major() {
        let l = VnLayout::grid(2, 3, 10.0, Point::new(5.0, 5.0), 2.5);
        assert_eq!(l.len(), 6);
        assert_eq!(l.location(VnId(0)), Point::new(5.0, 5.0));
        assert_eq!(l.location(VnId(2)), Point::new(25.0, 5.0));
        assert_eq!(l.location(VnId(3)), Point::new(5.0, 15.0));
    }

    #[test]
    fn region_lookup() {
        let l = VnLayout::grid(1, 2, 20.0, Point::ORIGIN, 2.5);
        assert_eq!(l.region_of(Point::new(1.0, 1.0)), Some(VnId(0)));
        assert_eq!(l.region_of(Point::new(21.0, 0.0)), Some(VnId(1)));
        assert_eq!(l.region_of(Point::new(10.0, 10.0)), None);
        assert!(l.in_region(VnId(0), Point::new(0.0, 2.5)));
        assert!(!l.in_region(VnId(0), Point::new(0.0, 2.6)));
    }

    #[test]
    fn conflict_edges_by_distance() {
        // Three colinear nodes 10 apart: adjacent pairs conflict at
        // dist 15, all pairs at dist 25.
        let l = VnLayout::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
            2.0,
        );
        let near = l.conflicts(15.0);
        assert_eq!(near, vec![(VnId(0), VnId(1)), (VnId(1), VnId(2))]);
        let far = l.conflicts(25.0);
        assert_eq!(far.len(), 3);
    }

    #[test]
    fn iter_yields_all() {
        let l = VnLayout::grid(2, 2, 5.0, Point::ORIGIN, 1.0);
        let ids: Vec<VnId> = l.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![VnId(0), VnId(1), VnId(2), VnId(3)]);
    }

    #[test]
    #[should_panic(expected = "layout must contain")]
    fn rejects_empty_layout() {
        let _ = VnLayout::new(vec![], 1.0);
    }

    #[test]
    #[should_panic(expected = "region radius must be positive")]
    fn rejects_bad_radius() {
        let _ = VnLayout::new(vec![Point::ORIGIN], f64::NAN);
    }
}
