//! The replica process run by mobile devices (Section 4.3).
//!
//! A [`Device`] is one mobile node. Per the paper, each device runs
//! two components: the *client* program (the user's code, see
//! [`crate::vi::client`]) and the *emulator*, which replicates the
//! virtual node whose region the device currently occupies.
//!
//! Lifecycle: entering a virtual node's region (within `R1/4` of its
//! location) makes the device a *joiner*; the join / join-ack / reset
//! sub-protocol either transfers it the current replica state or — if
//! the virtual node is provably dead (total silence in the reset
//! phase) — lets it re-initialize the virtual node. Leaving the region
//! drops the emulation. Crashing at any point is tolerated by CHAP.
//!
//! Within a virtual round (see [`RoundPlan`]) a replica:
//!
//! 1. listens in the **client phase**, accumulating observed messages;
//! 2. in the **vn phase** broadcasts the virtual node's message iff it
//!    has *decided* state through the previous virtual round (green —
//!    external visibility is gated on green, which is what makes the
//!    footnote-2 scenario safe) — gated by the contention manager when
//!    the virtual node is scheduled, unconditional when not (the
//!    paper's "counterintuitive rule": if the virtual node ignores its
//!    schedule, the replica does too);
//! 3. runs one CHAP instance for this virtual round — in the three
//!    **scheduled** rounds if the virtual node is scheduled, else in
//!    the stretched **unscheduled** instance whose ballot phase gives
//!    every nearby virtual node its own slot;
//! 4. participates in **join/join-ack/reset**.
//!
//! On a green instance the replica folds the decided suffix into the
//! automaton state (checkpoint-CHA, Section 3.5) and garbage-collects.

use crate::cha::history::Ballot;
use crate::cha::protocol::ChaProtocol;
use crate::vi::automaton::{VirtualAutomaton, VirtualInput, VnCtx, VnId};
use crate::vi::client::{ClientApp, VirtualReception};
use crate::vi::layout::VnLayout;
use crate::vi::message::{Transfer, VrProposal, Wire};
use crate::vi::round::{RoundPlan, VirtualPhase};
use crate::vi::schedule::Schedule;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;
use std::rc::Rc;
use vi_contention::{CmSlot, SharedCm};
use vi_radio::{Process, RoundCtx, RoundReception};

/// Everything shared by all devices of one deployment.
pub struct Deployment<VA: VirtualAutomaton> {
    /// The virtual-node program (identical at every replica).
    pub automaton: VA,
    /// Virtual-node placement.
    pub layout: VnLayout,
    /// The Section 4.1 broadcast schedule.
    pub schedule: Schedule,
    /// Real-round structure of a virtual round.
    pub plan: RoundPlan,
    /// One regional contention manager per virtual node.
    pub cms: Vec<SharedCm>,
}

impl<VA: VirtualAutomaton> Deployment<VA> {
    fn cm(&self, vn: VnId) -> &SharedCm {
        &self.cms[vn.index()]
    }
}

impl<VA: VirtualAutomaton> fmt::Debug for Deployment<VA> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deployment")
            .field("vns", &self.layout.len())
            .field("schedule_len", &self.schedule.len())
            .finish_non_exhaustive()
    }
}

/// The serialized replica state a join-ack carries: the CHA protocol
/// suffix plus the checkpointed automaton state (Section 4.3's "entire
/// current state").
#[derive(Serialize, Deserialize)]
pub struct TransferState<S, A: Ord> {
    /// CHA state: instance counter, prev pointer, floor, and the
    /// un-collected ballot/status suffix.
    pub protocol: ChaProtocol<VrProposal<A>>,
    /// Automaton state folded through `folded_to`.
    pub vn_state: S,
    /// The virtual node's pending outbound message.
    pub pending_out: Option<A>,
    /// Virtual round through which `vn_state` is folded (== the
    /// protocol's floor).
    pub folded_to: u64,
}

/// Statistics one emulator accumulates (extracted by experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EmulatorReport {
    /// Green (decided) instances.
    pub decided: u64,
    /// ⊥ instances.
    pub bottom: u64,
    /// Successful joins via state transfer.
    pub joins: u64,
    /// Virtual-node resets performed.
    pub resets: u64,
    /// Virtual rounds in which this replica broadcast for the virtual
    /// node.
    pub vn_broadcasts: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Waiting to join: request, await ack, maybe reset.
    Joining { requested: bool },
    /// A full replica.
    Replica,
}

/// The per-virtual-node emulation state of one device.
struct Emulator<VA: VirtualAutomaton> {
    vn: VnId,
    slot: CmSlot,
    mode: Mode,
    protocol: ChaProtocol<VrProposal<VA::Msg>>,
    vn_state: VA::State,
    pending_out: Option<VA::Msg>,
    folded_to: u64,
    /// Observations accumulated during the client/vn phases of the
    /// current virtual round.
    obs: VrProposal<VA::Msg>,
    /// Whether this replica started the CHA instance for the current
    /// virtual round.
    began: bool,
    /// Whether the virtual node is scheduled this virtual round.
    scheduled: bool,
    /// Contention-manager advice for the current round.
    cm_active: bool,
    /// Join request or collision seen in the join/join-ack phases of
    /// this virtual round.
    join_activity: bool,
    /// The last concluded instance ended green.
    last_green: bool,
    report: EmulatorReport,
}

impl<VA: VirtualAutomaton> Emulator<VA> {
    fn joining(vn: VnId, dep: &Deployment<VA>) -> Self {
        Emulator {
            vn,
            slot: dep.cm(vn).register(),
            mode: Mode::Joining { requested: false },
            protocol: ChaProtocol::new(),
            vn_state: dep.automaton.init(),
            pending_out: None,
            folded_to: 0,
            obs: VrProposal::empty(),
            began: false,
            scheduled: false,
            cm_active: false,
            join_activity: false,
            last_green: false,
            report: EmulatorReport::default(),
        }
    }

    fn is_replica(&self) -> bool {
        self.mode == Mode::Replica
    }

    /// Folds the decided suffix of a green instance into the automaton
    /// state and garbage-collects (checkpoint-CHA).
    fn fold_green(&mut self, dep: &Deployment<VA>, upto: u64) {
        let history = self.protocol.current_history();
        for k in (self.folded_to + 1)..=upto {
            let input = match history.get(k) {
                Some(p) => VirtualInput {
                    messages: p.messages.clone(),
                    collision: p.collision,
                },
                None => VirtualInput::bottom(),
            };
            let ctx = VnCtx {
                vn: self.vn,
                loc: dep.layout.location(self.vn),
                vr: k,
                scheduled: dep.schedule.is_scheduled(self.vn, k),
                next_scheduled: dep.schedule.is_scheduled(self.vn, k + 1),
            };
            self.pending_out = dep.automaton.step(&mut self.vn_state, ctx, &input);
        }
        self.folded_to = upto;
        self.protocol.garbage_collect(upto);
    }

    /// Concludes the instance for `vr` after the final veto phase.
    fn conclude(&mut self, dep: &Deployment<VA>, vr: u64, veto: bool, collision: bool) {
        let out = self.protocol.on_veto2_phase(veto, collision);
        debug_assert_eq!(out.instance, vr, "instance/virtual-round alignment");
        if out.decided() {
            self.report.decided += 1;
            self.last_green = true;
            self.fold_green(dep, vr);
        } else {
            self.report.bottom += 1;
            self.last_green = false;
        }
    }

    fn encode_transfer(&self) -> Transfer {
        let ts: TransferState<&VA::State, VA::Msg> = TransferState {
            protocol: self.protocol.clone(),
            vn_state: &self.vn_state,
            pending_out: self.pending_out.clone(),
            folded_to: self.folded_to,
        };
        Transfer {
            blob: serde_json::to_vec(&ts).expect("replica state serializes"),
        }
    }

    fn adopt_transfer(&mut self, transfer: &Transfer) -> bool {
        let Ok(ts) = serde_json::from_slice::<TransferState<VA::State, VA::Msg>>(&transfer.blob)
        else {
            return false;
        };
        self.protocol = ts.protocol;
        self.vn_state = ts.vn_state;
        self.pending_out = ts.pending_out;
        self.folded_to = ts.folded_to;
        self.mode = Mode::Replica;
        self.report.joins += 1;
        true
    }

    /// Re-initializes the virtual node (reset sub-protocol): fresh
    /// automaton state, CHA resuming at the current virtual round.
    fn reset(&mut self, dep: &Deployment<VA>, vr: u64) {
        self.protocol = ChaProtocol::from_checkpoint(vr, vr);
        self.vn_state = dep.automaton.init();
        self.pending_out = None;
        self.folded_to = vr;
        self.mode = Mode::Replica;
        self.report.resets += 1;
    }
}

/// One mobile device: optional client program plus the emulator for
/// whichever virtual node's region it currently occupies.
pub struct Device<VA: VirtualAutomaton> {
    dep: Rc<Deployment<VA>>,
    emulator: Option<Emulator<VA>>,
    /// Reports of emulations this device has since left (region
    /// departures), so churn statistics survive.
    retired: Vec<(VnId, EmulatorReport)>,
    client: Option<Box<dyn ClientApp<VA::Msg>>>,
    /// Client-side reception accumulating for the current virtual
    /// round.
    client_rx: VirtualReception<VA::Msg>,
    /// Completed reception of the previous virtual round (what the
    /// client app sees).
    client_prev: VirtualReception<VA::Msg>,
}

impl<VA: VirtualAutomaton> Device<VA> {
    /// Creates a device. Pass `client: None` for a pure emulation
    /// relay (a device whose user runs no program).
    pub fn new(dep: Rc<Deployment<VA>>, client: Option<Box<dyn ClientApp<VA::Msg>>>) -> Self {
        Device {
            dep,
            emulator: None,
            retired: Vec::new(),
            client,
            client_rx: VirtualReception::default(),
            client_prev: VirtualReception::default(),
        }
    }

    /// The emulator's statistics, if the device currently emulates a
    /// virtual node.
    pub fn emulator_report(&self) -> Option<(VnId, EmulatorReport)> {
        self.emulator.as_ref().map(|e| (e.vn, e.report))
    }

    /// All emulation reports over the device's lifetime: retired
    /// (left-region) emulations plus the current one.
    pub fn all_reports(&self) -> Vec<(VnId, EmulatorReport)> {
        let mut all = self.retired.clone();
        all.extend(self.emulator_report());
        all
    }

    /// `true` if the device is currently a full replica.
    pub fn is_replica(&self) -> Option<VnId> {
        self.emulator
            .as_ref()
            .filter(|e| e.is_replica())
            .map(|e| e.vn)
    }

    /// The replica's view of its virtual node: `(state, folded_to,
    /// pending_out)`, available when it is a replica.
    #[allow(clippy::type_complexity)] // a named struct would just re-spell the tuple
    pub fn vn_view(&self) -> Option<(&VA::State, u64, Option<&VA::Msg>)> {
        self.emulator
            .as_ref()
            .filter(|e| e.is_replica())
            .map(|e| (&e.vn_state, e.folded_to, e.pending_out.as_ref()))
    }

    /// Typed access to the client app.
    pub fn client<T: 'static>(&self) -> Option<&T> {
        self.client.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Called at each virtual-round boundary: region management and
    /// buffer rotation.
    fn begin_virtual_round(&mut self, vr: u64, pos: vi_radio::geometry::Point) {
        // Region management: enter/leave emulations.
        let dep = Rc::clone(&self.dep);
        let here = dep.layout.region_of(pos);
        match (&mut self.emulator, here) {
            (Some(e), Some(vn)) if e.vn == vn => {}
            (em, here) => {
                if let Some(old) = em.take() {
                    self.retired.push((old.vn, old.report));
                }
                *em = here.map(|vn| Emulator::joining(vn, &dep));
            }
        }
        if let Some(e) = self.emulator.as_mut() {
            // A replica whose CHA stream fell out of alignment (e.g.
            // engine paused it) can no longer participate correctly:
            // demote it to joiner (defensive; cannot happen in normal
            // runs).
            if e.is_replica() && e.protocol.instance() != vr - 1 {
                e.mode = Mode::Joining { requested: false };
            }
            e.obs = VrProposal::empty();
            e.began = false;
            e.join_activity = false;
            e.scheduled = dep.schedule.is_scheduled(e.vn, vr);
            if let Mode::Joining { requested } = &mut e.mode {
                *requested = false;
            }
        }
    }
}

impl<VA: VirtualAutomaton> Process<Wire<VA::Msg>> for Device<VA> {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<Wire<VA::Msg>> {
        let (vr, phase) = self.dep.plan.phase(ctx.round);
        if phase == VirtualPhase::Client {
            self.begin_virtual_round(vr, ctx.pos);
        }

        // Replicas contend every round so the regional manager's
        // temporary-leader lease stays warm.
        if let Some(e) = self.emulator.as_mut() {
            if e.is_replica() {
                e.cm_active = self
                    .dep
                    .cm(e.vn)
                    .contend(e.slot, ctx.round, ctx.pos)
                    .is_active();
            } else {
                e.cm_active = false;
            }
        }

        match phase {
            VirtualPhase::Client => {
                let prev = std::mem::take(&mut self.client_rx);
                self.client_prev = prev;
                let app = self.client.as_mut()?;
                app.on_virtual_round(vr, ctx.pos, &self.client_prev)
                    .map(Wire::Client)
            }
            VirtualPhase::Vn => {
                let e = self.emulator.as_mut()?;
                if !e.is_replica() || e.folded_to != vr - 1 {
                    return None; // external visibility gated on green
                }
                let payload = e.pending_out.clone()?;
                if e.scheduled && !e.cm_active {
                    return None;
                }
                e.report.vn_broadcasts += 1;
                Some(Wire::VnMsg { vn: e.vn, payload })
            }
            VirtualPhase::SchedBallot => {
                let e = self.emulator.as_mut()?;
                if !e.is_replica() || !e.scheduled {
                    return None;
                }
                let mut proposal = std::mem::replace(&mut e.obs, VrProposal::empty());
                proposal.canonicalize();
                let ballot = e.protocol.begin_instance(proposal);
                e.began = true;
                (e.cm_active).then(|| Wire::Ballot { vn: e.vn, ballot })
            }
            VirtualPhase::UnschedBallot(slot) => {
                let e = self.emulator.as_mut()?;
                if !e.is_replica() || e.scheduled {
                    return None;
                }
                let my_slot = self
                    .dep
                    .plan
                    .unsched_ballot_slot(self.dep.schedule.slot_of(e.vn));
                if slot != my_slot {
                    return None;
                }
                let mut proposal = std::mem::replace(&mut e.obs, VrProposal::empty());
                proposal.canonicalize();
                let ballot = e.protocol.begin_instance(proposal);
                e.began = true;
                (e.cm_active).then(|| Wire::Ballot { vn: e.vn, ballot })
            }
            VirtualPhase::SchedVeto1 | VirtualPhase::UnschedVeto1 => {
                let e = self.emulator.as_ref()?;
                (e.began
                    && phase_matches_instance(e.scheduled, phase)
                    && e.protocol.veto1_broadcast())
                .then(|| Wire::Veto { vn: e.vn })
            }
            VirtualPhase::SchedVeto2 | VirtualPhase::UnschedVeto2 => {
                let e = self.emulator.as_ref()?;
                (e.began
                    && phase_matches_instance(e.scheduled, phase)
                    && e.protocol.veto2_broadcast())
                .then(|| Wire::Veto { vn: e.vn })
            }
            VirtualPhase::Join => {
                let e = self.emulator.as_mut()?;
                if e.is_replica() || !e.scheduled {
                    return None;
                }
                e.mode = Mode::Joining { requested: true };
                Some(Wire::JoinReq { vn: e.vn })
            }
            VirtualPhase::JoinAck => {
                let e = self.emulator.as_ref()?;
                (e.is_replica() && e.scheduled && e.join_activity && e.cm_active).then(|| {
                    Wire::JoinAck {
                        vn: e.vn,
                        transfer: e.encode_transfer(),
                    }
                })
            }
            VirtualPhase::Reset => {
                let e = self.emulator.as_ref()?;
                // Like join and join-ack, the liveness assertion runs
                // only in the virtual node's scheduled rounds: the
                // schedule keeps neighbouring join sub-protocols from
                // cross-talking (a neighbour's Alive would otherwise
                // block this virtual node's bootstrap reset forever).
                (e.is_replica() && e.scheduled && e.join_activity).then(|| Wire::Alive { vn: e.vn })
            }
        }
    }

    fn deliver(&mut self, ctx: &RoundCtx, rx: RoundReception<'_, Wire<VA::Msg>>) {
        let (vr, phase) = self.dep.plan.phase(ctx.round);
        let dep = Rc::clone(&self.dep);
        match phase {
            VirtualPhase::Client => {
                for m in rx.messages {
                    if let Wire::Client(a) = m {
                        self.client_rx.messages.push(a.clone());
                        if let Some(e) = self.emulator.as_mut() {
                            e.obs.messages.push(a.clone());
                        }
                    }
                }
                self.client_rx.collision |= rx.collision;
                if let Some(e) = self.emulator.as_mut() {
                    e.obs.collision |= rx.collision;
                }
            }
            VirtualPhase::Vn => {
                for m in rx.messages {
                    if let Wire::VnMsg { payload, .. } = m {
                        self.client_rx.messages.push(payload.clone());
                        if let Some(e) = self.emulator.as_mut() {
                            e.obs.messages.push(payload.clone());
                        }
                    }
                }
                self.client_rx.collision |= rx.collision;
                if let Some(e) = self.emulator.as_mut() {
                    e.obs.collision |= rx.collision;
                }
            }
            VirtualPhase::SchedBallot | VirtualPhase::UnschedBallot(_) => {
                let Some(e) = self.emulator.as_mut() else {
                    return;
                };
                if !e.began || !ballot_phase_is_mine(e, &dep, phase) {
                    return;
                }
                let ballots: Vec<Ballot<VrProposal<VA::Msg>>> = rx
                    .messages
                    .iter()
                    .filter_map(|m| match m {
                        Wire::Ballot { vn, ballot } if *vn == e.vn => Some(ballot.clone()),
                        _ => None,
                    })
                    .collect();
                e.protocol.on_ballot_phase(&ballots, rx.collision);
            }
            VirtualPhase::SchedVeto1 | VirtualPhase::UnschedVeto1 => {
                let Some(e) = self.emulator.as_mut() else {
                    return;
                };
                if e.began && phase_matches_instance(e.scheduled, phase) {
                    let veto = heard_veto(&rx, e.vn);
                    e.protocol.on_veto1_phase(veto, rx.collision);
                }
            }
            VirtualPhase::SchedVeto2 | VirtualPhase::UnschedVeto2 => {
                let Some(e) = self.emulator.as_mut() else {
                    return;
                };
                if e.began && phase_matches_instance(e.scheduled, phase) {
                    let veto = heard_veto(&rx, e.vn);
                    e.conclude(&dep, vr, veto, rx.collision);
                }
            }
            VirtualPhase::Join => {
                let Some(e) = self.emulator.as_mut() else {
                    return;
                };
                if e.is_replica() && e.scheduled {
                    let req = rx
                        .messages
                        .iter()
                        .any(|m| matches!(m, Wire::JoinReq { vn } if *vn == e.vn));
                    e.join_activity |= req || rx.collision;
                }
            }
            VirtualPhase::JoinAck => {
                let Some(e) = self.emulator.as_mut() else {
                    return;
                };
                if e.is_replica() {
                    if e.scheduled {
                        e.join_activity |= rx.collision;
                    }
                } else if matches!(e.mode, Mode::Joining { requested: true }) {
                    for m in rx.messages {
                        if let Wire::JoinAck { vn, transfer } = m {
                            if *vn == e.vn && e.adopt_transfer(transfer) {
                                break;
                            }
                        }
                    }
                }
            }
            VirtualPhase::Reset => {
                if let Some(e) = self.emulator.as_mut() {
                    if matches!(e.mode, Mode::Joining { requested: true })
                        && rx.messages.is_empty()
                        && !rx.collision
                    {
                        // Total silence: the virtual node is dead;
                        // safe to re-initialize it (Section 4.3).
                        e.reset(&dep, vr);
                    }
                }
                // End of the virtual round: a co-located replica that
                // ended ⊥ instructs its client to simulate a collision
                // (Section 3.3).
                if let Some(e) = self.emulator.as_ref() {
                    if e.is_replica() && e.began && !e.last_green {
                        self.client_rx.collision = true;
                    }
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Whether a veto/conclude phase belongs to the instance this replica
/// is running (scheduled replicas use the scheduled phases, and vice
/// versa).
fn phase_matches_instance(scheduled: bool, phase: VirtualPhase) -> bool {
    match phase {
        VirtualPhase::SchedVeto1 | VirtualPhase::SchedVeto2 => scheduled,
        VirtualPhase::UnschedVeto1 | VirtualPhase::UnschedVeto2 => !scheduled,
        _ => false,
    }
}

fn ballot_phase_is_mine<VA: VirtualAutomaton>(
    e: &Emulator<VA>,
    dep: &Deployment<VA>,
    phase: VirtualPhase,
) -> bool {
    match phase {
        VirtualPhase::SchedBallot => e.scheduled,
        VirtualPhase::UnschedBallot(slot) => {
            !e.scheduled && slot == dep.plan.unsched_ballot_slot(dep.schedule.slot_of(e.vn))
        }
        _ => false,
    }
}

fn heard_veto<A>(rx: &RoundReception<'_, Wire<A>>, vn: VnId) -> bool {
    rx.messages
        .iter()
        .any(|m| matches!(m, Wire::Veto { vn: v } if *v == vn))
}
