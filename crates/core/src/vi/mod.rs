//! Virtual infrastructure emulation (Section 4 of the paper).
//!
//! * [`automaton`] — the deterministic virtual-node programs clients
//!   interact with.
//! * [`layout`] — virtual-node placement and the conflict graph.
//! * [`schedule`] — the non-conflicting, complete broadcast schedule
//!   (Section 4.1).
//! * [`round`] — the eleven-phase structure of one virtual round
//!   (Section 4.3).
//! * [`message`] — the emulation's wire format.
//! * [`emulator`] — the replica process run by mobile devices,
//!   including the join/join-ack/reset sub-protocol.
//! * [`client`] — the client-side runtime that makes virtual nodes
//!   look like reliable, immobile devices.
//! * [`world`] — a builder that assembles engine + virtual nodes +
//!   emulators + clients into a runnable deployment.

pub mod automaton;
pub mod client;
pub mod emulator;
pub mod layout;
pub mod message;
pub mod round;
pub mod schedule;
pub mod world;

pub use automaton::{
    replay, CounterAutomaton, CounterState, VirtualAutomaton, VirtualInput, VnCtx, VnId, VnMessage,
    VnState,
};
pub use client::{ClientApp, CollectorClient, PeriodicClient, VirtualReception};
pub use emulator::{Deployment, Device, EmulatorReport, TransferState};
pub use layout::VnLayout;
pub use message::{Transfer, VrProposal, Wire};
pub use round::{RoundPlan, VirtualPhase};
pub use schedule::Schedule;
pub use world::{World, WorldConfig};
