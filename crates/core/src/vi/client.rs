//! The client-side runtime (Section 1.2).
//!
//! Clients are the user programs running on mobile devices. From a
//! client's perspective the system "appears equivalent to a system in
//! which each virtual node is replaced with a reliable, immobile real
//! device": the client broadcasts in the client phase of each virtual
//! round and receives, at the end of the round, whatever the virtual
//! broadcast service delivered — messages from other clients and from
//! virtual nodes — together with a (virtual) collision indication. A
//! co-located replica whose agreement instance ended ⊥ injects a
//! simulated collision, preserving the virtual collision detector's
//! completeness (Section 3.3).

use std::any::Any;
use vi_radio::geometry::Point;

/// What a client observes in one virtual round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VirtualReception<A> {
    /// Messages received (from clients and virtual nodes), in arrival
    /// order within the round.
    pub messages: Vec<A>,
    /// Virtual collision indication: a physical collision during the
    /// message sub-protocol, or a co-located replica reporting an
    /// undecided round.
    pub collision: bool,
}

impl<A> Default for VirtualReception<A> {
    fn default() -> Self {
        VirtualReception {
            messages: Vec::new(),
            collision: false,
        }
    }
}

impl<A> VirtualReception<A> {
    /// `true` if nothing was received and no collision indicated.
    pub fn is_silent(&self) -> bool {
        self.messages.is_empty() && !self.collision
    }
}

/// A client program, driven once per virtual round.
pub trait ClientApp<A>: 'static {
    /// Called at the start of virtual round `vr` with the device's
    /// current position (the GPS / location-service reading) and the
    /// previous round's reception; returns the message to broadcast
    /// this round, if any.
    fn on_virtual_round(&mut self, vr: u64, pos: Point, prev: &VirtualReception<A>) -> Option<A>;

    /// Upcast for typed extraction; implement as `self`.
    fn as_any(&self) -> &dyn Any;
}

/// A client that never sends and records everything it observes.
#[derive(Clone, Debug, Default)]
pub struct CollectorClient<A> {
    /// Per-virtual-round receptions, indexed from virtual round 1.
    pub log: Vec<VirtualReception<A>>,
}

impl<A: Clone + 'static> ClientApp<A> for CollectorClient<A> {
    fn on_virtual_round(&mut self, _vr: u64, _pos: Point, prev: &VirtualReception<A>) -> Option<A> {
        self.log.push(prev.clone());
        None
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A client that broadcasts a scripted message every `period` virtual
/// rounds (starting at round `offset`) and records receptions.
pub struct PeriodicClient<A> {
    make: Box<dyn FnMut(u64) -> A>,
    period: u64,
    offset: u64,
    /// Receptions observed, like [`CollectorClient`].
    pub log: Vec<VirtualReception<A>>,
}

impl<A> PeriodicClient<A> {
    /// Creates a periodic sender; `make(vr)` builds the message for
    /// virtual round `vr`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u64, offset: u64, make: Box<dyn FnMut(u64) -> A>) -> Self {
        assert!(period > 0, "period must be positive");
        PeriodicClient {
            make,
            period,
            offset,
            log: Vec::new(),
        }
    }
}

impl<A: Clone + 'static> ClientApp<A> for PeriodicClient<A> {
    fn on_virtual_round(&mut self, vr: u64, _pos: Point, prev: &VirtualReception<A>) -> Option<A> {
        self.log.push(prev.clone());
        (vr >= self.offset && (vr - self.offset).is_multiple_of(self.period))
            .then(|| (self.make)(vr))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_records_in_order() {
        let mut c = CollectorClient::<u64>::default();
        let r1 = VirtualReception {
            messages: vec![1],
            collision: false,
        };
        let r2 = VirtualReception {
            messages: vec![],
            collision: true,
        };
        assert_eq!(c.on_virtual_round(1, Point::ORIGIN, &r1), None);
        assert_eq!(c.on_virtual_round(2, Point::ORIGIN, &r2), None);
        assert_eq!(c.log, vec![r1, r2]);
    }

    #[test]
    fn periodic_fires_on_schedule() {
        let mut p = PeriodicClient::new(3, 2, Box::new(|vr| vr * 10));
        let quiet = VirtualReception::default();
        let sent: Vec<Option<u64>> = (1..=8)
            .map(|vr| p.on_virtual_round(vr, Point::ORIGIN, &quiet))
            .collect();
        assert_eq!(
            sent,
            vec![None, Some(20), None, None, Some(50), None, None, Some(80)]
        );
    }

    #[test]
    fn silence_detection() {
        assert!(VirtualReception::<u64>::default().is_silent());
        assert!(!VirtualReception::<u64> {
            messages: vec![],
            collision: true
        }
        .is_silent());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn periodic_rejects_zero_period() {
        let _ = PeriodicClient::<u64>::new(0, 0, Box::new(|_| 0));
    }
}
