//! The structure of one virtual round (Section 4.3).
//!
//! "The virtual infrastructure emulation consists of four parts with a
//! total of eleven phases: (1) the message sub-protocol ... (2) the
//! scheduled agreement instance ... (3) the unscheduled agreement
//! instance ... and (4) the join/reset sub-protocol."
//!
//! Every phase occupies one real round except the *unscheduled ballot
//! phase*, which is stretched to `s + 2` rounds so that emulators of
//! nearby unscheduled virtual nodes broadcast their ballots in
//! schedule-separated slots instead of colliding ("the ballot phase is
//! instantiated using s + 2 rounds"). One virtual round therefore
//! takes `s + 12` real rounds — a constant depending only on the
//! deployment density, never on the number of devices (the emulation
//! analogue of Theorem 14).

use serde::{Deserialize, Serialize};

/// The phase of the emulation a given real round belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VirtualPhase {
    /// Clients broadcast their messages for this virtual round.
    Client,
    /// Replicas broadcast on behalf of their virtual nodes.
    Vn,
    /// Ballot phase of the scheduled agreement instance.
    SchedBallot,
    /// Veto-1 of the scheduled instance.
    SchedVeto1,
    /// Veto-2 of the scheduled instance.
    SchedVeto2,
    /// One slot of the stretched unscheduled ballot phase; the payload
    /// is the slot index in `0..s+2`. Emulators of an unscheduled
    /// virtual node with schedule slot `c` broadcast in ballot slot `c
    /// + 1` (slots `0` and `s + 1` are guard slots).
    UnschedBallot(u64),
    /// Veto-1 of the unscheduled instance.
    UnschedVeto1,
    /// Veto-2 of the unscheduled instance.
    UnschedVeto2,
    /// New emulators request to join.
    Join,
    /// An existing replica answers with a state transfer.
    JoinAck,
    /// Replicas assert liveness; silence here authorizes a reset.
    Reset,
}

/// Maps real rounds to `(virtual round, phase)` for a deployment with
/// schedule length `s`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundPlan {
    s: u64,
}

impl RoundPlan {
    /// Creates the plan for schedule length `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0`.
    pub fn new(s: u64) -> Self {
        assert!(s >= 1, "schedule length must be at least 1");
        RoundPlan { s }
    }

    /// The schedule length this plan was built for.
    pub fn schedule_len(&self) -> u64 {
        self.s
    }

    /// Real rounds per virtual round: `s + 12`.
    pub fn rounds_per_vr(&self) -> u64 {
        self.s + 12
    }

    /// The `(virtual round, phase)` of real round `round`. Virtual
    /// rounds are 1-based.
    pub fn phase(&self, round: u64) -> (u64, VirtualPhase) {
        let t = self.rounds_per_vr();
        let vr = round / t + 1;
        let off = round % t;
        let phase = match off {
            0 => VirtualPhase::Client,
            1 => VirtualPhase::Vn,
            2 => VirtualPhase::SchedBallot,
            3 => VirtualPhase::SchedVeto1,
            4 => VirtualPhase::SchedVeto2,
            o if o < 5 + self.s + 2 => VirtualPhase::UnschedBallot(o - 5),
            o if o == 5 + self.s + 2 => VirtualPhase::UnschedVeto1,
            o if o == 6 + self.s + 2 => VirtualPhase::UnschedVeto2,
            o if o == 7 + self.s + 2 => VirtualPhase::Join,
            o if o == 8 + self.s + 2 => VirtualPhase::JoinAck,
            _ => VirtualPhase::Reset,
        };
        (vr, phase)
    }

    /// The first real round of virtual round `vr` (1-based).
    pub fn start_of(&self, vr: u64) -> u64 {
        assert!(vr >= 1, "virtual rounds are 1-based");
        (vr - 1) * self.rounds_per_vr()
    }

    /// The ballot slot in which an unscheduled virtual node with
    /// schedule slot `c` broadcasts (guard slots surround the
    /// schedule).
    pub fn unsched_ballot_slot(&self, schedule_slot: u64) -> u64 {
        assert!(schedule_slot < self.s, "slot {schedule_slot} out of range");
        schedule_slot + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_cover_one_virtual_round() {
        let plan = RoundPlan::new(3);
        assert_eq!(plan.rounds_per_vr(), 15);
        let phases: Vec<(u64, VirtualPhase)> = (0..15).map(|r| plan.phase(r)).collect();
        assert!(phases.iter().all(|&(vr, _)| vr == 1));
        assert_eq!(phases[0].1, VirtualPhase::Client);
        assert_eq!(phases[1].1, VirtualPhase::Vn);
        assert_eq!(phases[2].1, VirtualPhase::SchedBallot);
        assert_eq!(phases[3].1, VirtualPhase::SchedVeto1);
        assert_eq!(phases[4].1, VirtualPhase::SchedVeto2);
        for (i, p) in phases[5..10].iter().enumerate() {
            assert_eq!(p.1, VirtualPhase::UnschedBallot(i as u64));
        }
        assert_eq!(phases[10].1, VirtualPhase::UnschedVeto1);
        assert_eq!(phases[11].1, VirtualPhase::UnschedVeto2);
        assert_eq!(phases[12].1, VirtualPhase::Join);
        assert_eq!(phases[13].1, VirtualPhase::JoinAck);
        assert_eq!(phases[14].1, VirtualPhase::Reset);
    }

    #[test]
    fn eleven_distinct_phase_kinds() {
        // The paper's "total of eleven phases": count phase kinds,
        // collapsing the stretched unscheduled ballot into one.
        let plan = RoundPlan::new(4);
        let mut kinds = std::collections::BTreeSet::new();
        for r in 0..plan.rounds_per_vr() {
            let k = match plan.phase(r).1 {
                VirtualPhase::UnschedBallot(_) => "unsched-ballot".to_string(),
                p => format!("{p:?}"),
            };
            kinds.insert(k);
        }
        assert_eq!(kinds.len(), 11);
    }

    #[test]
    fn virtual_rounds_advance() {
        let plan = RoundPlan::new(2);
        let t = plan.rounds_per_vr();
        assert_eq!(plan.phase(0).0, 1);
        assert_eq!(plan.phase(t - 1).0, 1);
        assert_eq!(plan.phase(t).0, 2);
        assert_eq!(plan.phase(t).1, VirtualPhase::Client);
        assert_eq!(plan.start_of(2), t);
        assert_eq!(plan.start_of(1), 0);
    }

    #[test]
    fn unsched_slots_have_guards() {
        let plan = RoundPlan::new(4);
        assert_eq!(plan.unsched_ballot_slot(0), 1);
        assert_eq!(plan.unsched_ballot_slot(3), 4);
        // Slots 0 and 5 are guards nobody broadcasts in.
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unsched_slot_bounds_checked() {
        let plan = RoundPlan::new(4);
        let _ = plan.unsched_ballot_slot(4);
    }

    #[test]
    #[should_panic(expected = "schedule length must be at least 1")]
    fn rejects_zero_schedule() {
        let _ = RoundPlan::new(0);
    }
}
