//! Deployment builder: assembles radio engine, schedule, regional
//! contention managers, and devices into a runnable virtual
//! infrastructure.

use crate::vi::automaton::{VirtualAutomaton, VnId};
use crate::vi::client::ClientApp;
use crate::vi::emulator::{Deployment, Device, EmulatorReport};
use crate::vi::layout::VnLayout;
use crate::vi::message::Wire;
use crate::vi::round::RoundPlan;
use crate::vi::schedule::Schedule;
use std::rc::Rc;
use vi_contention::{RegionalCm, RegionalConfig, SharedCm};
use vi_radio::mobility::MobilityModel;
use vi_radio::trace::ChannelStats;
use vi_radio::{Adversary, Engine, EngineConfig, NodeId, NodeSpec, RadioConfig};

/// Construction parameters for a [`World`].
#[derive(Debug)]
pub struct WorldConfig<VA> {
    /// Radio model (the conflict distance for the schedule is derived
    /// from it: `r1 + 2·r2`).
    pub radio: RadioConfig,
    /// Virtual-node placement.
    pub layout: VnLayout,
    /// The virtual-node program.
    pub automaton: VA,
    /// Simulation seed.
    pub seed: u64,
    /// Whether to record a full channel trace.
    pub record_trace: bool,
}

/// A runnable virtual-infrastructure deployment.
///
/// See the crate examples (`quickstart.rs`) for end-to-end usage.
pub struct World<VA: VirtualAutomaton> {
    engine: Engine<Wire<VA::Msg>>,
    dep: Rc<Deployment<VA>>,
    devices: Vec<NodeId>,
}

impl<VA: VirtualAutomaton> World<VA> {
    /// Builds the deployment: computes the Section 4.1 schedule, sets
    /// up one regional contention manager per virtual node (with the
    /// paper's `2(s+10)` lease), and prepares the engine.
    ///
    /// # Panics
    ///
    /// Panics if the radio configuration is invalid.
    pub fn new(config: WorldConfig<VA>) -> Self {
        config.radio.validate().expect("invalid radio config");
        let conflict = config.radio.r1 + 2.0 * config.radio.r2;
        let schedule = Schedule::build(&config.layout, conflict);
        let plan = RoundPlan::new(schedule.len());
        let cms: Vec<SharedCm> = config
            .layout
            .iter()
            .map(|(_, loc)| {
                SharedCm::new(RegionalCm::new(RegionalConfig::for_schedule(
                    loc,
                    config.layout.region_radius(),
                    schedule.len(),
                )))
            })
            .collect();
        let dep = Rc::new(Deployment {
            automaton: config.automaton,
            layout: config.layout,
            schedule,
            plan,
            cms,
        });
        let engine = Engine::new(EngineConfig {
            radio: config.radio,
            seed: config.seed,
            record_trace: config.record_trace,
        });
        World {
            engine,
            dep,
            devices: Vec::new(),
        }
    }

    /// The shared deployment (layout, schedule, plan).
    pub fn deployment(&self) -> &Deployment<VA> {
        &self.dep
    }

    /// The virtual-round plan.
    pub fn plan(&self) -> RoundPlan {
        self.dep.plan
    }

    /// Adds a device with an optional client program.
    pub fn add_device(
        &mut self,
        mobility: Box<dyn MobilityModel>,
        client: Option<Box<dyn ClientApp<VA::Msg>>>,
    ) -> NodeId {
        self.add_device_spec(mobility, client, None, None)
    }

    /// Adds a device with scripted lifecycle: spawn and/or crash at
    /// given *real* rounds (use [`RoundPlan::start_of`] to convert
    /// virtual rounds).
    pub fn add_device_spec(
        &mut self,
        mobility: Box<dyn MobilityModel>,
        client: Option<Box<dyn ClientApp<VA::Msg>>>,
        spawn_at: Option<u64>,
        crash_at: Option<u64>,
    ) -> NodeId {
        let device: Device<VA> = Device::new(Rc::clone(&self.dep), client);
        let mut spec = NodeSpec::new(mobility, Box::new(device));
        if let Some(r) = spawn_at {
            spec = spec.spawn_at(r);
        }
        if let Some(r) = crash_at {
            spec = spec.crash_at(r);
        }
        let id = self.engine.add_node(spec);
        self.devices.push(id);
        id
    }

    /// Installs a channel adversary.
    pub fn set_adversary(&mut self, adversary: Box<dyn Adversary>) {
        self.engine.set_adversary(adversary);
    }

    /// Routes the underlying engine through the pre-overhaul round
    /// path (see [`vi_radio::Engine::set_legacy_round_path`]);
    /// executions are byte-identical, only slower. Benchmarking and
    /// differential testing only.
    pub fn set_legacy_round_path(&mut self, legacy: bool) {
        self.engine.set_legacy_round_path(legacy);
    }

    /// Sets the underlying engine's intra-round worker count (see
    /// [`vi_radio::Engine::set_workers`]); executions are
    /// byte-identical at any worker count.
    pub fn set_workers(&mut self, workers: usize) {
        self.engine.set_workers(workers);
    }

    /// Installs a telemetry probe on the underlying engine (see
    /// [`vi_radio::Engine::set_probe`]). Deterministic counters are
    /// unchanged by the worker count; wall-clock fields are not part
    /// of any identity contract.
    pub fn set_probe(&mut self, probe: vi_telemetry::Probe) {
        self.engine.set_probe(probe);
    }

    /// Installs a causal-tracing recorder on the underlying engine
    /// (see [`vi_radio::Engine::set_causal`]): broadcast spans and
    /// reception edges, recorded out of band of the simulation.
    pub fn set_causal(&mut self, causal: vi_telemetry::CausalRecorder) {
        self.engine.set_causal(causal);
    }

    /// Installs a flight recorder on the underlying engine (see
    /// [`vi_radio::Engine::set_flight`]): the last-K-rounds event ring
    /// that incident bundles snapshot.
    pub fn set_flight(&mut self, flight: vi_telemetry::FlightRecorder) {
        self.engine.set_flight(flight);
    }

    /// Installs a live monitor on the underlying engine (see
    /// [`vi_radio::Engine::set_monitor`]): periodic telemetry
    /// snapshots sampled on the sequential control path.
    pub fn set_monitor(&mut self, monitor: vi_telemetry::Monitor) {
        self.engine.set_monitor(monitor);
    }

    /// Runs `n` complete virtual rounds.
    pub fn run_virtual_rounds(&mut self, n: u64) {
        self.engine.run(n * self.dep.plan.rounds_per_vr());
    }

    /// Number of complete virtual rounds executed.
    pub fn virtual_rounds_done(&self) -> u64 {
        self.engine.round() / self.dep.plan.rounds_per_vr()
    }

    /// Crashes a device at the start of the next real round.
    pub fn crash(&mut self, device: NodeId) {
        self.engine.crash(device);
    }

    /// The device process (typed).
    pub fn device(&self, id: NodeId) -> &Device<VA> {
        self.engine
            .process::<Device<VA>>(id)
            .expect("device exists")
    }

    /// All device ids, in insertion order.
    pub fn devices(&self) -> &[NodeId] {
        &self.devices
    }

    /// Channel statistics.
    pub fn stats(&self) -> &ChannelStats {
        self.engine.stats()
    }

    /// Direct engine access (positions, traces).
    pub fn engine(&self) -> &Engine<Wire<VA::Msg>> {
        &self.engine
    }

    /// The broadcast medium resolving this deployment's rounds (the
    /// spatially-indexed channel path; see [`vi_radio::Medium`]).
    pub fn medium(&self) -> &vi_radio::Medium {
        self.engine.medium()
    }

    /// The most advanced replica view of `vn`: `(state, folded_to)`
    /// with the largest `folded_to` among current replicas.
    pub fn vn_state(&self, vn: VnId) -> Option<(VA::State, u64)> {
        self.devices
            .iter()
            .filter_map(|&id| {
                let d = self.device(id);
                if d.is_replica()? == vn {
                    let (state, folded, _) = d.vn_view()?;
                    Some((state.clone(), folded))
                } else {
                    None
                }
            })
            .max_by_key(|&(_, folded)| folded)
    }

    /// Number of current replicas of `vn`.
    pub fn replica_count(&self, vn: VnId) -> usize {
        self.devices
            .iter()
            .filter(|&&id| self.device(id).is_replica() == Some(vn))
            .count()
    }

    /// Aggregated emulator reports per virtual node over all device
    /// lifetimes (including emulations retired when devices left the
    /// region): `(current replicas, summed report)`.
    pub fn vn_report(&self, vn: VnId) -> (usize, EmulatorReport) {
        let mut agg = EmulatorReport::default();
        for &id in &self.devices {
            for (v, r) in self.device(id).all_reports() {
                if v == vn {
                    agg.decided += r.decided;
                    agg.bottom += r.bottom;
                    agg.joins += r.joins;
                    agg.resets += r.resets;
                    agg.vn_broadcasts += r.vn_broadcasts;
                }
            }
        }
        (self.replica_count(vn), agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vi::automaton::{CounterAutomaton, CounterState};
    use crate::vi::client::CollectorClient;
    use vi_radio::geometry::Point;
    use vi_radio::mobility::Static;

    fn single_vn_world(n_devices: usize) -> (World<CounterAutomaton>, Vec<NodeId>) {
        let layout = VnLayout::new(vec![Point::new(50.0, 50.0)], 2.5);
        let mut world = World::new(WorldConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            layout,
            automaton: CounterAutomaton,
            seed: 7,
            record_trace: false,
        });
        let ids: Vec<NodeId> = (0..n_devices)
            .map(|i| {
                world.add_device(
                    Box::new(Static::new(Point::new(50.0 + i as f64 * 0.5, 50.0))),
                    Some(Box::new(CollectorClient::<u64>::default())),
                )
            })
            .collect();
        (world, ids)
    }

    #[test]
    fn world_resolves_through_grid_medium() {
        let (world, _) = single_vn_world(1);
        // The deployment's rounds go through the spatially-indexed
        // medium, configured from the world's radio parameters.
        assert_eq!(*world.medium().config(), RadioConfig::reliable(10.0, 20.0));
    }

    #[test]
    fn bootstrap_via_reset_creates_replicas() {
        let (mut world, ids) = single_vn_world(3);
        world.run_virtual_rounds(2);
        for &id in &ids {
            assert_eq!(world.device(id).is_replica(), Some(VnId(0)));
        }
        let (n, report) = world.vn_report(VnId(0));
        assert_eq!(n, 3);
        assert_eq!(report.resets, 3, "all three bootstrap-reset together");
    }

    #[test]
    fn replicas_decide_and_stay_consistent() {
        let (mut world, ids) = single_vn_world(3);
        world.run_virtual_rounds(8);
        let states: Vec<(CounterState, u64)> = ids
            .iter()
            .map(|&id| {
                let (s, f, _) = world.device(id).vn_view().unwrap();
                (s.clone(), f)
            })
            .collect();
        // All replicas fully caught up and identical.
        for (s, f) in &states {
            assert_eq!(*f, 8, "folded through the last complete virtual round");
            assert_eq!(s, &states[0].0);
        }
        let (_, report) = world.vn_report(VnId(0));
        assert!(report.decided >= 18, "most instances green: {report:?}");
    }

    #[test]
    fn clients_hear_the_virtual_node() {
        let (mut world, ids) = single_vn_world(3);
        world.run_virtual_rounds(6);
        // The counter automaton broadcasts every scheduled round (s=1:
        // every round once live); collectors must have heard it.
        let client: &CollectorClient<u64> = world
            .device(ids[0])
            .client::<CollectorClient<u64>>()
            .unwrap();
        let heard: usize = client.log.iter().map(|r| r.messages.len()).sum();
        assert!(heard >= 3, "client heard the virtual node: {heard}");
    }

    #[test]
    fn vn_state_reports_most_advanced_replica() {
        let (mut world, _) = single_vn_world(2);
        world.run_virtual_rounds(5);
        let (state, folded) = world.vn_state(VnId(0)).unwrap();
        assert_eq!(folded, 5);
        // The counter counted its own broadcasts (loopback) at least.
        assert!(state.received >= 1);
    }

    #[test]
    fn empty_world_runs() {
        let layout = VnLayout::new(vec![Point::new(0.0, 0.0)], 2.5);
        let mut world = World::new(WorldConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            layout,
            automaton: CounterAutomaton,
            seed: 0,
            record_trace: false,
        });
        world.run_virtual_rounds(3);
        assert_eq!(world.replica_count(VnId(0)), 0);
        assert_eq!(world.vn_state(VnId(0)), None);
    }
}
