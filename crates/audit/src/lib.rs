//! # vi-audit
//!
//! Operation-history capture and consistency checking for the vi-apps
//! — a Jepsen-style oracle for the virtual-infrastructure stack.
//!
//! The paper's claim is not just that services over virtual nodes are
//! *fast enough*; it is that they are **correct**: the emulation layer
//! turns a collision-prone radio into a substrate on which an atomic
//! register, a lock server, a tracking service, and a routing overlay
//! keep their sequential specifications under crashes, adversaries,
//! and churn. This crate closes the measurement gap: `vi-traffic`
//! times the apps, `vi-audit` *certifies* them.
//!
//! * [`History`] / [`HistoryRecorder`] (module [`history`]) — the
//!   complete serializable operation history of a traffic run:
//!   invocations, responses, timeouts (`:info` ops — maybe-happened,
//!   concurrent-forever), and protocol-level observations, in
//!   deterministic driver order.
//! * The **checkers** (module [`check`]) — per-app oracles over a
//!   history: a memoized Wing–Gong/WGL linearizability search for the
//!   register (module [`linearizability`], with minimized
//!   counterexample witnesses), mutual exclusion + FIFO-grant
//!   discipline for the mutex, monotone freshness for tracking
//!   lookups, and delivery/no-duplication for georouting. [`audit`]
//!   runs everything an app answers to and returns an
//!   [`AuditReport`].
//! * [`NemesisSpec`] (module [`nemesis`]) — declarative timed fault
//!   schedules (crash bursts, jam windows, detector-corruption
//!   windows) that compile onto the simulator's existing churn and
//!   adversary machinery, so scenarios can be *stressed while
//!   audited*.
//! * The **mutation helper** (module [`mutate`]) — seeded history
//!   corruptions (drop/swap/forge) the property tests use to prove
//!   the checkers actually reject what they claim to reject.

pub mod check;
pub mod history;
pub mod linearizability;
pub mod mutate;
pub mod nemesis;

pub use check::{
    audit, audit_register_ops, check_register_linearizable, AuditReport, CheckResult, Verdict,
};
pub use history::{Event, History, HistoryRecorder};
pub use linearizability::{check_register, synthetic_history, LinResult, RegOp, RegOpKind};
pub use mutate::{drop_response, mutate, pick, Mutation};
pub use nemesis::{NemesisFault, NemesisSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use vi_core::vi::VnLayout;
    use vi_radio::geometry::Point;
    use vi_radio::mobility::{MobilityModel, Static};
    use vi_radio::{AdversaryKind, RadioConfig};
    use vi_traffic::{AppKind, DevicePlan, TrafficSpec, TrafficWorld};

    /// One virtual node at (50, 50) with `n` static devices close by.
    fn small_world(n: usize, seed: u64) -> TrafficWorld {
        let vn = Point::new(50.0, 50.0);
        let devices = (0..n)
            .map(|i| {
                let start = Point::new(49.4 + 0.4 * i as f64, 50.2);
                DevicePlan {
                    start,
                    mobility: Box::new(Static::new(start)) as Box<dyn MobilityModel>,
                    spawn_at: None,
                    crash_at: None,
                }
            })
            .collect();
        TrafficWorld {
            radio: RadioConfig::reliable(10.0, 20.0),
            layout: VnLayout::new(vec![vn], 2.5),
            seed,
            adversary: AdversaryKind::None,
            devices,
        }
    }

    /// Acceptance slice: every app's *recorded* history passes its own
    /// checkers on a quiet channel.
    #[test]
    fn recorded_histories_pass_their_checkers() {
        for (app, seed) in [
            (AppKind::Register, 3),
            (AppKind::Mutex, 5),
            (AppKind::Tracking, 7),
            (AppKind::Georouting, 9),
        ] {
            let spec = TrafficSpec::open(2, 0.3, 30).with_query_fraction(0.4);
            let (out, history) = HistoryRecorder::record(app, small_world(3, seed), &spec);
            assert!(out.summary.completed > 0, "{}: completions", app.name());
            assert_eq!(history.app, app);
            assert_eq!(history.invocations(), out.summary.issued);
            let report = audit(&history);
            assert!(
                report.ok(),
                "{}: recorded history must pass: {:?}",
                app.name(),
                report.violations()
            );
            assert!(report.checks.len() >= 2, "well-formed + semantic checks");
        }
    }

    /// Timeouts under a jam stay `:info`: the history still audits
    /// clean (unacked ops are concurrent-forever, not violations).
    #[test]
    fn jammed_histories_audit_clean() {
        let mut spec = TrafficSpec::open(2, 0.5, 20);
        spec.timeout_rounds = 8;
        let mut world = small_world(3, 2);
        world.radio = RadioConfig::stabilizing(10.0, 20.0, u64::MAX);
        world.adversary = AdversaryKind::Burst(vec![0..5_000, 5_000..10_000]);
        let (out, history) = HistoryRecorder::record(AppKind::Register, world, &spec);
        assert!(out.summary.timed_out > 0);
        let report = audit(&history);
        assert!(report.ok(), "{:?}", report.violations());
        assert_eq!(report.timeouts, out.summary.timed_out);
    }

    /// Audits are a pure function of `(spec, seed)`.
    #[test]
    fn audits_are_deterministic() {
        let spec = TrafficSpec::open(2, 0.4, 25);
        let (_, a) = HistoryRecorder::record(AppKind::Tracking, small_world(3, 11), &spec);
        let (_, b) = HistoryRecorder::record(AppKind::Tracking, small_world(3, 11), &spec);
        assert_eq!(a, b);
        assert_eq!(audit(&a), audit(&b));
        let json = serde_json::to_string(&audit(&a)).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, audit(&a));
    }
}
