//! Declarative nemesis fault schedules.
//!
//! A [`NemesisSpec`] is the Jepsen-style "nemesis": a timed schedule
//! of faults injected into a scenario *while its history is audited*.
//! It is plain serializable data, embedded in a
//! `vi_scenario::ScenarioSpec` next to the base adversary, and
//! compiles onto the machinery the simulator already has:
//!
//! * [`NemesisFault::CrashBurst`] becomes per-device crash rounds
//!   (the same `crash_at` churn path population specs use),
//! * [`NemesisFault::Jam`] becomes a total-loss
//!   [`AdversaryKind::Burst`] window, and
//! * [`NemesisFault::DetectorChaos`] becomes an
//!   [`AdversaryKind::WindowedRandom`] spurious-collision window —
//!   partition-style detector corruption confined to its schedule,
//!
//! all composed over the scenario's own adversary with
//! [`AdversaryKind::Compose`]. Rounds are *real* (slotted) rounds,
//! matching `spawn_at`/`crash_at` semantics. Channel faults only bite
//! before the radio's `rcf`/`racc` stabilization times — exactly the
//! paper's model — so nemesis scenarios use a `stabilizing` radio
//! whose horizon covers the fault schedule.

use serde::{Deserialize, Serialize};
use std::ops::Range;
use vi_radio::AdversaryKind;
use vi_traffic::DevicePlan;

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NemesisFault {
    /// Crash `victims` devices at `at_round`. Victims are taken from
    /// the **end** of the deployment order (deployment fronts host
    /// the client ports), skipping devices already claimed by an
    /// earlier crash burst; an existing scripted crash keeps whichever
    /// round comes first.
    CrashBurst {
        /// Real round of the burst.
        at_round: u64,
        /// Number of devices to crash.
        victims: usize,
    },
    /// Total message loss during `window` (a partition-style blackout;
    /// collision indications fire everywhere, as in a burst).
    Jam {
        /// Real-round window (`start..end`).
        window: Range<u64>,
    },
    /// Collision-detector corruption during `window`: spurious
    /// indications with probability `spurious_p` per node per round.
    DetectorChaos {
        /// Real-round window (`start..end`).
        window: Range<u64>,
        /// Per-node-per-round spurious-collision probability.
        spurious_p: f64,
    },
}

/// A timed schedule of faults. The default (empty) schedule is a
/// no-op: it compiles to the base adversary unchanged and crashes
/// nobody.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NemesisSpec {
    /// The scheduled faults.
    pub faults: Vec<NemesisFault>,
}

impl NemesisSpec {
    /// A schedule with no faults.
    pub fn none() -> Self {
        NemesisSpec::default()
    }

    /// `true` if the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// `true` if the schedule crashes devices.
    pub fn crashes_devices(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, NemesisFault::CrashBurst { .. }))
    }

    /// Checks the schedule for parameters the compilers would panic
    /// on or silently misread.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.faults {
            match f {
                NemesisFault::CrashBurst { victims, .. } => {
                    if *victims == 0 {
                        return Err("crash burst with zero victims".into());
                    }
                }
                NemesisFault::Jam { window } => {
                    if window.start >= window.end {
                        return Err(format!("empty jam window {}..{}", window.start, window.end));
                    }
                }
                NemesisFault::DetectorChaos { window, spurious_p } => {
                    if window.start >= window.end {
                        return Err(format!(
                            "empty detector-chaos window {}..{}",
                            window.start, window.end
                        ));
                    }
                    if !(0.0..=1.0).contains(spurious_p) {
                        return Err(format!(
                            "detector-chaos probability {spurious_p} outside [0, 1]"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The start round of the first fault that begins at or after
    /// `rounds` — a fault window entirely outside a run of that
    /// length, i.e. a schedule entry that can never fire. `None` when
    /// every fault starts inside the run. Spec validation rejects
    /// such dead windows for workloads whose length is statically
    /// known (fuzz-mutated schedules produce them constantly).
    pub fn earliest_dead_start(&self, rounds: u64) -> Option<u64> {
        self.faults
            .iter()
            .map(|f| match f {
                NemesisFault::CrashBurst { at_round, .. } => *at_round,
                NemesisFault::Jam { window } | NemesisFault::DetectorChaos { window, .. } => {
                    window.start
                }
            })
            .filter(|&start| start >= rounds)
            .min()
    }

    /// Total crash victims across all bursts.
    pub fn total_victims(&self) -> usize {
        self.faults
            .iter()
            .map(|f| match f {
                NemesisFault::CrashBurst { victims, .. } => *victims,
                _ => 0,
            })
            .sum()
    }

    /// Compiles the channel faults onto `base`: the identity when the
    /// schedule has none, otherwise a [`AdversaryKind::Compose`] of
    /// the base with one member per channel fault.
    pub fn compile_adversary(&self, base: &AdversaryKind) -> AdversaryKind {
        let mut members = Vec::new();
        let jams: Vec<Range<u64>> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                NemesisFault::Jam { window } => Some(window.clone()),
                _ => None,
            })
            .collect();
        if !jams.is_empty() {
            members.push(AdversaryKind::Burst(jams));
        }
        for f in &self.faults {
            if let NemesisFault::DetectorChaos { window, spurious_p } = f {
                members.push(AdversaryKind::WindowedRandom {
                    windows: Vec::from([window.clone()]),
                    drop_p: 0.0,
                    spurious_p: *spurious_p,
                });
            }
        }
        if members.is_empty() {
            return base.clone();
        }
        members.insert(0, base.clone());
        AdversaryKind::Compose(members)
    }

    /// The crash schedule over `n` deployed devices: `(device index,
    /// crash round)` pairs, victims taken from the end of the
    /// deployment, never touching indices below `protected` (the
    /// client ports). Called directly, a burst that runs out of
    /// eligible devices crashes every eligible device and no more;
    /// `vi-scenario`'s spec validation rejects schedules that ask for
    /// more victims than the deployment can supply, so sweeps never
    /// silently under-crash.
    pub fn crash_schedule(&self, n: usize, protected: usize) -> Vec<(usize, u64)> {
        let mut taken = vec![false; n];
        let mut schedule = Vec::new();
        for f in &self.faults {
            let NemesisFault::CrashBurst { at_round, victims } = f else {
                continue;
            };
            let mut left = *victims;
            for i in (protected..n).rev() {
                if left == 0 {
                    break;
                }
                if !taken[i] {
                    taken[i] = true;
                    schedule.push((i, *at_round));
                    left -= 1;
                }
            }
        }
        schedule.sort_unstable();
        schedule
    }

    /// Applies the crash schedule to a built device list (the traffic
    /// compile path), min-merging with scripted crash rounds.
    pub fn apply_crashes(&self, devices: &mut [DevicePlan], protected: usize) {
        for (i, round) in self.crash_schedule(devices.len(), protected) {
            let d = &mut devices[i];
            d.crash_at = Some(d.crash_at.map_or(round, |c| c.min(round)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> NemesisSpec {
        NemesisSpec {
            faults: vec![
                NemesisFault::CrashBurst {
                    at_round: 100,
                    victims: 2,
                },
                NemesisFault::Jam { window: 40..80 },
                NemesisFault::DetectorChaos {
                    window: 120..160,
                    spurious_p: 0.5,
                },
                NemesisFault::CrashBurst {
                    at_round: 200,
                    victims: 1,
                },
            ],
        }
    }

    #[test]
    fn spec_round_trips_and_validates() {
        let s = schedule();
        s.validate().expect("valid schedule");
        let round: NemesisSpec =
            serde::Deserialize::from_value(&serde::Serialize::to_value(&s)).unwrap();
        assert_eq!(round, s);
        assert!(!s.is_empty());
        assert!(s.crashes_devices());
        assert_eq!(s.total_victims(), 3);
        assert!(NemesisSpec::none().is_empty());
        assert!(NemesisSpec::none().validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_faults() {
        let zero = NemesisSpec {
            faults: vec![NemesisFault::CrashBurst {
                at_round: 5,
                victims: 0,
            }],
        };
        assert!(zero.validate().unwrap_err().contains("zero victims"));
        let empty_window = NemesisSpec {
            faults: vec![NemesisFault::Jam { window: 9..9 }],
        };
        assert!(empty_window.validate().unwrap_err().contains("empty jam"));
        let bad_p = NemesisSpec {
            faults: vec![NemesisFault::DetectorChaos {
                window: 0..5,
                spurious_p: 1.5,
            }],
        };
        assert!(bad_p.validate().unwrap_err().contains("outside"));
    }

    #[test]
    fn empty_schedule_compiles_to_the_base_adversary() {
        let base = AdversaryKind::Random(0.3, 0.1);
        assert_eq!(NemesisSpec::none().compile_adversary(&base), base);
    }

    #[test]
    fn channel_faults_compose_over_the_base() {
        let base = AdversaryKind::Random(0.2, 0.0);
        let AdversaryKind::Compose(members) = schedule().compile_adversary(&base) else {
            panic!("channel faults must compose");
        };
        assert_eq!(members[0], base, "base adversary survives first");
        assert!(matches!(members[1], AdversaryKind::Burst(_)));
        assert!(matches!(members[2], AdversaryKind::WindowedRandom { .. }));
        assert_eq!(members.len(), 3);
    }

    #[test]
    fn crash_schedule_takes_victims_from_the_end_and_protects_clients() {
        let s = schedule();
        // 6 devices, first 2 protected: burst 1 takes 5 and 4, burst 2
        // takes 3.
        assert_eq!(s.crash_schedule(6, 2), vec![(3, 200), (4, 100), (5, 100)]);
        // Too few eligible devices: crash what's there.
        assert_eq!(s.crash_schedule(3, 2), vec![(2, 100)]);
        assert_eq!(s.crash_schedule(2, 2), vec![]);
    }
}
