//! Wing–Gong / WGL linearizability checking for the atomic register.
//!
//! The checker searches for a legal sequential order of the recorded
//! operations that respects real-time precedence: operation `p`
//! precedes `o` iff `p` returned strictly before `o` was invoked;
//! otherwise they are concurrent and may linearize either way. An
//! operation that never returned (a timeout — Jepsen's `:info`) is
//! concurrent with everything after its invocation and *optional*: a
//! timed-out write may or may not have taken effect, so the search may
//! linearize it or leave it out, whichever makes the history legal.
//! Timed-out reads impose no constraint and are excluded up front by
//! the extractor.
//!
//! The search is the classic memoized DFS (Wing–Gong, with the
//! Lowe-style state cache): the frontier of linearizable candidates is
//! the set of unlinearized operations invoked no later than the
//! earliest unlinearized response; applying one yields a new
//! `(linearized-set, register-value)` state, and states already proven
//! dead are never revisited. Candidate and minimum-response tracking
//! use dancing-links lists over invocation- and response-sorted
//! orders, so each visited node costs O(concurrency width), not O(n).
//!
//! On failure the checker produces a **minimized witness**: the
//! earliest truncation of the history that is already non-linearizable
//! (violations are monotone under truncation, so the cutoff is found
//! by binary search), greedily shrunk by removing every operation the
//! contradiction does not need.

use std::collections::HashSet;

/// The register's initial value (reads before any write return it).
pub const INITIAL_VALUE: u64 = 0;

/// `ret` value of an operation that never returned.
pub const PENDING: u64 = u64::MAX;

/// What a register operation did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegOpKind {
    /// A write of `value`.
    Write {
        /// The written value.
        value: u64,
    },
    /// A read that returned `returned`.
    Read {
        /// The value the read observed.
        returned: u64,
    },
}

/// One register operation with its closed real-time interval
/// `[inv, ret]` in virtual rounds (`ret == PENDING` if it never
/// returned).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegOp {
    /// Request id (for witness labelling).
    pub id: u64,
    /// Write or read.
    pub kind: RegOpKind,
    /// Invocation round.
    pub inv: u64,
    /// Response round, or [`PENDING`].
    pub ret: u64,
}

impl RegOp {
    fn describe(&self) -> String {
        let span = if self.ret == PENDING {
            format!("[{}, ∞)", self.inv)
        } else {
            format!("[{}, {}]", self.inv, self.ret)
        };
        match self.kind {
            RegOpKind::Write { value } => format!("#{} W({value}) {span}", self.id),
            RegOpKind::Read { returned } => format!("#{} R→{returned} {span}", self.id),
        }
    }
}

/// Outcome of a linearizability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinResult {
    /// A legal linearization exists.
    Ok,
    /// No legal linearization; `witness` is a minimized operation
    /// subset that is already contradictory.
    Violation {
        /// Human-readable description of the minimized witness ops.
        witness: Vec<String>,
    },
    /// The search budget ran out before a verdict (never observed on
    /// the bounded-concurrency histories the adapters produce).
    BudgetExhausted,
}

/// Default node-visit budget (a full E17 history explores a few
/// thousand nodes; the budget only guards degenerate inputs).
pub const DEFAULT_BUDGET: u64 = 5_000_000;

/// Checks `ops` for linearizability against the sequential register
/// with initial value [`INITIAL_VALUE`].
pub fn check_register(ops: &[RegOp]) -> LinResult {
    let mut budget = DEFAULT_BUDGET;
    match linearizable(ops, &mut budget) {
        None => LinResult::BudgetExhausted,
        Some(true) => LinResult::Ok,
        Some(false) => LinResult::Violation {
            witness: minimize(ops),
        },
    }
}

/// Bit helpers over the linearized set.
#[inline]
fn set_bit(set: &mut [u64], i: usize) {
    set[i / 64] |= 1 << (i % 64);
}

#[inline]
fn clear_bit(set: &mut [u64], i: usize) {
    set[i / 64] &= !(1 << (i % 64));
}

/// Doubly-linked list over a fixed visit order, with O(1) unlink and
/// exact-reverse relink (dancing links).
struct Links {
    /// `next[i]`/`prev[i]` use `n` as the head/tail sentinel.
    next: Vec<usize>,
    prev: Vec<usize>,
    n: usize,
}

impl Links {
    /// Builds the list threading `order` (a permutation of `0..n`).
    fn new(order: &[usize]) -> Self {
        let n = order.len();
        let mut next = vec![n; n + 1];
        let mut prev = vec![n; n + 1];
        let mut at = n; // sentinel
        for &i in order {
            next[at] = i;
            prev[i] = at;
            at = i;
        }
        next[at] = n;
        prev[n] = at;
        Links { next, prev, n }
    }

    fn head(&self) -> usize {
        self.next[self.n]
    }

    fn unlink(&mut self, i: usize) {
        let (p, q) = (self.prev[i], self.next[i]);
        self.next[p] = q;
        self.prev[q] = p;
    }

    fn relink(&mut self, i: usize) {
        let (p, q) = (self.prev[i], self.next[i]);
        self.next[p] = i;
        self.prev[q] = i;
    }
}

/// One DFS path entry: the op applied and the state needed to undo it.
struct Frame {
    chosen: usize,
    prev_value: u64,
}

/// Memoized WGL search. Returns `None` if `budget` node visits were
/// exhausted, otherwise whether a legal linearization exists.
fn linearizable(ops: &[RegOp], budget: &mut u64) -> Option<bool> {
    let n = ops.len();
    if n == 0 {
        return Some(true);
    }
    let mut by_inv: Vec<usize> = (0..n).collect();
    by_inv.sort_by_key(|&i| (ops[i].inv, i));
    let mut by_ret: Vec<usize> = (0..n).collect();
    by_ret.sort_by_key(|&i| (ops[i].ret, i));
    let mut inv_list = Links::new(&by_inv);
    let mut ret_list = Links::new(&by_ret);

    let words = n.div_ceil(64);
    let mut linearized = vec![0u64; words];
    let mut value = INITIAL_VALUE;
    let mut remaining_required = ops.iter().filter(|o| o.ret != PENDING).count();
    if remaining_required == 0 {
        return Some(true); // nothing observable happened
    }
    let mut memo: HashSet<(Box<[u64]>, u64)> = HashSet::new();
    let mut stack: Vec<Frame> = Vec::new();
    // The candidate under consideration at the current level; `n` when
    // the scan must (re)start from the head of the invocation list.
    let mut cand = usize::MAX;

    loop {
        // Earliest unlinearized response bounds the frontier.
        let min_ret = {
            let h = ret_list.head();
            if h == n {
                PENDING
            } else {
                ops[h].ret
            }
        };
        // Scan for the next applicable candidate.
        if cand == usize::MAX {
            cand = inv_list.head();
        }
        let mut applied = false;
        while cand != n && ops[cand].inv <= min_ret {
            let legal = match ops[cand].kind {
                RegOpKind::Write { .. } => true,
                RegOpKind::Read { returned } => returned == value,
            };
            if legal {
                if *budget == 0 {
                    return None;
                }
                *budget -= 1;
                // Apply.
                let prev_value = value;
                if let RegOpKind::Write { value: w } = ops[cand].kind {
                    value = w;
                }
                set_bit(&mut linearized, cand);
                if ops[cand].ret != PENDING {
                    remaining_required -= 1;
                    if remaining_required == 0 {
                        return Some(true);
                    }
                }
                if memo.insert((linearized.clone().into_boxed_slice(), value)) {
                    inv_list.unlink(cand);
                    ret_list.unlink(cand);
                    stack.push(Frame {
                        chosen: cand,
                        prev_value,
                    });
                    cand = usize::MAX; // restart scan in the new state
                    applied = true;
                    break;
                }
                // State already proven dead: undo and keep scanning.
                clear_bit(&mut linearized, cand);
                if ops[cand].ret != PENDING {
                    remaining_required += 1;
                }
                value = prev_value;
            }
            cand = inv_list.next[cand];
        }
        if applied {
            continue;
        }
        // Exhausted the frontier at this level: backtrack.
        let Some(frame) = stack.pop() else {
            return Some(false);
        };
        let i = frame.chosen;
        inv_list.relink(i);
        ret_list.relink(i);
        clear_bit(&mut linearized, i);
        if ops[i].ret != PENDING {
            remaining_required += 1;
        }
        value = frame.prev_value;
        cand = inv_list.next[i]; // resume after the undone choice
    }
}

/// Truncates the history at response-time `cut`: operations invoked
/// after `cut` disappear, responses after `cut` become pending.
fn truncate(ops: &[RegOp], cut: u64) -> Vec<RegOp> {
    ops.iter()
        .filter(|o| o.inv <= cut)
        .map(|o| {
            let mut o = *o;
            if o.ret > cut {
                o.ret = PENDING;
            }
            o
        })
        // A truncated-to-pending read constrains nothing; drop it like
        // the extractor drops timed-out reads.
        .filter(|o| !(o.ret == PENDING && matches!(o.kind, RegOpKind::Read { .. })))
        .collect()
}

fn fails(ops: &[RegOp]) -> bool {
    let mut budget = DEFAULT_BUDGET;
    linearizable(ops, &mut budget) == Some(false)
}

/// Minimizes a failing history to a small contradictory core: find the
/// earliest failing truncation (failure is monotone in the cut round),
/// then greedily drop every op the contradiction survives without.
fn minimize(ops: &[RegOp]) -> Vec<String> {
    let mut cuts: Vec<u64> = ops
        .iter()
        .map(|o| o.ret)
        .filter(|&r| r != PENDING)
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    // Binary search the earliest failing cut.
    let (mut lo, mut hi) = (0usize, cuts.len().saturating_sub(1));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if fails(&truncate(ops, cuts[mid])) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut core = truncate(ops, cuts[lo]);
    // Greedy shrink (deterministic order: latest ops first, so the
    // early context ops a violation depends on survive).
    let mut i = core.len();
    while i > 0 {
        i -= 1;
        let mut without = core.clone();
        without.remove(i);
        if fails(&without) {
            core = without;
        }
    }
    core.iter().map(RegOp::describe).collect()
}

/// Generates a legal register history of `len` operations — writes of
/// unique values interleaved with reads of the then-current value,
/// with seeded interval jitter producing bounded overlap (generation
/// order is always a valid linearization: invocations strictly
/// increase, so no later op ever precedes an earlier one in real
/// time). Shared by the checker bench and the tests.
pub fn synthetic_history(len: usize, seed: u64) -> Vec<RegOp> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(len);
    let mut current = INITIAL_VALUE;
    let mut t = 0u64;
    for i in 0..len as u64 {
        let inv = t + rng.random_range(0..2u64);
        let ret = inv + 1 + rng.random_range(0..3u64);
        t = inv + 1;
        if rng.random_bool(0.5) {
            let value = 1000 + i;
            ops.push(RegOp {
                id: i,
                kind: RegOpKind::Write { value },
                inv,
                ret,
            });
            current = value;
        } else {
            ops.push(RegOp {
                id: i,
                kind: RegOpKind::Read { returned: current },
                inv,
                ret,
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(id: u64, value: u64, inv: u64, ret: u64) -> RegOp {
        RegOp {
            id,
            kind: RegOpKind::Write { value },
            inv,
            ret,
        }
    }

    fn r(id: u64, returned: u64, inv: u64, ret: u64) -> RegOp {
        RegOp {
            id,
            kind: RegOpKind::Read { returned },
            inv,
            ret,
        }
    }

    #[test]
    fn empty_and_sequential_histories_pass() {
        assert_eq!(check_register(&[]), LinResult::Ok);
        let ops = [
            w(1, 10, 0, 2),
            r(2, 10, 3, 4),
            w(3, 20, 5, 6),
            r(4, 20, 7, 8),
        ];
        assert_eq!(check_register(&ops), LinResult::Ok);
    }

    #[test]
    fn initial_value_reads_pass() {
        let ops = [r(1, INITIAL_VALUE, 0, 1), w(2, 5, 2, 3), r(3, 5, 4, 5)];
        assert_eq!(check_register(&ops), LinResult::Ok);
    }

    #[test]
    fn concurrent_operations_may_reorder() {
        // R→7 overlaps W(7): legal (read linearizes after the write).
        let ops = [w(1, 7, 0, 10), r(2, 7, 2, 3)];
        assert_eq!(check_register(&ops), LinResult::Ok);
        // R→0 also overlaps W(7): legal the other way around.
        let ops = [w(1, 7, 0, 10), r(2, 0, 2, 3)];
        assert_eq!(check_register(&ops), LinResult::Ok);
    }

    #[test]
    fn stale_read_after_acknowledged_write_fails() {
        let ops = [w(1, 7, 0, 2), r(2, 0, 5, 6)];
        let LinResult::Violation { witness } = check_register(&ops) else {
            panic!("stale read must fail");
        };
        assert_eq!(witness.len(), 2, "minimal witness is the pair: {witness:?}");
        assert!(witness.iter().any(|l| l.contains("W(7)")), "{witness:?}");
        assert!(witness.iter().any(|l| l.contains("R→0")), "{witness:?}");
    }

    #[test]
    fn read_of_never_written_value_fails() {
        let ops = [w(1, 7, 0, 2), r(2, 999, 5, 6)];
        assert!(matches!(check_register(&ops), LinResult::Violation { .. }));
    }

    #[test]
    fn pending_write_may_or_may_not_have_happened() {
        // The timed-out W(9) explains the read...
        let ops = [w(1, 9, 0, PENDING), r(2, 9, 5, 6)];
        assert_eq!(check_register(&ops), LinResult::Ok);
        // ...and its absence explains a 0 read *after* another op.
        let ops = [w(1, 9, 0, PENDING), r(2, 0, 5, 6), r(3, 0, 7, 8)];
        assert_eq!(check_register(&ops), LinResult::Ok);
        // But once a read observed it, later reads cannot unsee it.
        let ops = [w(1, 9, 0, PENDING), r(2, 9, 5, 6), r(3, 0, 7, 8)];
        assert!(matches!(check_register(&ops), LinResult::Violation { .. }));
    }

    #[test]
    fn value_must_trace_to_the_latest_possible_write() {
        // W(1) then W(2) sequentially; a read after both returning 1
        // is stale.
        let ops = [w(1, 1, 0, 1), w(2, 2, 2, 3), r(3, 1, 4, 5)];
        assert!(matches!(check_register(&ops), LinResult::Violation { .. }));
        // If W(2) overlaps the read, 1 is fine.
        let ops = [w(1, 1, 0, 1), w(2, 2, 2, 10), r(3, 1, 4, 5)];
        assert_eq!(check_register(&ops), LinResult::Ok);
    }

    #[test]
    fn witness_is_minimized_to_the_contradiction() {
        // Long legal prefix, then the stale-read pair.
        let mut ops: Vec<RegOp> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    w(i, 100 + i, 4 * i, 4 * i + 2)
                } else {
                    r(i, 100 + i - 1, 4 * i, 4 * i + 2)
                }
            })
            .collect();
        ops.push(w(90, 7, 400, 402));
        ops.push(r(91, 0, 405, 406));
        let LinResult::Violation { witness } = check_register(&ops) else {
            panic!("must fail");
        };
        assert!(
            witness.len() <= 3,
            "witness must shrink past the legal prefix: {witness:?}"
        );
    }

    #[test]
    fn long_low_concurrency_history_is_fast_and_passes() {
        // The bench shape: 10k ops, writes of unique values with
        // occasional overlap.
        let ops = synthetic_history(10_000, 42);
        assert_eq!(check_register(&ops), LinResult::Ok);
    }

    #[test]
    fn links_unlink_relink_restore_exactly() {
        let mut l = Links::new(&[2, 0, 1]);
        assert_eq!(l.head(), 2);
        l.unlink(0);
        assert_eq!(l.next[2], 1);
        l.relink(0);
        assert_eq!(l.next[2], 0);
        assert_eq!(l.next[0], 1);
    }
}
