//! Operation-history capture.
//!
//! A [`History`] is the complete, serializable record of what one
//! traffic run's clients observed: invocations, responses, timeouts
//! (Jepsen-style `:info` operations — the op may or may not have taken
//! effect), and the protocol-level observations (lock grants/releases,
//! raw packet deliveries) the checkers need beyond request/response
//! pairs. Events come from the `vi-traffic` driver in deterministic
//! order — identical `(spec, seed)` pairs replay identical histories —
//! so audits are sweep-worker invariant by construction.

use serde::{Deserialize, Serialize};
use vi_telemetry::{CausalRecorder, FlightRecorder, Monitor};
use vi_traffic::{
    run_traffic_observed, run_traffic_recorded, run_traffic_traced, AppKind, AuditRecord, OpDesc,
    OpOutcome, TrafficEvent, TrafficOutcome, TrafficSpec, TrafficWorld,
};

/// One history entry (re-exported from `vi-traffic`, where the driver
/// produces it).
pub type Event = TrafficEvent;

/// The complete operation history of one traffic run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// The driven app (decides which checkers apply).
    pub app: AppKind,
    /// The events, in driver (chronological) order.
    pub events: Vec<Event>,
}

impl History {
    /// Wraps raw driver events into a history for `app`.
    pub fn from_events(app: AppKind, events: Vec<Event>) -> Self {
        History { app, events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of invoked operations.
    pub fn invocations(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Invoke { .. }))
            .count() as u64
    }

    /// The invocation table: `(id, client, vr, op)` per invoke event,
    /// in invocation order.
    pub fn invokes(&self) -> Vec<(u64, u32, u64, OpDesc)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Invoke { id, client, vr, op } => Some((*id, *client, *vr, *op)),
                _ => None,
            })
            .collect()
    }

    /// The completion table: `(id, client, vr, outcome)` per complete
    /// event, in completion order.
    pub fn completes(&self) -> Vec<(u64, u32, u64, OpOutcome)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Complete {
                    id,
                    client,
                    vr,
                    outcome,
                } => Some((*id, *client, *vr, *outcome)),
                _ => None,
            })
            .collect()
    }

    /// The timeout table: `(id, client, vr)` per timeout event.
    pub fn timeouts(&self) -> Vec<(u64, u32, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Timeout { id, client, vr } => Some((*id, *client, *vr)),
                _ => None,
            })
            .collect()
    }

    /// Protocol-level records, in observation order.
    pub fn protocol(&self) -> Vec<AuditRecord> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Protocol { record } => Some(*record),
                _ => None,
            })
            .collect()
    }
}

/// Captures operation histories from traffic runs: the one-shot
/// [`HistoryRecorder::record`] entry the audited scenario compiler
/// uses. Hand-built histories (checker unit tests, external drivers)
/// go through [`History::from_events`] instead.
pub struct HistoryRecorder;

impl HistoryRecorder {
    /// Runs `spec` against the `app` service over `tw` (exactly like
    /// `vi_traffic::run_traffic`) and captures the complete history.
    pub fn record(app: AppKind, tw: TrafficWorld, spec: &TrafficSpec) -> (TrafficOutcome, History) {
        let (outcome, events) = run_traffic_recorded(app, tw, spec);
        (outcome, History::from_events(app, events))
    }

    /// [`HistoryRecorder::record`] with telemetry recorders installed:
    /// causal tracing ties each audited operation to the protocol
    /// broadcasts it rode, and the flight recorder retains the final
    /// rounds for incident bundles. Disabled recorders make this
    /// identical to [`HistoryRecorder::record`].
    pub fn record_traced(
        app: AppKind,
        tw: TrafficWorld,
        spec: &TrafficSpec,
        causal: CausalRecorder,
        flight: FlightRecorder,
    ) -> (TrafficOutcome, History) {
        let (outcome, events) = run_traffic_traced(app, tw, spec, causal, flight);
        (outcome, History::from_events(app, events))
    }

    /// [`HistoryRecorder::record_traced`] with a live monitor sampling
    /// the driver's progress (see `vi_traffic::run_traffic_observed`).
    /// Monitoring rides the wall-clock side: the outcome and history
    /// are byte-identical to [`HistoryRecorder::record_traced`]'s.
    pub fn record_observed(
        app: AppKind,
        tw: TrafficWorld,
        spec: &TrafficSpec,
        causal: CausalRecorder,
        flight: FlightRecorder,
        monitor: &Monitor,
    ) -> (TrafficOutcome, History) {
        let (outcome, events) = run_traffic_observed(app, tw, spec, causal, flight, monitor);
        (outcome, History::from_events(app, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_round_trips_through_json() {
        let h = History::from_events(
            AppKind::Register,
            vec![
                Event::Invoke {
                    id: 1,
                    client: 0,
                    vr: 1,
                    op: OpDesc::Write { value: 1 },
                },
                Event::Complete {
                    id: 1,
                    client: 0,
                    vr: 3,
                    outcome: OpOutcome::Acked,
                },
                Event::Timeout {
                    id: 2,
                    client: 1,
                    vr: 9,
                },
                Event::Protocol {
                    record: AuditRecord::Granted { client: 0, vr: 4 },
                },
            ],
        );
        let json = serde_json::to_string(&h).unwrap();
        let back: History = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        assert_eq!(h.invocations(), 1);
        assert_eq!(h.completes().len(), 1);
        assert_eq!(h.timeouts(), vec![(2, 1, 9)]);
        assert_eq!(h.protocol().len(), 1);
    }

    #[test]
    fn hand_built_histories_preserve_event_order() {
        let h = History::from_events(
            AppKind::Mutex,
            vec![
                Event::Invoke {
                    id: 1,
                    client: 0,
                    vr: 1,
                    op: OpDesc::Acquire,
                },
                Event::Complete {
                    id: 1,
                    client: 0,
                    vr: 2,
                    outcome: OpOutcome::Granted,
                },
            ],
        );
        assert_eq!(h.app, AppKind::Mutex);
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert!(matches!(h.events[0], Event::Invoke { .. }));
    }
}
