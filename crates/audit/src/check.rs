//! Per-app consistency checkers over recorded histories, and the
//! [`audit`] dispatcher that runs every checker an app answers to.
//!
//! All checkers share two conventions:
//!
//! * **Timeouts are information-free.** A timed-out operation may or
//!   may not have taken effect (Jepsen's `:info`); checkers treat it
//!   as concurrent with everything after its invocation and never
//!   require it to have happened — but also never assume it didn't.
//! * **Determinism.** Verdicts and witnesses are pure functions of the
//!   event list; no hash-order or wall-clock state leaks in, so audit
//!   reports are byte-identical across sweep workers.

use crate::history::History;
use crate::linearizability::{self, LinResult, RegOp, RegOpKind, PENDING};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vi_traffic::{AppKind, AuditRecord, OpDesc, OpOutcome, TrafficEvent};

/// A checker's verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The property holds over the recorded history.
    Pass,
    /// The property is violated; the result carries a witness.
    Violation,
    /// The checker could not reach a verdict (search budget ran out).
    /// Distinct from [`Verdict::Violation`]: nothing was proven wrong
    /// — but audits gate conservatively, so it still fails
    /// [`AuditReport::ok`].
    Inconclusive,
}

impl Verdict {
    /// Upper-case table label (`ok` / `VIOLATION` / `INCONCLUSIVE`).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "ok",
            Verdict::Violation => "VIOLATION",
            Verdict::Inconclusive => "INCONCLUSIVE",
        }
    }
}

/// One checker's result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckResult {
    /// Checker name (`linearizable`, `mutual_exclusion`, …).
    pub name: String,
    /// The verdict.
    pub verdict: Verdict,
    /// How many operations/records the checker examined.
    pub checked: u64,
    /// On violation: a minimized, human-readable counterexample.
    pub witness: Option<String>,
    /// Operation ids implicated by the witness (empty when the
    /// checker's counterexample has no per-op structure). Causal
    /// tracing joins these against its op spans to carve the causal
    /// slice of an incident bundle.
    pub witness_ops: Vec<u64>,
}

impl CheckResult {
    fn pass(name: &str, checked: u64) -> Self {
        CheckResult {
            name: name.to_string(),
            verdict: Verdict::Pass,
            checked,
            witness: None,
            witness_ops: Vec::new(),
        }
    }

    fn violation(name: &str, checked: u64, witness: String) -> Self {
        CheckResult {
            name: name.to_string(),
            verdict: Verdict::Violation,
            checked,
            witness: Some(witness),
            witness_ops: Vec::new(),
        }
    }

    fn violation_with_ops(name: &str, checked: u64, witness: String, ops: Vec<u64>) -> Self {
        CheckResult {
            witness_ops: ops,
            ..CheckResult::violation(name, checked, witness)
        }
    }

    fn inconclusive(name: &str, checked: u64, note: String) -> Self {
        CheckResult {
            name: name.to_string(),
            verdict: Verdict::Inconclusive,
            checked,
            witness: Some(note),
            witness_ops: Vec::new(),
        }
    }

    /// `true` if the property held.
    pub fn ok(&self) -> bool {
        self.verdict == Verdict::Pass
    }
}

/// The audit verdicts of one run: one [`CheckResult`] per checker the
/// app answers to.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// The audited app (`register`, `mutex`, …).
    pub app: String,
    /// Operations invoked in the audited history.
    pub ops: u64,
    /// Operations that timed out (`:info` ops).
    pub timeouts: u64,
    /// Per-checker results.
    pub checks: Vec<CheckResult>,
}

impl AuditReport {
    /// `true` if every checker passed.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(CheckResult::ok)
    }

    /// The failed checks, if any.
    pub fn violations(&self) -> Vec<&CheckResult> {
        self.checks.iter().filter(|c| !c.ok()).collect()
    }

    /// `name → verdict` in check order, for table rows.
    pub fn verdict_summary(&self) -> String {
        self.checks
            .iter()
            .map(|c| format!("{}={}", c.name, c.verdict.label()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Runs every checker `history.app` answers to.
pub fn audit(history: &History) -> AuditReport {
    let mut checks = vec![check_well_formed(history)];
    match history.app {
        AppKind::Register => checks.push(check_register_linearizable(history)),
        AppKind::Mutex => {
            checks.push(check_mutual_exclusion(history));
            checks.push(check_fifo_grants(history));
        }
        AppKind::Tracking => checks.push(check_monotone_freshness(history)),
        AppKind::Georouting => checks.push(check_delivery_once(history)),
    }
    AuditReport {
        app: history.app.name().to_string(),
        ops: history.invocations(),
        timeouts: history.timeouts().len() as u64,
        checks,
    }
}

/// Does `outcome` answer `op`? (A `Write` must be `Acked`, a `Read`
/// must carry a value, and so on.)
fn outcome_matches(op: &OpDesc, outcome: &OpOutcome) -> bool {
    matches!(
        (op, outcome),
        (OpDesc::Write { .. }, OpOutcome::Acked)
            | (OpDesc::Read, OpOutcome::ReadValue { .. })
            | (OpDesc::Acquire, OpOutcome::Granted)
            | (OpDesc::Report { .. }, OpOutcome::Reported)
            | (OpDesc::Lookup { .. }, OpOutcome::Answered { .. })
            | (OpDesc::Send { .. }, OpOutcome::Delivered)
    )
}

/// Structural sanity of the history itself: every resolution names an
/// operation that was invoked earlier, by the same client, resolves it
/// at most once, never before its invocation, and with an outcome of
/// the right shape. Every semantic checker builds on this.
pub fn check_well_formed(history: &History) -> CheckResult {
    let mut invoked: BTreeMap<u64, (u32, u64, OpDesc)> = BTreeMap::new();
    let mut resolved: BTreeMap<u64, u64> = BTreeMap::new();
    let mut examined = 0u64;
    let mut problems: Vec<String> = Vec::new();
    for e in &history.events {
        match e {
            TrafficEvent::Invoke { id, client, vr, op } => {
                examined += 1;
                if invoked.insert(*id, (*client, *vr, *op)).is_some() {
                    problems.push(format!("op #{id} invoked twice"));
                }
            }
            TrafficEvent::Complete {
                id,
                client,
                vr,
                outcome,
            } => {
                examined += 1;
                match invoked.get(id) {
                    None => problems.push(format!("completion of #{id} without invocation")),
                    Some((c, inv, op)) => {
                        if c != client {
                            problems.push(format!(
                                "#{id} invoked by client {c} but completed by {client}"
                            ));
                        }
                        if vr < inv {
                            problems.push(format!(
                                "#{id} completed at vr {vr} before its invocation at {inv}"
                            ));
                        }
                        if !outcome_matches(op, outcome) {
                            problems
                                .push(format!("#{id}: outcome {outcome:?} does not answer {op:?}"));
                        }
                    }
                }
                if resolved.insert(*id, *vr).is_some() {
                    problems.push(format!("op #{id} resolved twice"));
                }
            }
            TrafficEvent::Timeout { id, client, vr } => {
                examined += 1;
                match invoked.get(id) {
                    None => problems.push(format!("timeout of #{id} without invocation")),
                    Some((c, inv, _)) => {
                        if c != client {
                            problems.push(format!(
                                "#{id} invoked by client {c} but timed out at {client}"
                            ));
                        }
                        if vr < inv {
                            problems.push(format!(
                                "#{id} timed out at vr {vr} before its invocation at {inv}"
                            ));
                        }
                    }
                }
                if resolved.insert(*id, *vr).is_some() {
                    problems.push(format!("op #{id} resolved twice"));
                }
            }
            TrafficEvent::Protocol { .. } => {}
        }
    }
    if problems.is_empty() {
        CheckResult::pass("well_formed", examined)
    } else {
        problems.truncate(4);
        CheckResult::violation("well_formed", examined, problems.join("; "))
    }
}

/// Extracts the register operations a WGL check runs over: acked and
/// pending writes, plus returned reads (timed-out reads constrain
/// nothing and are dropped).
pub fn register_ops(history: &History) -> Vec<RegOp> {
    let completes: BTreeMap<u64, (u64, OpOutcome)> = history
        .completes()
        .into_iter()
        .map(|(id, _, vr, outcome)| (id, (vr, outcome)))
        .collect();
    let mut ops = Vec::new();
    for (id, _, inv, op) in history.invokes() {
        match op {
            OpDesc::Write { value } => {
                let ret = completes.get(&id).map_or(PENDING, |&(vr, _)| vr);
                ops.push(RegOp {
                    id,
                    kind: RegOpKind::Write { value },
                    inv,
                    ret,
                });
            }
            OpDesc::Read => {
                if let Some(&(vr, OpOutcome::ReadValue { value, .. })) = completes.get(&id) {
                    ops.push(RegOp {
                        id,
                        kind: RegOpKind::Read { returned: value },
                        inv,
                        ret: vr,
                    });
                }
            }
            _ => {}
        }
    }
    ops
}

/// The op ids a minimized witness names. Every witness line the
/// minimizer emits starts with `#<id> ` (see `RegOp::describe`).
fn witness_op_ids(witness: &[String]) -> Vec<u64> {
    witness
        .iter()
        .filter_map(|w| {
            w.strip_prefix('#')
                .and_then(|rest| rest.split_whitespace().next())
                .and_then(|id| id.parse().ok())
        })
        .collect()
}

/// Runs the WGL search over `ops` and wraps the verdict.
fn linearizable_result(ops: &[RegOp]) -> CheckResult {
    let checked = ops.len() as u64;
    match linearizability::check_register(ops) {
        LinResult::Ok => CheckResult::pass("linearizable", checked),
        LinResult::Violation { witness } => {
            let ids = witness_op_ids(&witness);
            CheckResult::violation_with_ops("linearizable", checked, witness.join("; "), ids)
        }
        LinResult::BudgetExhausted => CheckResult::inconclusive(
            "linearizable",
            checked,
            "search budget exhausted before a verdict".into(),
        ),
    }
}

/// The atomic-register checker: WGL search for a legal linearization.
pub fn check_register_linearizable(history: &History) -> CheckResult {
    linearizable_result(&register_ops(history))
}

/// Audits a bag of pre-extracted register operations directly —
/// the entry point for workloads (like the stale-read
/// `MajorityRegister` baseline) that produce [`RegOp`]s without going
/// through the traffic driver's event history.
pub fn audit_register_ops(app: &str, ops: &[RegOp]) -> AuditReport {
    let pending = ops.iter().filter(|o| o.ret == PENDING).count() as u64;
    AuditReport {
        app: app.to_string(),
        ops: ops.len() as u64,
        timeouts: pending,
        checks: vec![linearizable_result(ops)],
    }
}

/// A client's lock-holding interval: grant heard at `granted`,
/// release broadcast at `released` ([`PENDING`] if never released —
/// the server then never grants again, so an open interval can only
/// conflict with a *later* grant, which would be a real violation).
#[derive(Clone, Copy, Debug)]
struct HoldInterval {
    client: u32,
    granted: u64,
    released: u64,
}

/// Pairs each client's grant/release protocol records into holding
/// intervals, in grant order: a grant opens an interval, the client's
/// next release closes its most recent open one.
fn hold_intervals(history: &History) -> Vec<HoldInterval> {
    let mut per_client: BTreeMap<u32, Vec<HoldInterval>> = BTreeMap::new();
    for record in history.protocol() {
        match record {
            AuditRecord::Granted { client, vr } => {
                per_client.entry(client).or_default().push(HoldInterval {
                    client,
                    granted: vr,
                    released: PENDING,
                });
            }
            AuditRecord::Released { client, vr } => {
                if let Some(open) = per_client
                    .entry(client)
                    .or_default()
                    .iter_mut()
                    .rev()
                    .find(|iv| iv.released == PENDING)
                {
                    open.released = vr;
                }
            }
            _ => {}
        }
    }
    let mut all: Vec<HoldInterval> = per_client.into_values().flatten().collect();
    all.sort_by_key(|iv| (iv.granted, iv.client));
    all
}

/// Mutual exclusion: no two clients' holding intervals strictly
/// overlap. Touching is legal — the server can process a release and
/// emit the next grant within the same virtual round, so client B's
/// grant may be heard in the round client A's release hit the channel.
pub fn check_mutual_exclusion(history: &History) -> CheckResult {
    let intervals = hold_intervals(history);
    let checked = intervals.len() as u64;
    let mut max_end: u64 = 0;
    let mut owner: u32 = u32::MAX;
    for iv in &intervals {
        if iv.granted < max_end && iv.client != owner {
            return CheckResult::violation(
                "mutual_exclusion",
                checked,
                format!(
                    "client {} granted at vr {} while client {} still held the lock (until {})",
                    iv.client,
                    iv.granted,
                    owner,
                    if max_end == PENDING {
                        "∞".to_string()
                    } else {
                        max_end.to_string()
                    }
                ),
            );
        }
        if iv.released > max_end {
            max_end = iv.released;
            owner = iv.client;
        }
    }
    CheckResult::pass("mutual_exclusion", checked)
}

/// FIFO-grant discipline, client-observably: per client, grants and
/// releases alternate (no re-grant without a release between), no
/// client receives more grants than it invoked acquires, and each
/// client's acquires complete in invocation order.
pub fn check_fifo_grants(history: &History) -> CheckResult {
    let mut checked = 0u64;
    // (a) alternation per client, in protocol-record order.
    let mut holding: BTreeMap<u32, bool> = BTreeMap::new();
    let mut grants: BTreeMap<u32, u64> = BTreeMap::new();
    for record in history.protocol() {
        let problem = match record {
            AuditRecord::Granted { client, vr } => {
                checked += 1;
                *grants.entry(client).or_default() += 1;
                (holding.insert(client, true) == Some(true)).then(|| {
                    format!("client {client} re-granted at vr {vr} without a release between")
                })
            }
            AuditRecord::Released { client, vr } => (holding.insert(client, false) != Some(true))
                .then(|| format!("client {client} released at vr {vr} without holding the lock")),
            _ => None,
        };
        if let Some(msg) = problem {
            return CheckResult::violation("fifo_grants", checked, msg);
        }
    }
    // (b) grants never exceed invoked acquires.
    let mut acquires: BTreeMap<u32, u64> = BTreeMap::new();
    for (_, client, _, op) in history.invokes() {
        if op == OpDesc::Acquire {
            *acquires.entry(client).or_default() += 1;
        }
    }
    for (&client, &granted) in &grants {
        let asked = acquires.get(&client).copied().unwrap_or(0);
        if granted > asked {
            return CheckResult::violation(
                "fifo_grants",
                checked,
                format!("client {client} got {granted} grants for {asked} acquires"),
            );
        }
    }
    // (c) per-client completion order == invocation order.
    let mut invoked: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for (id, client, _, op) in history.invokes() {
        if op == OpDesc::Acquire {
            invoked.entry(client).or_default().push(id);
        }
    }
    let mut completed: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for (id, client, _, _) in history.completes() {
        completed.entry(client).or_default().push(id);
    }
    for (client, done) in &completed {
        let order: Vec<u64> = invoked
            .get(client)
            .map(|ids| ids.iter().copied().filter(|id| done.contains(id)).collect())
            .unwrap_or_default();
        if &order != done {
            return CheckResult::violation(
                "fifo_grants",
                checked,
                format!("client {client} completed acquires out of invocation order: {done:?}"),
            );
        }
    }
    CheckResult::pass("fifo_grants", checked)
}

/// One object's candidate reports: `(round, cell)` in round order.
type ReportSeq = Vec<(u64, (u32, u32))>;

/// Monotone freshness for the tracking service: every answered lookup
/// returns a cell some report for that object actually carried, the
/// report predates the answer, and successive answers never step
/// backwards through the object's report sequence (the virtual node's
/// state only moves forward). `None` answers are legal only before the
/// first `Some` — the node never forgets an object.
pub fn check_monotone_freshness(history: &History) -> CheckResult {
    // Candidate reports per object: completed (cell, send round) and
    // timed-out (cell, invocation round — the broadcast, if it ever
    // happened, came no earlier) reports, in round order.
    let completes: BTreeMap<u64, (u64, OpOutcome)> = history
        .completes()
        .into_iter()
        .map(|(id, _, vr, outcome)| (id, (vr, outcome)))
        .collect();
    let mut reports: BTreeMap<u32, ReportSeq> = BTreeMap::new();
    for (id, _, inv, op) in history.invokes() {
        if let OpDesc::Report { object, cell } = op {
            let vr = completes.get(&id).map_or(inv, |&(vr, _)| vr);
            reports.entry(object).or_default().push((vr, cell));
        }
    }
    for seq in reports.values_mut() {
        seq.sort_unstable();
    }
    // Answers per object, in completion (chronological) order.
    let invokes: BTreeMap<u64, OpDesc> = history
        .invokes()
        .into_iter()
        .map(|(id, _, _, op)| (id, op))
        .collect();
    let mut checked = 0u64;
    let mut floor: BTreeMap<u32, usize> = BTreeMap::new();
    let mut seen_some: BTreeMap<u32, bool> = BTreeMap::new();
    for (id, _, vr, outcome) in history.completes() {
        let Some(OpDesc::Lookup { object }) = invokes.get(&id) else {
            continue;
        };
        let OpOutcome::Answered { cell } = outcome else {
            continue;
        };
        checked += 1;
        match cell {
            None => {
                if seen_some.get(object).copied().unwrap_or(false) {
                    return CheckResult::violation(
                        "monotone_freshness",
                        checked,
                        format!(
                            "lookup #{id} of object {object} answered unknown at vr {vr} \
                             after an earlier lookup already saw a cell"
                        ),
                    );
                }
            }
            Some(c) => {
                let seq = reports.get(object).map(Vec::as_slice).unwrap_or(&[]);
                let p = floor.get(object).copied().unwrap_or(0);
                match seq[p.min(seq.len())..]
                    .iter()
                    .position(|&(rvr, rcell)| rcell == c && rvr < vr)
                {
                    Some(offset) => {
                        floor.insert(*object, p + offset);
                        seen_some.insert(*object, true);
                    }
                    None => {
                        return CheckResult::violation(
                            "monotone_freshness",
                            checked,
                            format!(
                                "lookup #{id} of object {object} answered {c:?} at vr {vr}, \
                                 which no report at or after the last answered one justifies"
                            ),
                        );
                    }
                }
            }
        }
    }
    CheckResult::pass("monotone_freshness", checked)
}

/// Delivery soundness for georouting: every packet is delivered at
/// most once, only at the virtual node it was addressed to, never
/// before it was sent, and every completed send is backed by a raw
/// delivery record.
pub fn check_delivery_once(history: &History) -> CheckResult {
    let sends: BTreeMap<u32, (u64, usize, u64)> = history
        .invokes()
        .into_iter()
        .filter_map(|(id, _, inv, op)| match op {
            OpDesc::Send { vn, payload } => Some((payload, (id, vn, inv))),
            _ => None,
        })
        .collect();
    let mut delivered: BTreeMap<u32, u64> = BTreeMap::new();
    let mut checked = 0u64;
    for record in history.protocol() {
        let AuditRecord::Delivered { vn, payload, vr } = record else {
            continue;
        };
        checked += 1;
        if let Some(first) = delivered.insert(payload, vr) {
            return CheckResult::violation(
                "delivery_once",
                checked,
                format!("payload {payload} delivered twice (vr {first} and vr {vr})"),
            );
        }
        match sends.get(&payload) {
            None => {
                return CheckResult::violation(
                    "delivery_once",
                    checked,
                    format!("payload {payload} delivered at vn {vn} but never sent"),
                );
            }
            Some(&(id, dst, inv)) => {
                if dst != vn {
                    return CheckResult::violation(
                        "delivery_once",
                        checked,
                        format!("send #{id} addressed vn {dst} but payload surfaced at vn {vn}"),
                    );
                }
                if vr < inv {
                    return CheckResult::violation(
                        "delivery_once",
                        checked,
                        format!("payload {payload} delivered at vr {vr} before its send at {inv}"),
                    );
                }
            }
        }
    }
    // Every completed send is backed by a delivery record.
    let invokes: BTreeMap<u64, OpDesc> = history
        .invokes()
        .into_iter()
        .map(|(id, _, _, op)| (id, op))
        .collect();
    for (id, _, _, outcome) in history.completes() {
        if outcome != OpOutcome::Delivered {
            continue;
        }
        if let Some(OpDesc::Send { payload, .. }) = invokes.get(&id) {
            if !delivered.contains_key(payload) {
                return CheckResult::violation(
                    "delivery_once",
                    checked,
                    format!("send #{id} completed but payload {payload} was never delivered"),
                );
            }
        }
    }
    CheckResult::pass("delivery_once", checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Event;

    fn h(app: AppKind, events: Vec<Event>) -> History {
        History::from_events(app, events)
    }

    fn inv(id: u64, client: u32, vr: u64, op: OpDesc) -> Event {
        Event::Invoke { id, client, vr, op }
    }

    fn done(id: u64, client: u32, vr: u64, outcome: OpOutcome) -> Event {
        Event::Complete {
            id,
            client,
            vr,
            outcome,
        }
    }

    fn proto(record: AuditRecord) -> Event {
        Event::Protocol { record }
    }

    #[test]
    fn well_formed_accepts_clean_and_rejects_orphans() {
        let good = h(
            AppKind::Register,
            vec![
                inv(1, 0, 1, OpDesc::Write { value: 1 }),
                done(1, 0, 3, OpOutcome::Acked),
                inv(2, 1, 4, OpDesc::Read),
                Event::Timeout {
                    id: 2,
                    client: 1,
                    vr: 30,
                },
            ],
        );
        assert!(check_well_formed(&good).ok());
        let orphan = h(AppKind::Register, vec![done(9, 0, 3, OpOutcome::Acked)]);
        let res = check_well_formed(&orphan);
        assert!(!res.ok());
        assert!(res.witness.unwrap().contains("without invocation"));
    }

    #[test]
    fn well_formed_rejects_mismatched_outcome_shape() {
        let bad = h(
            AppKind::Register,
            vec![
                inv(1, 0, 1, OpDesc::Write { value: 1 }),
                done(1, 0, 3, OpOutcome::ReadValue { tag: 1, value: 1 }),
            ],
        );
        assert!(!check_well_formed(&bad).ok());
    }

    #[test]
    fn register_audit_passes_clean_and_fails_stale() {
        let clean = h(
            AppKind::Register,
            vec![
                inv(1, 0, 1, OpDesc::Write { value: 1 }),
                done(1, 0, 3, OpOutcome::Acked),
                inv(2, 1, 4, OpDesc::Read),
                done(2, 1, 6, OpOutcome::ReadValue { tag: 1, value: 1 }),
            ],
        );
        assert!(audit(&clean).ok(), "{:?}", audit(&clean));
        let stale = h(
            AppKind::Register,
            vec![
                inv(1, 0, 1, OpDesc::Write { value: 1 }),
                done(1, 0, 3, OpOutcome::Acked),
                inv(2, 1, 4, OpDesc::Read),
                done(2, 1, 6, OpOutcome::ReadValue { tag: 0, value: 0 }),
            ],
        );
        let report = audit(&stale);
        assert!(!report.ok());
        let bad = &report.violations()[0];
        assert_eq!(bad.name, "linearizable");
        assert!(bad.witness.as_ref().unwrap().contains("R→0"));
        assert!(
            bad.witness_ops.contains(&2),
            "stale read #2 must be implicated: {:?}",
            bad.witness_ops
        );
    }

    #[test]
    fn direct_register_op_audit_matches_history_audit() {
        use crate::linearizability::{RegOp, RegOpKind};
        let ops = vec![
            RegOp {
                id: 1,
                kind: RegOpKind::Write { value: 7 },
                inv: 1,
                ret: 3,
            },
            RegOp {
                id: 2,
                kind: RegOpKind::Read { returned: 0 },
                inv: 4,
                ret: 6,
            },
        ];
        let report = audit_register_ops("majority_register", &ops);
        assert_eq!(report.app, "majority_register");
        assert_eq!(report.ops, 2);
        assert!(!report.ok());
        assert_eq!(report.violations()[0].name, "linearizable");
        assert!(report.violations()[0].witness_ops.contains(&2));
        let clean = vec![ops[0]];
        assert!(audit_register_ops("majority_register", &clean).ok());
    }

    #[test]
    fn exclusion_allows_touching_and_rejects_overlap() {
        let touching = h(
            AppKind::Mutex,
            vec![
                proto(AuditRecord::Granted { client: 0, vr: 5 }),
                proto(AuditRecord::Released { client: 0, vr: 8 }),
                proto(AuditRecord::Granted { client: 1, vr: 8 }),
                proto(AuditRecord::Released { client: 1, vr: 10 }),
            ],
        );
        assert!(check_mutual_exclusion(&touching).ok());
        let overlap = h(
            AppKind::Mutex,
            vec![
                proto(AuditRecord::Granted { client: 0, vr: 5 }),
                proto(AuditRecord::Granted { client: 1, vr: 6 }),
                proto(AuditRecord::Released { client: 0, vr: 8 }),
                proto(AuditRecord::Released { client: 1, vr: 9 }),
            ],
        );
        let res = check_mutual_exclusion(&overlap);
        assert!(!res.ok());
        assert!(res.witness.unwrap().contains("still held"));
    }

    #[test]
    fn open_interval_blocks_later_grants() {
        let hist = h(
            AppKind::Mutex,
            vec![
                proto(AuditRecord::Granted { client: 0, vr: 5 }),
                proto(AuditRecord::Granted { client: 1, vr: 9 }),
            ],
        );
        assert!(!check_mutual_exclusion(&hist).ok());
    }

    #[test]
    fn fifo_rejects_double_grant_and_counts_acquires() {
        let double = h(
            AppKind::Mutex,
            vec![
                inv(1, 0, 1, OpDesc::Acquire),
                proto(AuditRecord::Granted { client: 0, vr: 5 }),
                proto(AuditRecord::Granted { client: 0, vr: 7 }),
            ],
        );
        let res = check_fifo_grants(&double);
        assert!(!res.ok());
        assert!(res.witness.unwrap().contains("re-granted"));
        let phantom = h(
            AppKind::Mutex,
            vec![
                proto(AuditRecord::Granted { client: 3, vr: 5 }),
                proto(AuditRecord::Released { client: 3, vr: 6 }),
            ],
        );
        let res = check_fifo_grants(&phantom);
        assert!(!res.ok(), "grant without any acquire must fail");
    }

    #[test]
    fn freshness_accepts_forward_and_rejects_backward() {
        let fwd = h(
            AppKind::Tracking,
            vec![
                inv(
                    1,
                    0,
                    1,
                    OpDesc::Report {
                        object: 0,
                        cell: (1, 1),
                    },
                ),
                done(1, 0, 2, OpOutcome::Reported),
                inv(
                    2,
                    0,
                    5,
                    OpDesc::Report {
                        object: 0,
                        cell: (2, 2),
                    },
                ),
                done(2, 0, 6, OpOutcome::Reported),
                inv(3, 1, 7, OpDesc::Lookup { object: 0 }),
                done(3, 1, 9, OpOutcome::Answered { cell: Some((2, 2)) }),
            ],
        );
        assert!(check_monotone_freshness(&fwd).ok());
        // A later lookup must not go back to the older cell.
        let mut events = fwd.events.clone();
        events.push(inv(4, 1, 10, OpDesc::Lookup { object: 0 }));
        events.push(done(4, 1, 12, OpOutcome::Answered { cell: Some((1, 1)) }));
        let back = h(AppKind::Tracking, events.clone());
        assert!(!check_monotone_freshness(&back).ok());
        // Nor forget the object entirely.
        events.pop();
        events.push(done(4, 1, 12, OpOutcome::Answered { cell: None }));
        let amnesia = h(AppKind::Tracking, events);
        assert!(!check_monotone_freshness(&amnesia).ok());
    }

    #[test]
    fn freshness_rejects_never_reported_cells_and_time_travel() {
        let bogus = h(
            AppKind::Tracking,
            vec![
                inv(1, 1, 1, OpDesc::Lookup { object: 0 }),
                done(1, 1, 3, OpOutcome::Answered { cell: Some((9, 9)) }),
            ],
        );
        assert!(!check_monotone_freshness(&bogus).ok());
        // Answer predating the report's send round.
        let early = h(
            AppKind::Tracking,
            vec![
                inv(
                    1,
                    0,
                    1,
                    OpDesc::Report {
                        object: 0,
                        cell: (1, 1),
                    },
                ),
                done(1, 0, 8, OpOutcome::Reported),
                inv(2, 1, 2, OpDesc::Lookup { object: 0 }),
                done(2, 1, 4, OpOutcome::Answered { cell: Some((1, 1)) }),
            ],
        );
        assert!(!check_monotone_freshness(&early).ok());
    }

    #[test]
    fn delivery_once_rejects_duplicates_wrong_vn_and_phantoms() {
        let clean = h(
            AppKind::Georouting,
            vec![
                inv(1, 0, 1, OpDesc::Send { vn: 2, payload: 1 }),
                proto(AuditRecord::Delivered {
                    vn: 2,
                    payload: 1,
                    vr: 7,
                }),
                done(1, 0, 7, OpOutcome::Delivered),
            ],
        );
        assert!(check_delivery_once(&clean).ok());
        for (bad, needle) in [
            (
                vec![
                    inv(1, 0, 1, OpDesc::Send { vn: 2, payload: 1 }),
                    proto(AuditRecord::Delivered {
                        vn: 2,
                        payload: 1,
                        vr: 7,
                    }),
                    proto(AuditRecord::Delivered {
                        vn: 2,
                        payload: 1,
                        vr: 9,
                    }),
                ],
                "twice",
            ),
            (
                vec![
                    inv(1, 0, 1, OpDesc::Send { vn: 2, payload: 1 }),
                    proto(AuditRecord::Delivered {
                        vn: 0,
                        payload: 1,
                        vr: 7,
                    }),
                ],
                "addressed",
            ),
            (
                vec![proto(AuditRecord::Delivered {
                    vn: 0,
                    payload: 9,
                    vr: 7,
                })],
                "never sent",
            ),
            (
                vec![
                    inv(1, 0, 1, OpDesc::Send { vn: 2, payload: 1 }),
                    done(1, 0, 7, OpOutcome::Delivered),
                ],
                "never delivered",
            ),
        ] {
            let res = check_delivery_once(&h(AppKind::Georouting, bad));
            assert!(!res.ok());
            assert!(
                res.witness.as_ref().unwrap().contains(needle),
                "{needle}: {res:?}"
            );
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = audit(&h(
            AppKind::Register,
            vec![
                inv(1, 0, 1, OpDesc::Write { value: 1 }),
                done(1, 0, 3, OpOutcome::Acked),
            ],
        ));
        let json = serde_json::to_string(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(report.verdict_summary().contains("linearizable=ok"));
    }
}
