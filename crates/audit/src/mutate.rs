//! Seeded history mutations for checker self-tests.
//!
//! Each [`Mutation`] corrupts a recorded history in a way the checkers
//! *must* detect — the property tests prove every checker accepts
//! recorded-legal histories and rejects every applicable mutation:
//!
//! * [`Mutation::Drop`] removes the invocation of a resolved
//!   operation, leaving a dangling response.
//! * [`Mutation::Swap`] swaps an operation's invocation and response
//!   rounds, making the response precede the invocation.
//! * [`Mutation::Forge`] corrupts a response semantically, per app: a
//!   read returns a never-written value, a client is re-granted the
//!   lock it still holds, a lookup answers a never-reported cell, a
//!   packet is delivered twice.
//!
//! [`drop_response`] is deliberately *not* a corruption: removing a
//! response turns the operation into a timeout-like `:info` op, which
//! a correct checker must still accept (the Jepsen concurrent-forever
//! rule). The property tests assert that too.

use crate::history::{Event, History};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vi_traffic::{AuditRecord, OpOutcome};

/// A guaranteed-illegal corruption of a history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Remove the invocation of a resolved op (dangling response).
    Drop,
    /// Swap an op's invocation and response rounds (response first).
    Swap,
    /// Corrupt a response semantically (app-specific).
    Forge,
}

impl Mutation {
    /// All mutations, in test order.
    pub fn all() -> [Mutation; 3] {
        [Mutation::Drop, Mutation::Swap, Mutation::Forge]
    }
}

/// Picks a seeded index into a collection of `n` candidates, `None`
/// when there is nothing to pick. The shared "choose a target"
/// primitive of both the history mutators below and the `vi-fuzz`
/// spec mutators — one idiom for every seeded choice keeps mutation
/// schedules reproducible from the seed alone.
pub fn pick(rng: &mut StdRng, n: usize) -> Option<usize> {
    (n > 0).then(|| rng.random_range(0..n))
}

/// Applies `mutation` to a copy of `history`, choosing the target with
/// the seeded RNG. Returns `None` when the history offers no
/// applicable target (e.g. forging a read in a history with no
/// completed reads).
pub fn mutate(history: &History, mutation: Mutation, seed: u64) -> Option<History> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = history.clone();
    match mutation {
        Mutation::Drop => {
            // Invocations that were resolved (complete or timeout).
            let resolved: Vec<u64> = out
                .events
                .iter()
                .filter_map(|e| match e {
                    Event::Complete { id, .. } | Event::Timeout { id, .. } => Some(*id),
                    _ => None,
                })
                .collect();
            let targets: Vec<usize> = out
                .events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| match e {
                    Event::Invoke { id, .. } if resolved.contains(id) => Some(i),
                    _ => None,
                })
                .collect();
            let victim = targets[pick(&mut rng, targets.len())?];
            out.events.remove(victim);
        }
        Mutation::Swap => {
            // Ops whose completion round strictly follows invocation.
            let mut targets: Vec<(usize, usize)> = Vec::new(); // (inv idx, complete idx)
            for (ci, e) in out.events.iter().enumerate() {
                let Event::Complete { id, vr, .. } = e else {
                    continue;
                };
                if let Some(ii) = out.events.iter().position(
                    |f| matches!(f, Event::Invoke { id: i, vr: ivr, .. } if i == id && ivr < vr),
                ) {
                    targets.push((ii, ci));
                }
            }
            let (ii, ci) = targets[pick(&mut rng, targets.len())?];
            let (inv_vr, ret_vr) = match (&out.events[ii], &out.events[ci]) {
                (Event::Invoke { vr: a, .. }, Event::Complete { vr: b, .. }) => (*a, *b),
                _ => unreachable!("targets index invoke/complete pairs"),
            };
            if let Event::Invoke { vr, .. } = &mut out.events[ii] {
                *vr = ret_vr;
            }
            if let Event::Complete { vr, .. } = &mut out.events[ci] {
                *vr = inv_vr;
            }
        }
        Mutation::Forge => forge(&mut out, &mut rng)?,
    }
    Some(out)
}

/// App-specific semantic forgery (see module docs).
fn forge(out: &mut History, rng: &mut StdRng) -> Option<()> {
    use vi_traffic::AppKind;
    match out.app {
        AppKind::Register => {
            let targets: Vec<usize> = out
                .events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    matches!(
                        e,
                        Event::Complete {
                            outcome: OpOutcome::ReadValue { .. },
                            ..
                        }
                    )
                    .then_some(i)
                })
                .collect();
            let victim = targets[pick(rng, targets.len())?];
            if let Event::Complete { outcome, .. } = &mut out.events[victim] {
                // No write ever stores u64::MAX (values are request
                // ids), so this read can never linearize.
                *outcome = OpOutcome::ReadValue {
                    tag: u64::MAX,
                    value: u64::MAX,
                };
            }
        }
        AppKind::Mutex => {
            let targets: Vec<(usize, AuditRecord)> = out
                .events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| match e {
                    Event::Protocol {
                        record: record @ AuditRecord::Granted { .. },
                    } => Some((i, *record)),
                    _ => None,
                })
                .collect();
            let (victim, record) = targets[pick(rng, targets.len())?];
            // A second grant to the same client with no release
            // between: the fifo_grants alternation check must fire.
            out.events.insert(victim + 1, Event::Protocol { record });
        }
        AppKind::Tracking => {
            let targets: Vec<usize> = out
                .events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    matches!(
                        e,
                        Event::Complete {
                            outcome: OpOutcome::Answered { .. },
                            ..
                        }
                    )
                    .then_some(i)
                })
                .collect();
            let victim = targets[pick(rng, targets.len())?];
            if let Event::Complete { outcome, .. } = &mut out.events[victim] {
                // No client ever reports this cell (positions are
                // quantized from in-arena coordinates).
                *outcome = OpOutcome::Answered {
                    cell: Some((u32::MAX, u32::MAX)),
                };
            }
        }
        AppKind::Georouting => {
            let targets: Vec<(usize, AuditRecord)> = out
                .events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| match e {
                    Event::Protocol {
                        record: record @ AuditRecord::Delivered { .. },
                    } => Some((i, *record)),
                    _ => None,
                })
                .collect();
            let (victim, record) = targets[pick(rng, targets.len())?];
            out.events.insert(victim + 1, Event::Protocol { record });
        }
    }
    Some(())
}

/// Removes the response of a seeded-chosen *completed* operation. The
/// result is still a legal history — the op becomes concurrent-forever
/// — and every checker must keep accepting it.
pub fn drop_response(history: &History, seed: u64) -> Option<History> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = history.clone();
    let targets: Vec<usize> = out
        .events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, Event::Complete { .. }).then_some(i))
        .collect();
    let victim = targets[pick(&mut rng, targets.len())?];
    out.events.remove(victim);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::audit;
    use vi_traffic::{AppKind, OpDesc};

    fn register_history() -> History {
        History::from_events(
            AppKind::Register,
            vec![
                Event::Invoke {
                    id: 1,
                    client: 0,
                    vr: 1,
                    op: OpDesc::Write { value: 1 },
                },
                Event::Complete {
                    id: 1,
                    client: 0,
                    vr: 3,
                    outcome: OpOutcome::Acked,
                },
                Event::Invoke {
                    id: 2,
                    client: 1,
                    vr: 4,
                    op: OpDesc::Read,
                },
                Event::Complete {
                    id: 2,
                    client: 1,
                    vr: 6,
                    outcome: OpOutcome::ReadValue { tag: 1, value: 1 },
                },
            ],
        )
    }

    #[test]
    fn every_mutation_flips_a_clean_register_history_to_rejected() {
        let clean = register_history();
        assert!(audit(&clean).ok());
        for m in Mutation::all() {
            let broken = mutate(&clean, m, 7).expect("applicable");
            assert!(!audit(&broken).ok(), "{m:?} must be rejected");
        }
    }

    #[test]
    fn drop_response_keeps_the_history_legal() {
        let clean = register_history();
        let looser = drop_response(&clean, 3).expect("has completions");
        assert_eq!(looser.events.len(), clean.events.len() - 1);
        assert!(audit(&looser).ok(), "{:?}", audit(&looser));
    }

    #[test]
    fn inapplicable_mutations_return_none() {
        let empty = History::from_events(AppKind::Register, Vec::new());
        for m in Mutation::all() {
            assert_eq!(mutate(&empty, m, 1), None);
        }
        assert_eq!(drop_response(&empty, 1), None);
    }

    #[test]
    fn mutations_are_seed_deterministic() {
        let clean = register_history();
        assert_eq!(
            mutate(&clean, Mutation::Forge, 11),
            mutate(&clean, Mutation::Forge, 11)
        );
    }
}
