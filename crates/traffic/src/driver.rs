//! The workload driver: turns a [`TrafficSpec`] plus a [`Service`]
//! into a measured run.
//!
//! Open loop: a deterministic fractional accumulator over the active
//! rate admits requests on a fixed schedule, regardless of how the
//! service keeps up — the discipline that exposes queueing collapse.
//! Closed loop: each client keeps `k` requests in flight with a think
//! pause after each completion. Open-loop arrivals are assigned to
//! clients round-robin; request classes are drawn from an RNG stream
//! salted off the run seed — identical `(spec, seed)` pairs replay
//! identical request streams no matter which sweep worker executes
//! them.

use crate::metrics::{LatencyHistogram, TrafficSummary};
use crate::service::{
    build_service, AuditRecord, Completion, OpClass, OpDesc, OpOutcome, Request, Service,
    TrafficWorld,
};
use crate::workload::{AppKind, LoadMode, TrafficSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vi_radio::trace::ChannelStats;
use vi_telemetry::{CausalRecorder, FlightRecorder, Monitor, TrafficProgress};

/// Salt separating the traffic RNG stream from the engine's seed
/// stream (request mix never perturbs channel resolution).
const TRAFFIC_SALT: u64 = 0x5bd1_e995_9e37_79b9;

/// What one traffic run produced, beyond the client-visible summary:
/// the channel and emulation counters the scenario outcome reports.
#[derive(Clone, Debug)]
pub struct TrafficOutcome {
    /// The client-visible metrics.
    pub summary: TrafficSummary,
    /// Channel statistics of the underlying run.
    pub stats: ChannelStats,
    /// Green (decided) agreement instances across all virtual nodes.
    pub vn_decided: u64,
    /// ⊥ instances.
    pub vn_bottom: u64,
    /// Join transfers.
    pub vn_joins: u64,
    /// Virtual-node resets.
    pub vn_resets: u64,
}

/// One entry of the operation history a traffic run leaves behind.
///
/// Events are appended in driver order — admission before the round's
/// step, completions in service order, timeouts last — which is a
/// deterministic function of `(spec, seed)`. Every admitted request
/// resolves exactly once: a `Complete`, or a `Timeout` (the Jepsen
/// `:info` case — the operation may or may not have taken effect, and
/// consistency checkers must treat it as concurrent with everything
/// after its invocation). A completion arriving *after* the timeout
/// sweep already resolved its request is not recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficEvent {
    /// A request entered the system.
    Invoke {
        /// The request id.
        id: u64,
        /// The issuing client.
        client: u32,
        /// Virtual round of admission.
        vr: u64,
        /// The concrete operation the adapter issued.
        op: OpDesc,
    },
    /// A request completed with a response.
    Complete {
        /// The request id.
        id: u64,
        /// The issuing client.
        client: u32,
        /// Virtual round the response was heard.
        vr: u64,
        /// What the response said.
        outcome: OpOutcome,
    },
    /// A request was dropped unresolved after its timeout.
    Timeout {
        /// The request id.
        id: u64,
        /// The issuing client.
        client: u32,
        /// Virtual round of the timeout sweep.
        vr: u64,
    },
    /// A protocol-level service observation (grants, releases, raw
    /// deliveries).
    Protocol {
        /// The observation.
        record: AuditRecord,
    },
}

/// A closed-loop request slot.
enum Slot {
    /// Waiting for the in-flight request with this id.
    InFlight(u64),
    /// Thinking; reissue at this virtual round.
    ThinkUntil(u64),
}

/// Runs `spec` against the app service built over `tw`.
///
/// # Panics
///
/// Panics if the spec is invalid (callers validate up front) or the
/// deployment has fewer devices than `spec.clients`.
pub fn run_traffic(app: AppKind, tw: TrafficWorld, spec: &TrafficSpec) -> TrafficOutcome {
    run_traffic_recorded(app, tw, spec).0
}

/// Like [`run_traffic`], but additionally returns the complete
/// operation history of the run — the input of the `vi-audit`
/// consistency checkers.
pub fn run_traffic_recorded(
    app: AppKind,
    tw: TrafficWorld,
    spec: &TrafficSpec,
) -> (TrafficOutcome, Vec<TrafficEvent>) {
    run_traffic_traced(
        app,
        tw,
        spec,
        CausalRecorder::disabled(),
        FlightRecorder::disabled(),
    )
}

/// Like [`run_traffic_recorded`], with telemetry recorders installed:
/// `causal` traces every invocation/completion (and, through the
/// world's engine, every broadcast/reception), `flight` retains the
/// last K rounds of structured channel events. Disabled recorders make
/// this identical to [`run_traffic_recorded`].
pub fn run_traffic_traced(
    app: AppKind,
    tw: TrafficWorld,
    spec: &TrafficSpec,
    causal: CausalRecorder,
    flight: FlightRecorder,
) -> (TrafficOutcome, Vec<TrafficEvent>) {
    run_traffic_observed(app, tw, spec, causal, flight, &Monitor::disabled())
}

/// Like [`run_traffic_traced`], with a live monitor sampling the
/// driver's in-flight picture (issued/completed/timed-out totals and
/// live latency quantiles) every K virtual rounds. The monitor rides
/// the wall-clock side: a monitored run's summary, history, and stats
/// are byte-identical to an unmonitored one's. A disabled monitor
/// makes this identical to [`run_traffic_traced`].
pub fn run_traffic_observed(
    app: AppKind,
    tw: TrafficWorld,
    spec: &TrafficSpec,
    causal: CausalRecorder,
    flight: FlightRecorder,
    monitor: &Monitor,
) -> (TrafficOutcome, Vec<TrafficEvent>) {
    spec.validate().expect("invalid traffic spec");
    let seed = tw.seed;
    let mut service = build_service(app, tw, spec.clients);
    service.set_telemetry(causal.clone(), flight);
    let mut events = Vec::new();
    let summary = drive_inner(
        service.as_mut(),
        spec,
        seed,
        Some(&mut events),
        &causal,
        monitor,
    );
    let totals = service.world_totals();
    (
        TrafficOutcome {
            summary,
            stats: service.stats(),
            vn_decided: totals.decided,
            vn_bottom: totals.bottom,
            vn_joins: totals.joins,
            vn_resets: totals.resets,
        },
        events,
    )
}

/// Drives `service` under `spec`, measuring completions. Exposed so
/// tests and benches can drive hand-built services. Records nothing:
/// the unaudited hot path stays free of per-request event pushes.
pub fn drive(service: &mut dyn Service, spec: &TrafficSpec, seed: u64) -> TrafficSummary {
    drive_inner(
        service,
        spec,
        seed,
        None,
        &CausalRecorder::disabled(),
        &Monitor::disabled(),
    )
}

/// [`drive`], additionally recording the complete operation history.
pub fn drive_recorded(
    service: &mut dyn Service,
    spec: &TrafficSpec,
    seed: u64,
) -> (TrafficSummary, Vec<TrafficEvent>) {
    let mut events = Vec::new();
    let summary = drive_inner(
        service,
        spec,
        seed,
        Some(&mut events),
        &CausalRecorder::disabled(),
        &Monitor::disabled(),
    );
    (summary, events)
}

fn drive_inner(
    service: &mut dyn Service,
    spec: &TrafficSpec,
    seed: u64,
    mut events: Option<&mut Vec<TrafficEvent>>,
    causal: &CausalRecorder,
    monitor: &Monitor,
) -> TrafficSummary {
    let mut rng = StdRng::seed_from_u64(seed ^ TRAFFIC_SALT);
    let clients = spec.clients;
    let app_name = service.app().name();
    let has_reads = matches!(service.app(), AppKind::Register | AppKind::Tracking);

    // id → (issued vr, client).
    let mut outstanding: BTreeMap<u64, (u64, usize)> = BTreeMap::new();
    let mut hist = LatencyHistogram::new();
    let mut gen = Admission {
        next_id: 0,
        has_reads,
        query_fraction: spec.query_fraction,
    };
    let mut completed = 0u64;
    let mut timed_out = 0u64;
    let mut peak = 0u64;

    // Open-loop arrival accumulator; closed-loop slot tables.
    let mut acc = 0.0f64;
    let mut rr_client = 0usize;
    let mut slots: Vec<Vec<Slot>> = match spec.mode {
        LoadMode::Closed {
            outstanding_per_client,
            ..
        } => (0..clients)
            .map(|_| {
                (0..outstanding_per_client)
                    .map(|_| Slot::ThinkUntil(1))
                    .collect()
            })
            .collect(),
        LoadMode::Open { .. } => Vec::new(),
    };

    // Admission window plus a drain tail long enough for every late
    // request to either complete or time out (a request admitted in
    // the final window round needs `timeout_rounds + 1` more sweeps
    // to cross the strict `> timeout_rounds` threshold).
    let total_rounds = spec.virtual_rounds + spec.timeout_rounds + 1;
    for vr in 1..=total_rounds {
        if vr <= spec.virtual_rounds {
            match &spec.mode {
                LoadMode::Open { .. } => {
                    acc += spec.rate_at(vr).expect("open mode has a rate");
                    while acc >= 1.0 {
                        acc -= 1.0;
                        let client = rr_client % clients;
                        rr_client += 1;
                        gen.issue(
                            service,
                            &mut rng,
                            &mut outstanding,
                            events.as_deref_mut(),
                            causal,
                            client,
                            vr,
                        );
                    }
                }
                LoadMode::Closed { .. } => {
                    for (client, client_slots) in slots.iter_mut().enumerate() {
                        for slot in client_slots.iter_mut() {
                            if let Slot::ThinkUntil(at) = *slot {
                                if vr >= at {
                                    let id = gen.issue(
                                        service,
                                        &mut rng,
                                        &mut outstanding,
                                        events.as_deref_mut(),
                                        causal,
                                        client,
                                        vr,
                                    );
                                    *slot = Slot::InFlight(id);
                                }
                            }
                        }
                    }
                }
            }
        }

        let completions: Vec<Completion> = service.step_round();
        let mut this_round = 0u64;
        for c in completions {
            let Some((issued_vr, client)) = outstanding.remove(&c.id) else {
                continue; // late completion of a timed-out request
            };
            causal.complete(app_name, c.id, c.completed_vr);
            if let Some(ev) = events.as_deref_mut() {
                ev.push(TrafficEvent::Complete {
                    id: c.id,
                    client: client as u32,
                    vr: c.completed_vr,
                    outcome: c.outcome,
                });
            }
            hist.record(c.completed_vr.saturating_sub(issued_vr));
            completed += 1;
            this_round += 1;
            free_slot(&mut slots, client, c.id, vr, &spec.mode);
        }
        peak = peak.max(this_round);
        // Drain the service's audit records every round — they would
        // accumulate for the whole run otherwise — but record them
        // only when a history is wanted.
        let records = service.drain_audit();
        if let Some(ev) = events.as_deref_mut() {
            for record in records {
                ev.push(TrafficEvent::Protocol { record });
            }
        }

        // Timeout sweep.
        let dead: Vec<u64> = outstanding
            .iter()
            .filter(|(_, &(issued_vr, _))| vr.saturating_sub(issued_vr) > spec.timeout_rounds)
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            let (_, client) = outstanding.remove(&id).expect("just listed");
            if let Some(ev) = events.as_deref_mut() {
                ev.push(TrafficEvent::Timeout {
                    id,
                    client: client as u32,
                    vr,
                });
            }
            timed_out += 1;
            service.forget(id);
            free_slot(&mut slots, client, id, vr, &spec.mode);
        }

        // Live-monitoring sample point: the progress closure is only
        // evaluated on a live monitor, so the unmonitored hot path
        // pays one branch here and computes no quantiles.
        monitor.traffic_round(vr, || {
            let q = |v: u64| if hist.count() == 0 { 0 } else { v };
            TrafficProgress {
                issued: gen.next_id,
                completed,
                timed_out,
                in_flight: outstanding.len() as u64,
                p50: q(hist.p50()),
                p95: q(hist.p95()),
            }
        });
    }

    // Quantiles of an empty histogram are the EMPTY_QUANTILE sentinel;
    // a run that completed nothing reports inert zeros instead.
    let q = |v: u64| if hist.count() == 0 { 0 } else { v };
    TrafficSummary {
        app: app_name.to_string(),
        mode: spec.mode.name().to_string(),
        issued: gen.next_id,
        completed,
        timed_out,
        in_flight_at_end: outstanding.len() as u64,
        p50: q(hist.p50()),
        p95: q(hist.p95()),
        p99: q(hist.p99()),
        max: hist.max(),
        mean: hist.mean(),
        throughput_per_round: completed as f64 / spec.virtual_rounds as f64,
        peak_round_completions: peak,
        latency: hist,
    }
}

/// Request admission: assigns ids and classes.
struct Admission {
    next_id: u64,
    has_reads: bool,
    query_fraction: f64,
}

impl Admission {
    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        service: &mut dyn Service,
        rng: &mut StdRng,
        outstanding: &mut BTreeMap<u64, (u64, usize)>,
        events: Option<&mut Vec<TrafficEvent>>,
        causal: &CausalRecorder,
        client: usize,
        vr: u64,
    ) -> u64 {
        self.next_id += 1;
        causal.invoke(self.next_id, client as u64, vr);
        let class = if self.has_reads && rng.random_bool(self.query_fraction) {
            OpClass::Query
        } else {
            OpClass::Mutate
        };
        let req = Request {
            id: self.next_id,
            class,
            issued_vr: vr,
        };
        outstanding.insert(req.id, (vr, client));
        let op = service.submit(client, &req);
        if let Some(ev) = events {
            ev.push(TrafficEvent::Invoke {
                id: req.id,
                client: client as u32,
                vr,
                op,
            });
        }
        self.next_id
    }
}

/// Returns a closed-loop slot to thinking after its request resolved.
fn free_slot(slots: &mut [Vec<Slot>], client: usize, id: u64, vr: u64, mode: &LoadMode) {
    if let LoadMode::Closed { think_rounds, .. } = mode {
        if let Some(slot) = slots[client]
            .iter_mut()
            .find(|s| matches!(s, Slot::InFlight(e) if *e == id))
        {
            *slot = Slot::ThinkUntil(vr + 1 + think_rounds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::DevicePlan;
    use vi_core::vi::VnLayout;
    use vi_radio::geometry::Point;
    use vi_radio::mobility::{MobilityModel, Static};
    use vi_radio::{AdversaryKind, RadioConfig};

    fn small_world(n: usize, seed: u64) -> TrafficWorld {
        let vn = Point::new(50.0, 50.0);
        let devices = (0..n)
            .map(|i| {
                let start = Point::new(49.4 + 0.4 * i as f64, 50.2);
                DevicePlan {
                    start,
                    mobility: Box::new(Static::new(start)) as Box<dyn MobilityModel>,
                    spawn_at: None,
                    crash_at: None,
                }
            })
            .collect();
        TrafficWorld {
            radio: RadioConfig::reliable(10.0, 20.0),
            layout: VnLayout::new(vec![vn], 2.5),
            seed,
            adversary: AdversaryKind::None,
            devices,
        }
    }

    #[test]
    fn open_loop_register_completes_most_requests() {
        let spec = TrafficSpec::open(2, 0.25, 40);
        let out = run_traffic(AppKind::Register, small_world(3, 3), &spec);
        let s = &out.summary;
        assert_eq!(s.app, "register");
        assert_eq!(s.mode, "open");
        assert_eq!(s.issued, 10, "0.25/vr over 40 rounds (binary-exact rate)");
        assert!(s.completed >= s.issued / 2, "most requests complete: {s:?}");
        assert_eq!(
            s.completed + s.timed_out + s.in_flight_at_end,
            s.issued,
            "every request is accounted for: {s:?}"
        );
        assert_eq!(s.latency.count(), s.completed);
        assert!(s.p50 >= 1, "latency is at least one virtual round");
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(out.stats.broadcasts > 0);
        assert!(out.vn_decided > 0, "the virtual node made progress");
    }

    #[test]
    fn closed_loop_keeps_bounded_outstanding() {
        let spec = TrafficSpec::closed(2, 1, 2, 30);
        let out = run_traffic(AppKind::Tracking, small_world(3, 5), &spec);
        let s = &out.summary;
        assert_eq!(s.mode, "closed");
        assert!(s.issued > 0);
        assert!(
            s.in_flight_at_end <= 2,
            "at most k per client outstanding: {s:?}"
        );
        assert_eq!(s.completed + s.timed_out + s.in_flight_at_end, s.issued);
    }

    #[test]
    fn runs_are_deterministic_per_seed_and_distinct_across_seeds() {
        let spec = TrafficSpec::open(2, 0.4, 30);
        let a = run_traffic(AppKind::Register, small_world(3, 8), &spec).summary;
        let b = run_traffic(AppKind::Register, small_world(3, 8), &spec).summary;
        assert_eq!(a, b, "same (spec, seed) must reproduce exactly");
        let c = run_traffic(AppKind::Register, small_world(3, 9), &spec).summary;
        // Identical schedule, but the channel RNG differs; the runs
        // must at minimum not be byte-identical in latency.
        assert_eq!(a.issued, c.issued, "arrival schedule is seed-independent");
    }

    #[test]
    fn overload_times_out_instead_of_hanging() {
        // 2 requests per round at a service rate of ~1 reply per
        // round: the queue grows without bound, and the excess must
        // surface as timeouts, not lost accounting.
        let mut spec = TrafficSpec::open(2, 2.0, 30);
        spec.timeout_rounds = 10;
        let out = run_traffic(AppKind::Register, small_world(3, 4), &spec);
        let s = &out.summary;
        assert_eq!(s.issued, 60);
        assert!(s.timed_out > 0, "overload must produce timeouts: {s:?}");
        assert_eq!(s.completed + s.timed_out + s.in_flight_at_end, s.issued);
    }

    #[test]
    fn adversary_reaches_the_traffic_channel() {
        // A total-loss burst across the whole admission window must
        // hurt: the same workload that completes cleanly on a quiet
        // channel times out under the adversary.
        let mut spec = TrafficSpec::open(2, 0.5, 20);
        spec.timeout_rounds = 8;
        let clean = run_traffic(AppKind::Register, small_world(3, 2), &spec);
        let mut jammed_world = small_world(3, 2);
        jammed_world.radio = RadioConfig::stabilizing(10.0, 20.0, u64::MAX);
        jammed_world.adversary = vi_radio::AdversaryKind::Burst(vec![0..5_000, 5_000..10_000]);
        let jammed = run_traffic(AppKind::Register, jammed_world, &spec);
        assert!(clean.summary.completed > 0);
        assert_eq!(
            jammed.summary.completed, 0,
            "nothing completes through a total-loss burst: {:?}",
            jammed.summary
        );
        assert_eq!(
            jammed.summary.timed_out, jammed.summary.issued,
            "every request must resolve to a timeout within the drain tail"
        );
        assert_eq!(jammed.summary.in_flight_at_end, 0);
    }

    #[test]
    fn recorded_history_resolves_every_request_exactly_once() {
        // A jammed channel forces timeouts; the history must surface
        // them as `Timeout` events, one per unresolved request.
        let mut spec = TrafficSpec::open(2, 0.5, 20);
        spec.timeout_rounds = 8;
        let mut world = small_world(3, 2);
        world.radio = RadioConfig::stabilizing(10.0, 20.0, u64::MAX);
        world.adversary = vi_radio::AdversaryKind::Burst(vec![0..5_000, 5_000..10_000]);
        let (out, events) = run_traffic_recorded(AppKind::Register, world, &spec);
        let s = &out.summary;
        assert!(s.timed_out > 0, "jam must time requests out: {s:?}");
        use std::collections::BTreeMap;
        let mut resolved: BTreeMap<u64, u32> = BTreeMap::new();
        let mut invoked: BTreeMap<u64, u64> = BTreeMap::new();
        for e in &events {
            match e {
                TrafficEvent::Invoke { id, vr, .. } => {
                    assert!(invoked.insert(*id, *vr).is_none(), "double invoke of {id}");
                }
                TrafficEvent::Complete { id, vr, .. } | TrafficEvent::Timeout { id, vr, .. } => {
                    assert!(
                        invoked.get(id).is_some_and(|inv| inv <= vr),
                        "resolution of {id} precedes its invocation"
                    );
                    *resolved.entry(*id).or_default() += 1;
                }
                TrafficEvent::Protocol { .. } => {}
            }
        }
        assert_eq!(invoked.len() as u64, s.issued);
        assert!(resolved.values().all(|&n| n == 1), "one resolution per id");
        let timeouts = events
            .iter()
            .filter(|e| matches!(e, TrafficEvent::Timeout { .. }))
            .count() as u64;
        assert_eq!(timeouts, s.timed_out, "timeouts surface as events");
    }

    #[test]
    fn recorded_history_is_deterministic() {
        let spec = TrafficSpec::open(2, 0.4, 25);
        let (_, a) = run_traffic_recorded(AppKind::Mutex, small_world(3, 6), &spec);
        let (_, b) = run_traffic_recorded(AppKind::Mutex, small_world(3, 6), &spec);
        assert_eq!(a, b, "identical (spec, seed) must replay the history");
        assert!(
            a.iter().any(|e| matches!(e, TrafficEvent::Protocol { .. })),
            "mutex histories carry grant/release protocol events"
        );
    }

    #[test]
    fn traced_runs_match_untraced_and_record_op_spans() {
        let spec = TrafficSpec::open(2, 0.4, 25);
        let (a, ea) = run_traffic_recorded(AppKind::Register, small_world(3, 6), &spec);
        let causal = CausalRecorder::enabled(6);
        let flight = FlightRecorder::enabled(8);
        let (b, eb) = run_traffic_traced(
            AppKind::Register,
            small_world(3, 6),
            &spec,
            causal.clone(),
            flight.clone(),
        );
        assert_eq!(a.summary, b.summary, "tracing must not perturb the run");
        assert_eq!(ea, eb, "histories must be identical under tracing");
        let s = causal.summary().expect("recorder was enabled");
        assert_eq!(
            s.op_spans.len() as u64,
            b.summary.issued,
            "every admitted op minted a span"
        );
        let d = s.decision.get("register").expect("decision stats");
        assert_eq!(d.samples, b.summary.completed);
        assert!(d.p50 >= 1, "latencies are at least one virtual round");
        assert!(
            !flight.window().is_empty(),
            "the flight recorder retained rounds"
        );
        assert!(flight.window().len() <= 8, "the window is bounded");
    }

    #[test]
    fn all_apps_drive_end_to_end() {
        for app in AppKind::all() {
            let spec = TrafficSpec::open(2, 0.2, 30).with_query_fraction(0.4);
            let out = run_traffic(app, small_world(3, 6), &spec);
            let s = &out.summary;
            assert_eq!(s.app, app.name());
            assert!(s.issued > 0, "{}: issued", app.name());
            assert!(
                s.completed > 0,
                "{}: at least some requests complete: {s:?}",
                app.name()
            );
        }
    }
}
