//! Streaming latency metrics: the per-run traffic summary, built on
//! the shared fixed-bucket histogram.
//!
//! The histogram itself ([`LatencyHistogram`]) lives in
//! `vi-telemetry` — it is the same structure the engine's wall-clock
//! phase timers aggregate into — and is re-exported here so existing
//! `vi_traffic::LatencyHistogram` users keep compiling unchanged. In
//! this crate it records latencies in *virtual rounds*: one `record`
//! per completed request, no allocation, no float arithmetic.

use serde::{Deserialize, Serialize};

pub use vi_telemetry::{LatencyHistogram, BUCKETS};

/// Everything measured about one traffic run: the row E16 reports per
/// `(app, scenario, mode)` and the payload `ScenarioOutcome` carries
/// for traffic workloads.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficSummary {
    /// The driven application (`register`, `mutex`, …).
    pub app: String,
    /// `open` or `closed`.
    pub mode: String,
    /// Requests admitted by the generator.
    pub issued: u64,
    /// Requests completed within their timeout.
    pub completed: u64,
    /// Requests dropped after `timeout_rounds` without a response.
    pub timed_out: u64,
    /// Requests still outstanding when the run ended (issued late
    /// enough that neither completion nor timeout resolved them).
    pub in_flight_at_end: u64,
    /// Completed-request latency distribution, in virtual rounds.
    pub latency: LatencyHistogram,
    /// Median latency (virtual rounds).
    pub p50: u64,
    /// 95th-percentile latency.
    pub p95: u64,
    /// 99th-percentile latency.
    pub p99: u64,
    /// Maximum latency (exact).
    pub max: u64,
    /// Mean latency.
    pub mean: f64,
    /// Completions per virtual round over the admission window.
    pub throughput_per_round: f64,
    /// Most completions observed in a single virtual round.
    pub peak_round_completions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histogram's own unit tests live in vi-telemetry; this
    // checks only the re-export keeps the traffic-facing contract.
    #[test]
    fn reexported_histogram_behaves() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.p50(), 2, "3rd smallest of 0,1,2,3,3,7");
        assert_eq!(h.max(), 7);
        let json = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
