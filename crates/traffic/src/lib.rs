//! # vi-traffic
//!
//! Deterministic client load generation and streaming latency metrics
//! over the vi-apps — the paper's virtual nodes treated the way a
//! real service benchmark treats a server fleet.
//!
//! The paper's programming-simplification argument is that ordinary
//! client programs (GeoQuorums registers, tracking, georouting,
//! mutual exclusion) can run over a collision-prone radio network as
//! if the virtual nodes were reliable servers. This crate measures
//! that claim under sustained client *traffic*:
//!
//! * [`Service`] (module [`service`]) — a uniform request/response
//!   adapter per app: submit a [`Request`], step the world one
//!   virtual round, harvest round-stamped [`Completion`]s. Client
//!   endpoints are ordinary `ClientApp`s fed through shared ports,
//!   broadcasting in staggered slots so client-phase broadcasts never
//!   collide.
//! * [`TrafficSpec`] (module [`workload`]) — the serializable
//!   workload description: open-loop (seeded arrival schedule with
//!   rate ramps/bursts) or closed-loop (k outstanding per client with
//!   think time), op mix, timeout, and measurement window. Embedded
//!   in `vi_scenario::ScenarioSpec` workloads, so traffic runs are
//!   data like everything else.
//! * [`LatencyHistogram`] (module [`metrics`]) — fixed-bucket
//!   log-linear latency histograms: allocation-free `record`,
//!   commutative `merge`, deterministic quantiles. Identical
//!   `(spec, seed)` pairs yield byte-identical histograms no matter
//!   how many sweep workers executed them.
//! * The **driver** (module [`driver`]) — [`run_traffic`] builds the
//!   service over a [`TrafficWorld`], replays the admission schedule,
//!   sweeps timeouts, and emits a [`TrafficSummary`]
//!   (p50/p95/p99/max, throughput, drop accounting).
//!   [`run_traffic_recorded`] additionally returns the run's complete
//!   operation history as [`TrafficEvent`]s — invocations with
//!   concrete [`OpDesc`]s, responses with semantic [`OpOutcome`]s,
//!   timeouts, and protocol-level [`AuditRecord`]s — the input of the
//!   `vi-audit` consistency checkers.

pub mod driver;
pub mod metrics;
pub mod service;
pub mod workload;

pub use driver::{
    drive, drive_recorded, run_traffic, run_traffic_observed, run_traffic_recorded,
    run_traffic_traced, TrafficEvent, TrafficOutcome,
};
pub use metrics::{LatencyHistogram, TrafficSummary};
pub use service::{
    backoff_delay, build_service, AuditRecord, Completion, DevicePlan, OpClass, OpDesc, OpOutcome,
    Request, Service, TrafficWorld,
};
pub use workload::{AppKind, LoadMode, RatePhase, TrafficSpec};
