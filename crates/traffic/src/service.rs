//! The uniform request/response interface over the vi-apps.
//!
//! A [`Service`] adapts one application (register, mutex, tracking,
//! georouting) running on a [`World`] to the shape a load generator
//! understands: `submit` a [`Request`], `step_round` the deployment by
//! one virtual round, harvest [`Completion`]s. Each request's
//! lifecycle is round-stamped — issued at a virtual round, completed
//! at the virtual round its response was heard — so latency is always
//! measured in the emulation's own clock.
//!
//! Client endpoints are ordinary [`ClientApp`]s: a [`Port`] shared
//! (via `Rc<RefCell<_>>`, the `World` is single-threaded) between the
//! adapter and the in-world client program shuttles outbound messages
//! and observed receptions. Ports broadcast in staggered slots —
//! client `i` speaks only in virtual rounds `vr ≡ i (mod clients)` —
//! so client-phase broadcasts never collide with each other, exactly
//! like the stagger the mutex app's reference client uses.

use crate::workload::AppKind;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use vi_apps::georouting::{quantize, GeoRouterVn, RouteMsg};
use vi_apps::mutex::{LockMsg, LockVn};
use vi_apps::register::{RegMsg, RegisterVn};
use vi_apps::tracking::{cell_of, TrackMsg, TrackingVn};
use vi_core::vi::{
    ClientApp, VirtualAutomaton, VirtualReception, VnId, VnLayout, World, WorldConfig,
};
use vi_radio::geometry::Point;
use vi_radio::mobility::MobilityModel;
use vi_radio::trace::ChannelStats;
use vi_radio::{AdversaryKind, RadioConfig};

/// Base retransmit interval in virtual rounds: the first retry of an
/// unanswered request fires after roughly this long (all app messages
/// are idempotent at the virtual node, so retries only cost
/// bandwidth).
const RETRY_ROUNDS: u64 = 6;

/// Cap on the exponential backoff: no retransmit interval ever
/// exceeds this many virtual rounds (before jitter), no matter how
/// many attempts a request has burned.
const RETRY_CAP_ROUNDS: u64 = 48;

/// Salt folded into the jitter hash so backoff jitter shares no
/// stream with the placement (`PLACEMENT_SALT`) or admission
/// (`TRAFFIC_SALT`) RNGs.
const BACKOFF_SALT: u64 = 0x6a09_e667_f3bc_c908;

/// SplitMix64 finalizer — the stateless hash behind the retry jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Bounded deterministic exponential backoff with seeded jitter: the
/// virtual rounds to wait before retransmit `attempt + 1` of the
/// request identified by `key`. The base interval doubles per attempt
/// ([`RETRY_ROUNDS`] · 2^attempt) up to [`RETRY_CAP_ROUNDS`]; a
/// hash-derived jitter of up to half the interval spreads concurrent
/// losers so they stop retransmitting in lockstep.
///
/// The jitter is a pure SplitMix64 hash of `(key, attempt)` — it
/// draws from **no** RNG, so retries can never perturb the placement,
/// channel, or admission streams (the vi-scenario stream-isolation
/// test asserts this for non-traffic scenarios).
pub fn backoff_delay(key: u64, attempt: u32) -> u64 {
    let base = RETRY_ROUNDS
        .saturating_mul(1u64 << attempt.min(31))
        .min(RETRY_CAP_ROUNDS);
    let span = base / 2;
    base + splitmix64(key ^ BACKOFF_SALT ^ (u64::from(attempt) << 48)) % (span + 1)
}

/// Tracking-report quantization (meters per cell).
const TRACK_CELL_SIZE: f64 = 10.0;

/// The class of an operation, for mix accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// State-changing op: register write, lock cycle, position
    /// report, packet send.
    Mutate,
    /// Read-only op: register read, tracking lookup.
    Query,
}

/// One client request, as issued by the generator.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Unique (per run) request id.
    pub id: u64,
    /// Operation class.
    pub class: OpClass,
    /// Virtual round the request entered the system.
    pub issued_vr: u64,
}

/// What a request concretely did at the service — the invocation side
/// of an audit history. Adapters return it from [`Service::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpDesc {
    /// Register write of `value` (unique per run: the request id).
    Write {
        /// The written value.
        value: u64,
    },
    /// Register read.
    Read,
    /// Mutex acquire (the adapter releases immediately on grant).
    Acquire,
    /// Tracking position report for `object` (the reporting client).
    Report {
        /// The reported object (the client's own id).
        object: u32,
        /// The reported cell.
        cell: (u32, u32),
    },
    /// Tracking lookup of `object`.
    Lookup {
        /// The queried object.
        object: u32,
    },
    /// Georouting packet send addressed to virtual node `vn`.
    Send {
        /// Destination virtual-node index.
        vn: usize,
        /// The packet payload (the request id, truncated).
        payload: u32,
    },
}

/// The observed result of a completed request — the response side of
/// an audit history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpOutcome {
    /// Write acknowledged by the virtual node.
    Acked,
    /// Read answered with the register contents.
    ReadValue {
        /// Tag of the returned value (0 = never written).
        tag: u64,
        /// The returned value.
        value: u64,
    },
    /// Lock granted (and immediately released by the adapter).
    Granted,
    /// Report broadcast (reports complete on send).
    Reported,
    /// Lookup answered with the object's last known cell.
    Answered {
        /// The answered cell (`None` = object unknown to the node).
        cell: Option<(u32, u32)>,
    },
    /// Packet recorded as delivered at its destination virtual node.
    Delivered,
}

/// A protocol-level observation outside the request lifecycle,
/// drained via [`Service::drain_audit`]. These carry the facts the
/// consistency checkers need that completions alone cannot: grants to
/// requests that already timed out, release broadcast rounds, and raw
/// per-virtual-node delivery state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditRecord {
    /// A lock grant naming `client` was heard (measured or not).
    Granted {
        /// The granted client.
        client: u32,
        /// Virtual round the grant was heard.
        vr: u64,
    },
    /// `client` broadcast its lock release.
    Released {
        /// The releasing client.
        client: u32,
        /// Virtual round the release hit the channel.
        vr: u64,
    },
    /// `payload` appeared in virtual node `vn`'s delivered state.
    Delivered {
        /// The delivering virtual node.
        vn: usize,
        /// The delivered payload.
        payload: u32,
        /// Virtual round the delivery was observed.
        vr: u64,
    },
    /// Virtual node `vn`'s delivered state shrank: a reset lost state.
    VnReset {
        /// The reset virtual node.
        vn: usize,
        /// Virtual round the shrink was observed.
        vr: u64,
    },
}

/// A completed request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The completed request.
    pub id: u64,
    /// Virtual round the response was heard (or the op took effect).
    pub completed_vr: u64,
    /// What the response said.
    pub outcome: OpOutcome,
}

/// Aggregated virtual-node emulation counters for a traffic run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorldTotals {
    /// Green (decided) instances across all virtual nodes.
    pub decided: u64,
    /// ⊥ instances.
    pub bottom: u64,
    /// Join transfers.
    pub joins: u64,
    /// Resets.
    pub resets: u64,
}

/// A request/response adapter over one app deployment.
pub trait Service {
    /// Which app this service drives.
    fn app(&self) -> AppKind;
    /// Number of client endpoints.
    fn clients(&self) -> usize;
    /// Queues `req` for issuance by client `client` and describes the
    /// concrete operation it became.
    fn submit(&mut self, client: usize, req: &Request) -> OpDesc;
    /// Runs one virtual round and returns the completions observed in
    /// it, in deterministic (client-index, arrival) order.
    fn step_round(&mut self) -> Vec<Completion>;
    /// Drains protocol-level audit observations accumulated since the
    /// last drain (empty for apps whose completions say everything).
    fn drain_audit(&mut self) -> Vec<AuditRecord> {
        Vec::new()
    }
    /// Installs telemetry recorders on the underlying world so causal
    /// tracing sees protocol broadcasts/receptions and the flight
    /// recorder sees channel events. Default: no-op (hand-built test
    /// services have no world to instrument).
    fn set_telemetry(
        &mut self,
        _causal: vi_telemetry::CausalRecorder,
        _flight: vi_telemetry::FlightRecorder,
    ) {
    }
    /// Drops the measurement state of a timed-out request. Protocol
    /// obligations (e.g. releasing a lock that is granted late)
    /// survive; only completion matching is cancelled.
    fn forget(&mut self, id: u64);
    /// Completed virtual rounds.
    fn virtual_round(&self) -> u64;
    /// Channel statistics snapshot.
    fn stats(&self) -> ChannelStats;
    /// Aggregated emulation counters.
    fn world_totals(&self) -> WorldTotals;
}

/// How one deployed device participates in a traffic run.
pub struct DevicePlan {
    /// Start position (used to seed the client port before the first
    /// round).
    pub start: Point,
    /// Motion model.
    pub mobility: Box<dyn MobilityModel>,
    /// Real round the device spawns, if not deployed from the start.
    pub spawn_at: Option<u64>,
    /// Real round the device crashes, if any.
    pub crash_at: Option<u64>,
}

/// Everything needed to build the world a service runs over.
pub struct TrafficWorld {
    /// Radio model.
    pub radio: RadioConfig,
    /// Virtual-node placement.
    pub layout: VnLayout,
    /// Simulation seed.
    pub seed: u64,
    /// Channel adversary active before stabilization.
    pub adversary: AdversaryKind,
    /// Devices in deployment order; the first `clients` run ports.
    pub devices: Vec<DevicePlan>,
}

/// The shared mailbox between an adapter and its in-world client.
struct Port<M> {
    /// Messages awaiting broadcast: `(request id, message)`, FIFO.
    outbox: VecDeque<(u64, M)>,
    /// Messages heard, tagged with the virtual round they arrived in.
    rx: Vec<(u64, M)>,
    /// Send events: `(request id, virtual round broadcast)`.
    sent: Vec<(u64, u64)>,
    /// Device position as of the last client phase.
    pos: Point,
    /// This client's stagger slot.
    slot: u64,
    /// Stagger stride (the client count).
    stride: u64,
}

impl<M> Port<M> {
    fn new(slot: u64, stride: u64, start: Point) -> Self {
        Port {
            outbox: VecDeque::new(),
            rx: Vec::new(),
            sent: Vec::new(),
            pos: start,
            slot,
            stride,
        }
    }
}

/// The [`ClientApp`] end of a port: records receptions, broadcasts
/// the head of the outbox on this client's stagger slots.
struct PortClient<M> {
    port: Rc<RefCell<Port<M>>>,
}

impl<M: Clone + 'static> ClientApp<M> for PortClient<M> {
    fn on_virtual_round(&mut self, vr: u64, pos: Point, prev: &VirtualReception<M>) -> Option<M> {
        let mut p = self.port.borrow_mut();
        p.pos = pos;
        // `prev` is the reception of virtual round `vr - 1`.
        for m in &prev.messages {
            p.rx.push((vr.saturating_sub(1), m.clone()));
        }
        if p.stride > 1 && vr % p.stride != p.slot % p.stride {
            return None;
        }
        let (id, msg) = p.outbox.pop_front()?;
        p.sent.push((id, vr));
        Some(msg)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// World + ports: the plumbing every adapter shares.
struct Harness<VA: VirtualAutomaton> {
    world: World<VA>,
    ports: Vec<Rc<RefCell<Port<VA::Msg>>>>,
    vr: u64,
}

impl<VA: VirtualAutomaton> Harness<VA>
where
    VA::Msg: Clone,
{
    /// Builds the world: every device emulates; the first `clients`
    /// devices additionally run a traffic port.
    ///
    /// # Panics
    ///
    /// Panics if `clients` exceeds the device count or is zero.
    fn new(automaton: VA, tw: TrafficWorld, clients: usize) -> Self {
        assert!(clients >= 1, "traffic needs at least one client");
        assert!(
            clients <= tw.devices.len(),
            "traffic needs {clients} clients but only {} devices deployed",
            tw.devices.len()
        );
        let mut world = World::new(WorldConfig {
            radio: tw.radio,
            layout: tw.layout,
            automaton,
            seed: tw.seed,
            record_trace: false,
        });
        world.set_adversary(tw.adversary.build());
        let mut ports = Vec::with_capacity(clients);
        for (i, d) in tw.devices.into_iter().enumerate() {
            let client: Option<Box<dyn ClientApp<VA::Msg>>> = if i < clients {
                let port = Rc::new(RefCell::new(Port::new(i as u64, clients as u64, d.start)));
                ports.push(Rc::clone(&port));
                Some(Box::new(PortClient { port }))
            } else {
                None
            };
            world.add_device_spec(d.mobility, client, d.spawn_at, d.crash_at);
        }
        Harness {
            world,
            ports,
            vr: 0,
        }
    }

    /// Runs one virtual round.
    fn step(&mut self) {
        self.world.run_virtual_rounds(1);
        self.vr += 1;
    }

    /// Installs telemetry recorders on the world's engine.
    fn set_telemetry(
        &mut self,
        causal: vi_telemetry::CausalRecorder,
        flight: vi_telemetry::FlightRecorder,
    ) {
        self.world.set_causal(causal);
        self.world.set_flight(flight);
    }

    /// Drains the received messages of client `i`.
    fn drain_rx(&mut self, i: usize) -> Vec<(u64, VA::Msg)> {
        std::mem::take(&mut self.ports[i].borrow_mut().rx)
    }

    /// Drains the send events of client `i`.
    fn drain_sent(&mut self, i: usize) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.ports[i].borrow_mut().sent)
    }

    /// Queues `(id, msg)` on client `i`'s port.
    fn enqueue(&mut self, i: usize, id: u64, msg: VA::Msg) {
        self.ports[i].borrow_mut().outbox.push_back((id, msg));
    }

    /// Removes queued-but-unsent messages of request `id` everywhere.
    fn purge(&mut self, id: u64) {
        for p in &self.ports {
            p.borrow_mut().outbox.retain(|&(e, _)| e != id);
        }
    }

    /// Client `i`'s current position.
    fn pos(&self, i: usize) -> Point {
        self.ports[i].borrow().pos
    }

    fn totals(&self) -> WorldTotals {
        let mut t = WorldTotals::default();
        for vn in 0..self.world.deployment().layout.len() {
            let (_, r) = self.world.vn_report(VnId(vn));
            t.decided += r.decided;
            t.bottom += r.bottom;
            t.joins += r.joins;
            t.resets += r.resets;
        }
        t
    }
}

/// A pending request awaiting its response, with retry bookkeeping.
struct PendingMsg<M> {
    client: usize,
    msg: M,
    /// Virtual round the op was submitted — receptions drain one round
    /// late, so an answer stamped before this round is a stale echo of
    /// an *earlier* request and must not complete this op.
    issued_vr: u64,
    last_enqueued_vr: u64,
    /// Retransmits already burned — drives the backoff schedule.
    attempts: u32,
}

/// Retransmits every pending message whose last enqueue is older than
/// its [`backoff_delay`] (shared retry pass of the register/tracking
/// adapters; idempotent messages only).
fn retry_pending<VA: VirtualAutomaton>(
    harness: &mut Harness<VA>,
    pending: &mut BTreeMap<u64, PendingMsg<VA::Msg>>,
) where
    VA::Msg: Clone,
{
    let vr = harness.vr;
    for (&id, p) in pending.iter_mut() {
        if vr.saturating_sub(p.last_enqueued_vr) >= backoff_delay(id, p.attempts) {
            harness.enqueue(p.client, id, p.msg.clone());
            p.last_enqueued_vr = vr;
            p.attempts = p.attempts.saturating_add(1);
        }
    }
}

// ---------------------------------------------------------------------------
// Register
// ---------------------------------------------------------------------------

/// The single-writer register under load: `Mutate` = tagged write
/// (completes on the matching `Ack`), `Query` = nonce'd read
/// (completes on the matching `Value`).
pub struct RegisterService {
    harness: Harness<RegisterVn>,
    next_tag: u64,
    next_nonce: u64,
    /// `write tag → request id`.
    write_index: BTreeMap<u64, u64>,
    /// `read nonce → request id`.
    read_index: BTreeMap<u64, u64>,
    pending: BTreeMap<u64, PendingMsg<RegMsg>>,
}

impl RegisterService {
    /// Builds the register deployment.
    pub fn new(tw: TrafficWorld, clients: usize) -> Self {
        RegisterService {
            harness: Harness::new(RegisterVn, tw, clients),
            next_tag: 0,
            next_nonce: 0,
            write_index: BTreeMap::new(),
            read_index: BTreeMap::new(),
            pending: BTreeMap::new(),
        }
    }
}

impl Service for RegisterService {
    fn app(&self) -> AppKind {
        AppKind::Register
    }

    fn clients(&self) -> usize {
        self.harness.ports.len()
    }

    fn submit(&mut self, client: usize, req: &Request) -> OpDesc {
        let (msg, op) = match req.class {
            OpClass::Mutate => {
                self.next_tag += 1;
                self.write_index.insert(self.next_tag, req.id);
                (
                    RegMsg::Write {
                        tag: self.next_tag,
                        value: req.id,
                    },
                    OpDesc::Write { value: req.id },
                )
            }
            OpClass::Query => {
                self.next_nonce += 1;
                self.read_index.insert(self.next_nonce, req.id);
                (
                    RegMsg::Read {
                        nonce: self.next_nonce,
                    },
                    OpDesc::Read,
                )
            }
        };
        self.harness.enqueue(client, req.id, msg.clone());
        self.pending.insert(
            req.id,
            PendingMsg {
                client,
                msg,
                issued_vr: req.issued_vr,
                last_enqueued_vr: req.issued_vr,
                attempts: 0,
            },
        );
        op
    }

    fn step_round(&mut self) -> Vec<Completion> {
        self.harness.step();
        let mut done = Vec::new();
        for i in 0..self.clients() {
            for (heard_vr, msg) in self.harness.drain_rx(i) {
                let hit = match &msg {
                    RegMsg::Ack { tag } => self
                        .write_index
                        .remove(tag)
                        .map(|id| (id, OpOutcome::Acked)),
                    RegMsg::Value { nonce, tag, value } => {
                        self.read_index.remove(nonce).map(|id| {
                            (
                                id,
                                OpOutcome::ReadValue {
                                    tag: *tag,
                                    value: *value,
                                },
                            )
                        })
                    }
                    _ => None,
                };
                if let Some((id, outcome)) = hit {
                    if self.pending.remove(&id).is_some() {
                        done.push(Completion {
                            id,
                            completed_vr: heard_vr,
                            outcome,
                        });
                    }
                }
            }
        }
        retry_pending(&mut self.harness, &mut self.pending);
        done
    }

    fn set_telemetry(
        &mut self,
        causal: vi_telemetry::CausalRecorder,
        flight: vi_telemetry::FlightRecorder,
    ) {
        self.harness.set_telemetry(causal, flight);
    }

    fn forget(&mut self, id: u64) {
        if let Some(p) = self.pending.remove(&id) {
            match p.msg {
                RegMsg::Write { tag, .. } => {
                    self.write_index.remove(&tag);
                }
                RegMsg::Read { nonce } => {
                    self.read_index.remove(&nonce);
                }
                _ => {}
            }
            self.harness.purge(id);
        }
    }

    fn virtual_round(&self) -> u64 {
        self.harness.vr
    }

    fn stats(&self) -> ChannelStats {
        *self.harness.world.stats()
    }

    fn world_totals(&self) -> WorldTotals {
        self.harness.totals()
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Per-client lock protocol state.
enum LockPhase {
    /// No request in flight.
    Idle,
    /// A `Request` is out; `Some(id)` if the measurement still counts
    /// (a timed-out acquire keeps the phase but drops the id — the
    /// grant, when it comes, is still released immediately).
    WaitGrant(Option<u64>),
}

/// The FIFO lock server under load: every op is an acquire (completes
/// when the grant is heard) followed by an immediate release. A client
/// serializes its ops; each client keeps at most one `Request`
/// outstanding at the virtual node.
pub struct MutexService {
    harness: Harness<LockVn>,
    phases: Vec<LockPhase>,
    /// Ops submitted but not yet started, per client.
    backlog: Vec<VecDeque<u64>>,
    /// Virtual round of each client's last `Request` enqueue.
    last_request_vr: Vec<u64>,
    /// Virtual round each client's in-flight op was submitted —
    /// grants heard before it are stale echoes of a *previous* op's
    /// retried request and must not complete this one.
    request_issued_vr: Vec<u64>,
    /// Retransmits burned by each client's in-flight `Request` —
    /// drives the backoff schedule; reset when a fresh op starts.
    request_attempts: Vec<u32>,
    /// Port-entry ids of queued releases (`id → releasing client`):
    /// a namespace disjoint from request ids, so release broadcasts
    /// can be recognized in the port send log and survive purges.
    release_ids: BTreeMap<u64, u32>,
    next_release_id: u64,
    /// Grant/release observations awaiting [`Service::drain_audit`].
    audit: Vec<AuditRecord>,
}

/// First port-entry id of the release namespace (request ids count up
/// from 1 and never reach it).
const RELEASE_ID_BASE: u64 = 1 << 63;

impl MutexService {
    /// Builds the lock deployment.
    pub fn new(tw: TrafficWorld, clients: usize) -> Self {
        let harness = Harness::new(LockVn, tw, clients);
        let n = harness.ports.len();
        MutexService {
            harness,
            phases: (0..n).map(|_| LockPhase::Idle).collect(),
            backlog: (0..n).map(|_| VecDeque::new()).collect(),
            last_request_vr: vec![0; n],
            request_issued_vr: vec![0; n],
            request_attempts: vec![0; n],
            release_ids: BTreeMap::new(),
            next_release_id: RELEASE_ID_BASE,
            audit: Vec::new(),
        }
    }

    /// Starts the next backlogged op of `client`, if it is idle.
    fn start_next(&mut self, client: usize, vr: u64) {
        if matches!(self.phases[client], LockPhase::Idle) {
            if let Some(id) = self.backlog[client].pop_front() {
                self.harness.enqueue(
                    client,
                    id,
                    LockMsg::Request {
                        client: client as u32,
                    },
                );
                self.phases[client] = LockPhase::WaitGrant(Some(id));
                self.last_request_vr[client] = vr;
                self.request_issued_vr[client] = vr;
                self.request_attempts[client] = 0;
            }
        }
    }
}

impl Service for MutexService {
    fn app(&self) -> AppKind {
        AppKind::Mutex
    }

    fn clients(&self) -> usize {
        self.harness.ports.len()
    }

    fn submit(&mut self, client: usize, req: &Request) -> OpDesc {
        self.backlog[client].push_back(req.id);
        self.start_next(client, req.issued_vr);
        OpDesc::Acquire
    }

    fn step_round(&mut self) -> Vec<Completion> {
        self.harness.step();
        let vr = self.harness.vr;
        let mut done = Vec::new();
        for i in 0..self.clients() {
            let me = i as u32;
            // Release broadcasts since the last round (request send
            // events share the log; only release-namespace ids count).
            for (id, sent_vr) in self.harness.drain_sent(i) {
                if let Some(client) = self.release_ids.remove(&id) {
                    self.audit.push(AuditRecord::Released {
                        client,
                        vr: sent_vr,
                    });
                }
            }
            let mut granted = None;
            for (heard_vr, msg) in self.harness.drain_rx(i) {
                if msg.granted_client() == Some(me) {
                    self.audit.push(AuditRecord::Granted {
                        client: me,
                        vr: heard_vr,
                    });
                    // A grant heard before the current op was even
                    // submitted is a stale echo (the server re-grants
                    // on retried requests); it cannot complete it.
                    if granted.is_none() && heard_vr >= self.request_issued_vr[i] {
                        granted = Some(heard_vr);
                    }
                }
            }
            if let Some(heard_vr) = granted {
                if let LockPhase::WaitGrant(id) = self.phases[i] {
                    if let Some(id) = id {
                        done.push(Completion {
                            id,
                            completed_vr: heard_vr,
                            outcome: OpOutcome::Granted,
                        });
                    }
                    // Release immediately, under a release-namespace
                    // port id (measurement-neutral).
                    let rid = self.next_release_id;
                    self.next_release_id += 1;
                    self.release_ids.insert(rid, me);
                    self.harness
                        .enqueue(i, rid, LockMsg::Release { client: me });
                    self.phases[i] = LockPhase::Idle;
                }
            }
            // Retry a lost Request (the server dedupes). The backoff
            // key is the client id: it is stable across the retries of
            // one in-flight request, measured or not.
            if let LockPhase::WaitGrant(id) = self.phases[i] {
                let wait = backoff_delay(u64::from(me), self.request_attempts[i]);
                if vr.saturating_sub(self.last_request_vr[i]) >= wait {
                    self.harness.enqueue(
                        i,
                        id.unwrap_or(u64::MAX),
                        LockMsg::Request { client: me },
                    );
                    self.last_request_vr[i] = vr;
                    self.request_attempts[i] = self.request_attempts[i].saturating_add(1);
                }
            }
            self.start_next(i, vr);
        }
        done
    }

    fn drain_audit(&mut self) -> Vec<AuditRecord> {
        std::mem::take(&mut self.audit)
    }

    fn set_telemetry(
        &mut self,
        causal: vi_telemetry::CausalRecorder,
        flight: vi_telemetry::FlightRecorder,
    ) {
        self.harness.set_telemetry(causal, flight);
    }

    fn forget(&mut self, id: u64) {
        for q in &mut self.backlog {
            q.retain(|&e| e != id);
        }
        for ph in &mut self.phases {
            if let LockPhase::WaitGrant(Some(e)) = ph {
                if *e == id {
                    // The request may already sit in the server queue:
                    // keep waiting for the grant (to release it), but
                    // stop measuring.
                    *ph = LockPhase::WaitGrant(None);
                }
            }
        }
    }

    fn virtual_round(&self) -> u64 {
        self.harness.vr
    }

    fn stats(&self) -> ChannelStats {
        *self.harness.world.stats()
    }

    fn world_totals(&self) -> WorldTotals {
        self.harness.totals()
    }
}

// ---------------------------------------------------------------------------
// Tracking
// ---------------------------------------------------------------------------

/// The tracking service under load: `Mutate` = position report
/// (completes the round it is actually broadcast), `Query` = lookup
/// of another client's object (completes when the answer is heard;
/// a broadcast answer completes every pending query for the object,
/// mirroring the server's query dedup).
pub struct TrackingService {
    harness: Harness<TrackingVn>,
    /// Round-robin target selector for queries.
    next_target: u32,
    /// Pending queries per queried object, FIFO.
    query_index: BTreeMap<u32, Vec<u64>>,
    /// Pending queries (for retries). Reports need no retry: they
    /// complete on send.
    pending: BTreeMap<u64, PendingMsg<TrackMsg>>,
    /// Outstanding report ids (completion on send).
    reports: BTreeMap<u64, ()>,
}

impl TrackingService {
    /// Builds the tracking deployment.
    pub fn new(tw: TrafficWorld, clients: usize) -> Self {
        TrackingService {
            harness: Harness::new(TrackingVn, tw, clients),
            next_target: 0,
            query_index: BTreeMap::new(),
            pending: BTreeMap::new(),
            reports: BTreeMap::new(),
        }
    }
}

impl Service for TrackingService {
    fn app(&self) -> AppKind {
        AppKind::Tracking
    }

    fn clients(&self) -> usize {
        self.harness.ports.len()
    }

    fn submit(&mut self, client: usize, req: &Request) -> OpDesc {
        match req.class {
            OpClass::Mutate => {
                let object = client as u32;
                let cell = cell_of(self.harness.pos(client), TRACK_CELL_SIZE);
                let msg = TrackMsg::Report { object, cell };
                self.harness.enqueue(client, req.id, msg);
                self.reports.insert(req.id, ());
                OpDesc::Report { object, cell }
            }
            OpClass::Query => {
                // Query the objects (other clients' reports) round-robin.
                let object = self.next_target % self.clients() as u32;
                self.next_target = self.next_target.wrapping_add(1);
                let msg = TrackMsg::Query { object };
                self.harness.enqueue(client, req.id, msg.clone());
                self.query_index.entry(object).or_default().push(req.id);
                self.pending.insert(
                    req.id,
                    PendingMsg {
                        client,
                        msg,
                        issued_vr: req.issued_vr,
                        last_enqueued_vr: req.issued_vr,
                        attempts: 0,
                    },
                );
                OpDesc::Lookup { object }
            }
        }
    }

    fn step_round(&mut self) -> Vec<Completion> {
        self.harness.step();
        let mut done = Vec::new();
        for i in 0..self.clients() {
            // Reports complete the round they hit the channel.
            for (id, sent_vr) in self.harness.drain_sent(i) {
                if self.reports.remove(&id).is_some() {
                    done.push(Completion {
                        id,
                        completed_vr: sent_vr,
                        outcome: OpOutcome::Reported,
                    });
                }
            }
            for (heard_vr, msg) in self.harness.drain_rx(i) {
                if let TrackMsg::Answer { object, cell } = msg {
                    // The answer is a broadcast: every pending query
                    // for this object is answered at once — except
                    // queries issued *after* the answer was heard
                    // (receptions drain one round late, so a stale
                    // echo of an earlier query can surface here).
                    // Those stay pending for a fresh broadcast.
                    let mut waiting = Vec::new();
                    for id in self.query_index.remove(&object).unwrap_or_default() {
                        match self.pending.get(&id) {
                            Some(p) if p.issued_vr > heard_vr => waiting.push(id),
                            Some(_) => {
                                self.pending.remove(&id);
                                done.push(Completion {
                                    id,
                                    completed_vr: heard_vr,
                                    outcome: OpOutcome::Answered { cell },
                                });
                            }
                            None => {}
                        }
                    }
                    if !waiting.is_empty() {
                        self.query_index.insert(object, waiting);
                    }
                }
            }
        }
        retry_pending(&mut self.harness, &mut self.pending);
        done
    }

    fn set_telemetry(
        &mut self,
        causal: vi_telemetry::CausalRecorder,
        flight: vi_telemetry::FlightRecorder,
    ) {
        self.harness.set_telemetry(causal, flight);
    }

    fn forget(&mut self, id: u64) {
        self.reports.remove(&id);
        if self.pending.remove(&id).is_some() {
            for ids in self.query_index.values_mut() {
                ids.retain(|&e| e != id);
            }
            self.query_index.retain(|_, ids| !ids.is_empty());
            self.harness.purge(id);
        }
    }

    fn virtual_round(&self) -> u64 {
        self.harness.vr
    }

    fn stats(&self) -> ChannelStats {
        *self.harness.world.stats()
    }

    fn world_totals(&self) -> WorldTotals {
        self.harness.totals()
    }
}

// ---------------------------------------------------------------------------
// Georouting
// ---------------------------------------------------------------------------

/// Greedy georouting under load: every op injects a packet addressed
/// to the virtual node nearest the client and completes when that
/// node's (replicated, agreed) state records the delivery.
pub struct GeoroutingService {
    harness: Harness<GeoRouterVn>,
    /// `payload → (request id, destination)`.
    in_flight: BTreeMap<u32, (u64, VnId)>,
    pending: BTreeMap<u64, PendingMsg<RouteMsg>>,
    /// Per-VN cursor into the delivered list (the folded state only
    /// appends; a reset shrinks it, losing the packets with it).
    delivered_seen: Vec<usize>,
    /// Raw delivery/reset observations awaiting
    /// [`Service::drain_audit`].
    audit: Vec<AuditRecord>,
}

impl GeoroutingService {
    /// Builds the routing deployment.
    pub fn new(tw: TrafficWorld, clients: usize) -> Self {
        let harness = Harness::new(GeoRouterVn, tw, clients);
        let vns = harness.world.deployment().layout.len();
        GeoroutingService {
            harness,
            in_flight: BTreeMap::new(),
            pending: BTreeMap::new(),
            delivered_seen: vec![0; vns],
            audit: Vec::new(),
        }
    }

    /// The virtual node nearest to `pos`.
    fn nearest_vn(&self, pos: Point) -> (VnId, Point) {
        self.harness
            .world
            .deployment()
            .layout
            .iter()
            .min_by(|(_, a), (_, b)| {
                pos.distance_sq(*a)
                    .partial_cmp(&pos.distance_sq(*b))
                    .expect("finite distances")
            })
            .expect("layouts are non-empty")
    }
}

impl Service for GeoroutingService {
    fn app(&self) -> AppKind {
        AppKind::Georouting
    }

    fn clients(&self) -> usize {
        self.harness.ports.len()
    }

    fn submit(&mut self, client: usize, req: &Request) -> OpDesc {
        let (vn, loc) = self.nearest_vn(self.harness.pos(client));
        let payload = req.id as u32;
        let msg = RouteMsg::inject(quantize(loc), payload);
        self.harness.enqueue(client, req.id, msg.clone());
        self.in_flight.insert(payload, (req.id, vn));
        self.pending.insert(
            req.id,
            PendingMsg {
                client,
                msg,
                issued_vr: req.issued_vr,
                last_enqueued_vr: req.issued_vr,
                attempts: 0,
            },
        );
        OpDesc::Send { vn: vn.0, payload }
    }

    fn step_round(&mut self) -> Vec<Completion> {
        self.harness.step();
        let vr = self.harness.vr;
        let mut done = Vec::new();
        for vn in 0..self.delivered_seen.len() {
            let Some((state, _)) = self.harness.world.vn_state(VnId(vn)) else {
                continue;
            };
            let seen = &mut self.delivered_seen[vn];
            if *seen > state.delivered.len() {
                *seen = state.delivered.len(); // reset lost state
                self.audit.push(AuditRecord::VnReset { vn, vr });
            }
            for &payload in &state.delivered[*seen..] {
                self.audit.push(AuditRecord::Delivered { vn, payload, vr });
                if let Some((id, _)) = self.in_flight.remove(&payload) {
                    if self.pending.remove(&id).is_some() {
                        done.push(Completion {
                            id,
                            completed_vr: vr,
                            outcome: OpOutcome::Delivered,
                        });
                    }
                }
            }
            *seen = state.delivered.len();
        }
        retry_pending(&mut self.harness, &mut self.pending);
        done
    }

    fn drain_audit(&mut self) -> Vec<AuditRecord> {
        std::mem::take(&mut self.audit)
    }

    fn set_telemetry(
        &mut self,
        causal: vi_telemetry::CausalRecorder,
        flight: vi_telemetry::FlightRecorder,
    ) {
        self.harness.set_telemetry(causal, flight);
    }

    fn forget(&mut self, id: u64) {
        if self.pending.remove(&id).is_some() {
            self.in_flight.retain(|_, &mut (e, _)| e != id);
            self.harness.purge(id);
        }
    }

    fn virtual_round(&self) -> u64 {
        self.harness.vr
    }

    fn stats(&self) -> ChannelStats {
        *self.harness.world.stats()
    }

    fn world_totals(&self) -> WorldTotals {
        self.harness.totals()
    }
}

/// Builds the service adapter for `app` over `tw`.
pub fn build_service(app: AppKind, tw: TrafficWorld, clients: usize) -> Box<dyn Service> {
    match app {
        AppKind::Register => Box::new(RegisterService::new(tw, clients)),
        AppKind::Mutex => Box::new(MutexService::new(tw, clients)),
        AppKind::Tracking => Box::new(TrackingService::new(tw, clients)),
        AppKind::Georouting => Box::new(GeoroutingService::new(tw, clients)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_radio::mobility::Static;

    /// One virtual node at (50, 50) with `n` static devices close by.
    fn small_world(n: usize, seed: u64) -> TrafficWorld {
        let vn = Point::new(50.0, 50.0);
        let devices = (0..n)
            .map(|i| {
                let start = Point::new(49.4 + 0.4 * i as f64, 50.2);
                DevicePlan {
                    start,
                    mobility: Box::new(Static::new(start)) as Box<dyn MobilityModel>,
                    spawn_at: None,
                    crash_at: None,
                }
            })
            .collect();
        TrafficWorld {
            radio: RadioConfig::reliable(10.0, 20.0),
            layout: VnLayout::new(vec![vn], 2.5),
            seed,
            adversary: AdversaryKind::None,
            devices,
        }
    }

    fn run_until<S: Service + ?Sized>(svc: &mut S, rounds: u64) -> Vec<Completion> {
        let mut all = Vec::new();
        for _ in 0..rounds {
            all.extend(svc.step_round());
        }
        all
    }

    #[test]
    fn register_write_and_read_complete() {
        let mut svc = RegisterService::new(small_world(3, 5), 2);
        svc.submit(
            0,
            &Request {
                id: 1,
                class: OpClass::Mutate,
                issued_vr: 0,
            },
        );
        svc.submit(
            1,
            &Request {
                id: 2,
                class: OpClass::Query,
                issued_vr: 0,
            },
        );
        let done = run_until(&mut svc, 20);
        let ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert!(ids.contains(&1), "write acked: {done:?}");
        assert!(ids.contains(&2), "read answered: {done:?}");
        for c in &done {
            assert!(c.completed_vr >= 1, "completions are round-stamped");
        }
    }

    #[test]
    fn mutex_cycles_complete_and_serialize() {
        let mut svc = MutexService::new(small_world(3, 7), 2);
        for (client, id) in [(0usize, 1u64), (1, 2), (0, 3)] {
            svc.submit(
                client,
                &Request {
                    id,
                    class: OpClass::Mutate,
                    issued_vr: 0,
                },
            );
        }
        let done = run_until(&mut svc, 60);
        let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3], "all lock cycles completed: {done:?}");
    }

    #[test]
    fn tracking_reports_complete_on_send_and_queries_on_answer() {
        let mut svc = TrackingService::new(small_world(3, 9), 2);
        svc.submit(
            0,
            &Request {
                id: 1,
                class: OpClass::Mutate,
                issued_vr: 0,
            },
        );
        let done = run_until(&mut svc, 6);
        assert!(
            done.iter().any(|c| c.id == 1),
            "report completes on send: {done:?}"
        );
        svc.submit(
            1,
            &Request {
                id: 2,
                class: OpClass::Query,
                issued_vr: 6,
            },
        );
        let done = run_until(&mut svc, 20);
        assert!(done.iter().any(|c| c.id == 2), "query answered: {done:?}");
    }

    #[test]
    fn georouting_packets_complete_on_delivery() {
        let mut svc = GeoroutingService::new(small_world(3, 11), 1);
        svc.submit(
            0,
            &Request {
                id: 1,
                class: OpClass::Mutate,
                issued_vr: 0,
            },
        );
        let done = run_until(&mut svc, 25);
        assert_eq!(done.len(), 1, "packet delivered exactly once: {done:?}");
        assert_eq!(done[0].id, 1);
    }

    #[test]
    fn forget_cancels_measurement_but_not_protocol() {
        let mut svc = MutexService::new(small_world(3, 13), 2);
        svc.submit(
            0,
            &Request {
                id: 1,
                class: OpClass::Mutate,
                issued_vr: 0,
            },
        );
        svc.submit(
            1,
            &Request {
                id: 2,
                class: OpClass::Mutate,
                issued_vr: 0,
            },
        );
        svc.forget(1);
        let done = run_until(&mut svc, 60);
        let ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert!(!ids.contains(&1), "forgotten op not reported: {done:?}");
        assert!(
            ids.contains(&2),
            "the other client still gets the lock (no wedge): {done:?}"
        );
    }

    #[test]
    fn register_outcomes_are_semantic() {
        let mut svc = RegisterService::new(small_world(3, 5), 2);
        let op = svc.submit(
            0,
            &Request {
                id: 1,
                class: OpClass::Mutate,
                issued_vr: 0,
            },
        );
        assert_eq!(op, OpDesc::Write { value: 1 });
        let mut done = run_until(&mut svc, 20);
        let op = svc.submit(
            1,
            &Request {
                id: 2,
                class: OpClass::Query,
                issued_vr: 20,
            },
        );
        assert_eq!(op, OpDesc::Read);
        done.extend(run_until(&mut svc, 20));
        let write = done.iter().find(|c| c.id == 1).expect("write done");
        assert_eq!(write.outcome, OpOutcome::Acked);
        let read = done.iter().find(|c| c.id == 2).expect("read done");
        assert_eq!(
            read.outcome,
            OpOutcome::ReadValue { tag: 1, value: 1 },
            "the read issued after the ack sees the write"
        );
    }

    #[test]
    fn mutex_audit_records_alternating_grants_and_releases() {
        let mut svc = MutexService::new(small_world(3, 7), 2);
        for (client, id) in [(0usize, 1u64), (1, 2)] {
            svc.submit(
                client,
                &Request {
                    id,
                    class: OpClass::Mutate,
                    issued_vr: 0,
                },
            );
        }
        let mut audit = Vec::new();
        for _ in 0..60 {
            let done = svc.step_round();
            for c in &done {
                assert_eq!(c.outcome, OpOutcome::Granted);
            }
            audit.extend(svc.drain_audit());
        }
        let grants = audit
            .iter()
            .filter(|r| matches!(r, AuditRecord::Granted { .. }))
            .count();
        let releases = audit
            .iter()
            .filter(|r| matches!(r, AuditRecord::Released { .. }))
            .count();
        assert_eq!(grants, 2, "one grant per acquire: {audit:?}");
        assert_eq!(releases, 2, "every grant is released: {audit:?}");
        // Per client: the grant precedes the release.
        for me in 0..2u32 {
            let g = audit.iter().find_map(|r| match r {
                AuditRecord::Granted { client, vr } if *client == me => Some(*vr),
                _ => None,
            });
            let rel = audit.iter().find_map(|r| match r {
                AuditRecord::Released { client, vr } if *client == me => Some(*vr),
                _ => None,
            });
            assert!(
                g.unwrap() <= rel.unwrap(),
                "grant before release: {audit:?}"
            );
        }
    }

    #[test]
    fn georouting_audit_records_raw_deliveries() {
        let mut svc = GeoroutingService::new(small_world(3, 11), 1);
        let op = svc.submit(
            0,
            &Request {
                id: 1,
                class: OpClass::Mutate,
                issued_vr: 0,
            },
        );
        assert_eq!(op, OpDesc::Send { vn: 0, payload: 1 });
        let mut audit = Vec::new();
        let mut done = Vec::new();
        for _ in 0..25 {
            done.extend(svc.step_round());
            audit.extend(svc.drain_audit());
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outcome, OpOutcome::Delivered);
        assert_eq!(
            audit,
            vec![AuditRecord::Delivered {
                vn: 0,
                payload: 1,
                vr: done[0].completed_vr,
            }],
            "exactly one raw delivery, same round as the completion"
        );
    }

    #[test]
    fn services_are_deterministic_per_seed() {
        let run = || {
            let mut svc = RegisterService::new(small_world(4, 21), 3);
            let mut id = 0u64;
            let mut log = Vec::new();
            for vr in 0..30u64 {
                if vr.is_multiple_of(3) {
                    id += 1;
                    svc.submit(
                        (id % 3) as usize,
                        &Request {
                            id,
                            class: if id.is_multiple_of(2) {
                                OpClass::Query
                            } else {
                                OpClass::Mutate
                            },
                            issued_vr: vr,
                        },
                    );
                }
                log.extend(svc.step_round());
            }
            log
        };
        assert_eq!(
            run(),
            run(),
            "identical runs must match completion-for-completion"
        );
    }

    /// The backoff schedule is a pure function: deterministic per
    /// `(key, attempt)`, never below the base interval, never past the
    /// cap plus its half-interval jitter, and (de-jittered) monotone
    /// non-decreasing in the attempt count.
    #[test]
    fn backoff_delay_is_deterministic_bounded_and_monotone() {
        for key in [0u64, 1, 7, u64::MAX] {
            let mut prev_base = 0u64;
            for attempt in 0..40u32 {
                let d = backoff_delay(key, attempt);
                assert_eq!(d, backoff_delay(key, attempt), "pure function");
                let base = RETRY_ROUNDS
                    .saturating_mul(1u64 << attempt.min(31))
                    .min(RETRY_CAP_ROUNDS);
                assert!(d >= base, "jitter only ever delays: {d} < {base}");
                assert!(d <= RETRY_CAP_ROUNDS + RETRY_CAP_ROUNDS / 2, "bounded: {d}");
                assert!(base >= prev_base, "base never shrinks");
                prev_base = base;
            }
            assert!(
                backoff_delay(key, 39) >= RETRY_CAP_ROUNDS,
                "deep attempts saturate at the cap"
            );
        }
    }

    /// Different keys de-synchronize: across many keys the first-retry
    /// jitter takes more than one value (lockstep retransmits are what
    /// the jitter exists to break).
    #[test]
    fn backoff_jitter_spreads_across_keys() {
        let spread: std::collections::BTreeSet<u64> =
            (0..64u64).map(|key| backoff_delay(key, 0)).collect();
        assert!(spread.len() > 1, "jitter must vary by key: {spread:?}");
        for &d in &spread {
            assert!((RETRY_ROUNDS..=RETRY_ROUNDS + RETRY_ROUNDS / 2).contains(&d));
        }
    }
}
