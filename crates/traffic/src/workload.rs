//! The declarative workload description: which app is driven, by how
//! many clients, under which arrival discipline.
//!
//! A [`TrafficSpec`] is plain serializable data, embedded in a
//! `vi_scenario::ScenarioSpec` workload the same way populations and
//! adversaries are — traffic runs are data like everything else, and
//! identical `(spec, seed)` pairs replay identical request streams.

use serde::{Deserialize, Serialize};

/// Which vi-app the workload drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppKind {
    /// Single-writer register: `Mutate` = write, `Query` = read.
    Register,
    /// FIFO lock server: every op is an acquire→release cycle.
    Mutex,
    /// Tracking service: `Mutate` = position report, `Query` = lookup.
    Tracking,
    /// Greedy georouting: every op sends a packet to the nearest
    /// virtual node and completes when that node delivers it.
    Georouting,
}

impl AppKind {
    /// Lower-case app name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::Register => "register",
            AppKind::Mutex => "mutex",
            AppKind::Tracking => "tracking",
            AppKind::Georouting => "georouting",
        }
    }

    /// All apps, in report order.
    pub fn all() -> [AppKind; 4] {
        [
            AppKind::Register,
            AppKind::Mutex,
            AppKind::Tracking,
            AppKind::Georouting,
        ]
    }
}

/// A rate change point of an open-loop schedule: from virtual round
/// `from_vr` (inclusive) the arrival rate is `rate_per_round`.
/// Sequences of phases express ramps and bursts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatePhase {
    /// First virtual round the rate applies to (1-based).
    pub from_vr: u64,
    /// Mean request arrivals per virtual round from then on.
    pub rate_per_round: f64,
}

/// The arrival discipline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LoadMode {
    /// Open loop: requests arrive on a fixed schedule regardless of
    /// completions (the service-benchmark discipline that exposes
    /// queueing collapse). Arrivals per round follow a deterministic
    /// fractional accumulator over the active rate, so the schedule
    /// is exact; request classes and client assignment come from the
    /// seeded RNG stream.
    Open {
        /// Base arrival rate (requests per virtual round).
        rate_per_round: f64,
        /// Rate ramps/bursts overriding the base rate from their
        /// `from_vr` on (must be sorted by `from_vr`).
        phases: Vec<RatePhase>,
    },
    /// Closed loop: each client keeps up to `outstanding_per_client`
    /// requests in flight and waits `think_rounds` after a completion
    /// before reissuing that slot.
    Closed {
        /// In-flight requests per client.
        outstanding_per_client: usize,
        /// Virtual rounds between a completion and the next issue.
        think_rounds: u64,
    },
}

impl LoadMode {
    /// `open` / `closed`, for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            LoadMode::Open { .. } => "open",
            LoadMode::Closed { .. } => "closed",
        }
    }
}

/// A full traffic workload: clients, arrival discipline, op mix, and
/// measurement window.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Number of client endpoints. The first `clients` devices of the
    /// deployment (population order) run a traffic port alongside
    /// their emulator.
    pub clients: usize,
    /// Arrival discipline.
    pub mode: LoadMode,
    /// Fraction of requests that are `Query`-class (reads/lookups);
    /// the remainder are `Mutate`-class. Apps without a read op
    /// (mutex, georouting) ignore this.
    pub query_fraction: f64,
    /// A request unanswered for more than this many virtual rounds is
    /// dropped and counted as timed out.
    pub timeout_rounds: u64,
    /// Virtual rounds during which requests are admitted. After the
    /// window the driver keeps stepping for `timeout_rounds + 1` more
    /// rounds so every late request either completes or times out.
    pub virtual_rounds: u64,
}

impl TrafficSpec {
    /// A small open-loop workload (useful default for experiments).
    pub fn open(clients: usize, rate_per_round: f64, virtual_rounds: u64) -> Self {
        TrafficSpec {
            clients,
            mode: LoadMode::Open {
                rate_per_round,
                phases: Vec::new(),
            },
            query_fraction: 0.5,
            timeout_rounds: 30,
            virtual_rounds,
        }
    }

    /// A closed-loop workload with `k` outstanding per client.
    pub fn closed(clients: usize, k: usize, think_rounds: u64, virtual_rounds: u64) -> Self {
        TrafficSpec {
            clients,
            mode: LoadMode::Closed {
                outstanding_per_client: k,
                think_rounds,
            },
            query_fraction: 0.5,
            timeout_rounds: 30,
            virtual_rounds,
        }
    }

    /// Sets the query (read) fraction.
    pub fn with_query_fraction(mut self, q: f64) -> Self {
        self.query_fraction = q;
        self
    }

    /// Checks the spec for parameters the driver would panic on or
    /// silently misbehave under.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.clients == 0 {
            return Err("traffic needs at least one client".into());
        }
        if self.virtual_rounds == 0 {
            return Err("traffic needs at least one virtual round".into());
        }
        if self.timeout_rounds == 0 {
            return Err("timeout must be at least one round".into());
        }
        if !(0.0..=1.0).contains(&self.query_fraction) {
            return Err(format!(
                "query fraction {} outside [0, 1]",
                self.query_fraction
            ));
        }
        match &self.mode {
            LoadMode::Open {
                rate_per_round,
                phases,
            } => {
                let good = |r: f64| r.is_finite() && r >= 0.0;
                if !good(*rate_per_round) {
                    return Err(format!("invalid open-loop rate {rate_per_round}"));
                }
                for p in phases {
                    if !good(p.rate_per_round) {
                        return Err(format!("invalid phase rate {}", p.rate_per_round));
                    }
                }
                if phases.windows(2).any(|w| w[0].from_vr > w[1].from_vr) {
                    return Err("rate phases must be sorted by from_vr".into());
                }
            }
            LoadMode::Closed {
                outstanding_per_client,
                ..
            } => {
                if *outstanding_per_client == 0 {
                    return Err("closed loop needs outstanding_per_client >= 1".into());
                }
            }
        }
        Ok(())
    }

    /// The open-loop arrival rate active in virtual round `vr` (the
    /// base rate overridden by the last phase whose `from_vr <= vr`);
    /// closed-loop specs have no rate.
    pub fn rate_at(&self, vr: u64) -> Option<f64> {
        match &self.mode {
            LoadMode::Open {
                rate_per_round,
                phases,
            } => {
                let mut rate = *rate_per_round;
                for p in phases {
                    if p.from_vr <= vr {
                        rate = p.rate_per_round;
                    }
                }
                Some(rate)
            }
            LoadMode::Closed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_phases_override_in_order() {
        let spec = TrafficSpec {
            mode: LoadMode::Open {
                rate_per_round: 0.2,
                phases: vec![
                    RatePhase {
                        from_vr: 10,
                        rate_per_round: 1.0,
                    },
                    RatePhase {
                        from_vr: 20,
                        rate_per_round: 0.1,
                    },
                ],
            },
            ..TrafficSpec::open(2, 0.2, 30)
        };
        assert_eq!(spec.rate_at(1), Some(0.2));
        assert_eq!(spec.rate_at(10), Some(1.0));
        assert_eq!(spec.rate_at(19), Some(1.0));
        assert_eq!(spec.rate_at(25), Some(0.1));
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(TrafficSpec::open(0, 1.0, 10).validate().is_err());
        assert!(TrafficSpec::open(1, -1.0, 10).validate().is_err());
        assert!(TrafficSpec::open(1, f64::NAN, 10).validate().is_err());
        assert!(TrafficSpec::open(1, 1.0, 0).validate().is_err());
        assert!(TrafficSpec::closed(1, 0, 1, 10).validate().is_err());
        let mut bad = TrafficSpec::open(1, 1.0, 10);
        bad.query_fraction = 1.5;
        assert!(bad.validate().is_err());
        let mut unsorted = TrafficSpec::open(1, 1.0, 10);
        unsorted.mode = LoadMode::Open {
            rate_per_round: 1.0,
            phases: vec![
                RatePhase {
                    from_vr: 20,
                    rate_per_round: 1.0,
                },
                RatePhase {
                    from_vr: 10,
                    rate_per_round: 2.0,
                },
            ],
        };
        assert!(unsorted.validate().is_err());
        assert!(TrafficSpec::closed(3, 2, 0, 10).validate().is_ok());
    }

    #[test]
    fn app_names_are_stable() {
        let names: Vec<&str> = AppKind::all().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["register", "mutex", "tracking", "georouting"]);
    }
}
