//! The lockstep round executor.
//!
//! The engine owns a set of nodes, each bundling a mobility model and
//! a protocol [`Process`]. Every round it (1) advances mobility, (2)
//! collects transmission decisions, (3) resolves the channel through
//! the engine-owned [`Medium`] (spatially indexed, reusable buffers),
//! and (4) delivers receptions. Executions are deterministic given
//! the seed.
//!
//! Crash failures and dynamic arrivals follow the paper's model: a
//! node may crash at any point (including mid-protocol-phase), and new
//! nodes may arrive at any round. Crashed nodes never participate
//! again; not-yet-spawned nodes are invisible to the channel.

use crate::adversary::{Adversary, NoAdversary};
use crate::channel::{
    AttributedReception, Medium, ReceptionBuffer, RoundReception, TopologyDelta, TxIntent,
};
use crate::config::RadioConfig;
use crate::geometry::Point;
use crate::mobility::MobilityModel;
use crate::trace::{ChannelStats, RoundRecord, Trace};
use crate::WireSized;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;
use vi_telemetry::{CausalRecorder, FlightEvent, FlightRecorder, Monitor, Phase, Probe};

/// Simulator handle for a node.
///
/// Note: this is a *simulator* handle for bookkeeping, traces, and
/// adversary scripts. The paper's model gives nodes no unique
/// identifiers, and no protocol in this workspace ever receives or
/// branches on a `NodeId`; messages are delivered anonymously.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(usize);

impl NodeId {
    /// The underlying index (nodes are numbered in insertion order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Per-round context handed to a [`Process`]: the round number and the
/// node's own position (the paper's GPS / location-service update).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundCtx {
    /// Current round.
    pub round: u64,
    /// The node's position this round.
    pub pos: Point,
}

/// A protocol endpoint driven by the engine.
///
/// Each round the engine calls [`Process::transmit`] (broadcast or
/// listen?) and then [`Process::deliver`] with the reception outcome.
/// The `as_any` methods enable typed extraction of results after a
/// run via [`Engine::process`].
pub trait Process<M>: 'static {
    /// Decides this round's transmission: `Some(payload)` to
    /// broadcast, `None` to listen.
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<M>;

    /// Receives the end-of-round outcome: messages plus the collision
    /// detector's output. The reception borrows engine-owned round
    /// storage — copy out whatever must outlive the call.
    fn deliver(&mut self, ctx: &RoundCtx, rx: RoundReception<'_, M>);

    /// Upcast for typed extraction; implement as `self`.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for typed extraction; implement as `self`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Specification of one node: mobility + protocol + lifecycle.
pub struct NodeSpec<M> {
    mobility: Box<dyn MobilityModel>,
    process: Box<dyn Process<M>>,
    spawn_at: u64,
    crash_at: Option<u64>,
}

impl<M> NodeSpec<M> {
    /// Creates a node that participates from round 0 and never
    /// crashes.
    pub fn new(mobility: Box<dyn MobilityModel>, process: Box<dyn Process<M>>) -> Self {
        NodeSpec {
            mobility,
            process,
            spawn_at: 0,
            crash_at: None,
        }
    }

    /// Delays the node's arrival until `round` (ad hoc deployment).
    pub fn spawn_at(mut self, round: u64) -> Self {
        self.spawn_at = round;
        self
    }

    /// Crashes the node at the start of `round` (it last participates
    /// in `round - 1`).
    pub fn crash_at(mut self, round: u64) -> Self {
        self.crash_at = Some(round);
        self
    }
}

impl<M> fmt::Debug for NodeSpec<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeSpec")
            .field("spawn_at", &self.spawn_at)
            .field("crash_at", &self.crash_at)
            .finish_non_exhaustive()
    }
}

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Radio model parameters.
    pub radio: RadioConfig,
    /// Seed for all simulator randomness (mobility, adversary,
    /// backoff); identical seeds give identical executions.
    pub seed: u64,
    /// Whether to record a full [`Trace`] (memory-proportional to the
    /// execution; disable for long benches).
    pub record_trace: bool,
}

struct NodeEntry<M> {
    id: NodeId,
    mobility: Box<dyn MobilityModel>,
    process: Box<dyn Process<M>>,
    spawn_at: u64,
    crash_at: Option<u64>,
    pos: Point,
    placed: bool,
    /// Cached [`MobilityModel::is_settled`] from the last `advance`;
    /// once `true` (and placed) the engine stops calling `advance`.
    settled: bool,
}

impl<M> NodeEntry<M> {
    fn participates(&self, round: u64) -> bool {
        round >= self.spawn_at && self.crash_at.is_none_or(|c| round < c)
    }
}

/// The deterministic lockstep simulator.
///
/// See the [crate-level documentation](crate) for an end-to-end
/// example.
pub struct Engine<M> {
    config: EngineConfig,
    nodes: Vec<NodeEntry<M>>,
    adversary: Box<dyn Adversary>,
    rng: StdRng,
    round: u64,
    trace: Trace,
    stats: ChannelStats,
    /// The broadcast medium: spatial index plus reusable resolution
    /// buffers (see [`Medium`]).
    medium: Medium,
    /// Per-round buffers, reused across [`Engine::step`] calls so the
    /// steady-state loop does not allocate.
    intents: Vec<TxIntent<M>>,
    live: Vec<usize>,
    /// Intent slots whose position changed this round (the dirty-set
    /// handed to the cached resolver).
    moved: Vec<u32>,
    /// Last round's live set, for detecting participant churn.
    prev_live: Vec<usize>,
    /// SoA reception storage for the fast round path.
    receptions: ReceptionBuffer<M>,
    /// Owned receptions for the legacy round path.
    legacy_receptions: Vec<AttributedReception<M>>,
    /// Scratch for materializing a legacy reception's anonymous view.
    legacy_messages: Vec<M>,
    /// Pooled trace record: built in place each traced round, then
    /// stored as an exact-size clone (no per-round growth churn).
    trace_scratch: RoundRecord,
    /// Route rounds through the pre-overhaul path (per-round index
    /// rebuild + per-receiver allocation). Byte-identical outputs;
    /// kept as the benchmarking baseline and differential oracle.
    legacy_round_path: bool,
    /// Telemetry handle (null by default; shared with the medium).
    probe: Probe,
    /// Causal-tracing handle (null by default): broadcast spans and
    /// reception edges recorded on the sequential stats pass.
    causal: CausalRecorder,
    /// Flight-recorder handle (null by default): last-K-rounds ring of
    /// structured events for incident bundles.
    flight: FlightRecorder,
    /// Live-monitoring handle (null by default): sampled on the
    /// sequential control path after each round resolves.
    monitor: Monitor,
}

/// Forwards every consultation to the real adversary, counting them.
/// The count is deterministic — the resolver's consultation order is
/// part of the byte-identity contract — and the wrapper is only
/// constructed when a probe is live, so the disabled path keeps the
/// direct vtable call.
struct CountingAdversary<'a> {
    inner: &'a mut dyn Adversary,
    hits: u64,
}

impl Adversary for CountingAdversary<'_> {
    fn drop_message(&mut self, round: u64, src: NodeId, dst: NodeId, rng: &mut StdRng) -> bool {
        self.hits += 1;
        self.inner.drop_message(round, src, dst, rng)
    }

    fn spurious_collision(&mut self, round: u64, node: NodeId, rng: &mut StdRng) -> bool {
        self.hits += 1;
        self.inner.spurious_collision(round, node, rng)
    }

    fn suppress_detection(&mut self, round: u64, node: NodeId, rng: &mut StdRng) -> bool {
        self.hits += 1;
        self.inner.suppress_detection(round, node, rng)
    }
}

impl<M: Clone + WireSized + 'static> Engine<M> {
    /// Creates an engine with the benign [`NoAdversary`].
    ///
    /// # Panics
    ///
    /// Panics if the radio configuration is invalid.
    pub fn new(config: EngineConfig) -> Self {
        config.radio.validate().expect("invalid radio config");
        let rng = StdRng::seed_from_u64(config.seed);
        let medium = Medium::new(config.radio);
        Engine {
            config,
            nodes: Vec::new(),
            adversary: Box::new(NoAdversary),
            rng,
            round: 0,
            trace: Trace::new(),
            stats: ChannelStats::default(),
            medium,
            intents: Vec::new(),
            live: Vec::new(),
            moved: Vec::new(),
            prev_live: Vec::new(),
            receptions: ReceptionBuffer::new(),
            legacy_receptions: Vec::new(),
            legacy_messages: Vec::new(),
            trace_scratch: RoundRecord {
                round: 0,
                positions: Vec::new(),
                broadcasts: Vec::new(),
                deliveries: Vec::new(),
                collisions: Vec::new(),
            },
            legacy_round_path: false,
            probe: Probe::disabled(),
            causal: CausalRecorder::disabled(),
            flight: FlightRecorder::disabled(),
            monitor: Monitor::disabled(),
        }
    }

    /// Installs a telemetry probe on the engine and its medium (clones
    /// share one set of counters and timers). The default probe is
    /// null: every instrumentation site costs a single branch and the
    /// zero-alloc steady-state contract is untouched.
    pub fn set_probe(&mut self, probe: Probe) {
        self.medium.set_probe(probe.clone());
        self.probe = probe;
    }

    /// Installs a causal-tracing recorder. The engine records one
    /// broadcast span per transmitted intent and one reception edge
    /// per delivered message, all on the sequential stats pass — the
    /// resolver, RNG stream, and channel stats are untouched, so a
    /// traced run stays byte-identical to an untraced one.
    pub fn set_causal(&mut self, causal: CausalRecorder) {
        self.causal = causal;
    }

    /// Installs a flight recorder capturing per-round structured
    /// events (aggregate receptions, adversary consultations, churn,
    /// scripted crashes) into its bounded ring.
    pub fn set_flight(&mut self, flight: FlightRecorder) {
        self.flight = flight;
    }

    /// Installs a live monitor, sampled after every round on the
    /// sequential control path (so the counters inside each snapshot
    /// are byte-identical at any worker count). The default monitor is
    /// null: one branch per round, no allocation.
    pub fn set_monitor(&mut self, monitor: Monitor) {
        self.monitor = monitor;
    }

    /// The broadcast medium driving channel resolution.
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// Routes all subsequent rounds through the pre-overhaul path
    /// (per-round spatial-index rebuild, per-receiver allocation, no
    /// static-node fast path). Executions are byte-for-byte identical
    /// either way — this exists as the benchmarking baseline for the
    /// hot-path overhaul and as the oracle of its differential tests.
    pub fn set_legacy_round_path(&mut self, legacy: bool) {
        self.legacy_round_path = legacy;
    }

    /// Sets the intra-round worker count for tile-sharded round
    /// resolution (see [`Medium::set_workers`]). `0`/`1` keep rounds
    /// sequential; `>= 2` shards the geometry phase of sufficiently
    /// large rounds across a persistent worker pool. Executions are
    /// byte-for-byte identical — receptions, traces, stats, and RNG
    /// stream — at any worker count.
    pub fn set_workers(&mut self, workers: usize) {
        self.medium.set_workers(workers);
    }

    /// Overrides the smallest round size worth sharding (see
    /// [`Medium::set_shard_min_slots`]). Testing knob.
    pub fn set_shard_min_slots(&mut self, min: usize) {
        self.medium.set_shard_min_slots(min);
    }

    /// Installs an adversary (replacing the current one).
    pub fn set_adversary(&mut self, adversary: Box<dyn Adversary>) {
        self.adversary = adversary;
    }

    /// Adds a node and returns its simulator handle. May be called
    /// mid-execution to model ad hoc arrivals (combine with
    /// [`NodeSpec::spawn_at`] for scripted arrivals).
    pub fn add_node(&mut self, spec: NodeSpec<M>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeEntry {
            id,
            mobility: spec.mobility,
            process: spec.process,
            spawn_at: spec.spawn_at,
            crash_at: spec.crash_at,
            pos: Point::ORIGIN,
            placed: false,
            settled: false,
        });
        id
    }

    /// Crashes `node` at the start of the *next* round (it no longer
    /// participates). Idempotent; earlier scheduled crashes win.
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown.
    pub fn crash(&mut self, node: NodeId) {
        let entry = &mut self.nodes[node.index()];
        let at = self.round;
        entry.crash_at = Some(entry.crash_at.map_or(at, |c| c.min(at)));
    }

    /// The next round to be executed.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current position of `node`, if it has been placed (i.e. has
    /// participated in at least one round).
    pub fn position(&self, node: NodeId) -> Option<Point> {
        let e = self.nodes.get(node.index())?;
        e.placed.then_some(e.pos)
    }

    /// Whether `node` participates in the upcoming round.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes
            .get(node.index())
            .is_some_and(|e| e.participates(self.round))
    }

    /// Typed view of a node's process (for extracting results).
    pub fn process<P: 'static>(&self, node: NodeId) -> Option<&P> {
        self.nodes
            .get(node.index())?
            .process
            .as_any()
            .downcast_ref::<P>()
    }

    /// Typed mutable view of a node's process.
    pub fn process_mut<P: 'static>(&mut self, node: NodeId) -> Option<&mut P> {
        self.nodes
            .get_mut(node.index())?
            .process
            .as_any_mut()
            .downcast_mut::<P>()
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The recorded trace (empty unless `record_trace` was set).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of nodes ever added.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Executes one slotted round: advance mobility (skipping settled
    /// nodes), collect intents, resolve the channel through the
    /// [`Medium`]'s cached-topology path, deliver outcomes. All round
    /// buffers are engine-owned and reused, so steady-state rounds
    /// (static topology, non-allocating processes, tracing off) make
    /// zero heap allocations — see `tests/zero_alloc.rs`.
    pub fn step(&mut self) {
        if self.legacy_round_path {
            self.step_legacy();
        } else {
            self.step_fast();
        }
    }

    /// Mobility + transmission collection shared by both round paths.
    ///
    /// `skip_settled` is the fast path's static-node shortcut: placed,
    /// settled nodes keep their position without an `advance` call
    /// (the settled contract guarantees the call would return the same
    /// position and draw nothing, so the RNG stream is unchanged).
    /// Fills `intents`/`live`, and the `moved` dirty-set of intent
    /// slots whose position changed.
    fn collect_intents(&mut self, skip_settled: bool) {
        let round = self.round;
        self.intents.clear();
        self.live.clear();
        self.moved.clear();

        for idx in 0..self.nodes.len() {
            if !self.nodes[idx].participates(round) {
                continue;
            }
            let slot = self.intents.len() as u32;
            let entry = &mut self.nodes[idx];
            if !(skip_settled && entry.placed && entry.settled) {
                let pos = entry.mobility.advance(round, &mut self.rng);
                if entry.placed {
                    let moved = entry.pos.distance(pos);
                    let vmax = entry.mobility.vmax();
                    debug_assert!(
                        moved <= vmax + 1e-9,
                        "node {} moved {moved} > vmax {vmax} in round {round}",
                        entry.id
                    );
                }
                if !entry.placed || entry.pos != pos {
                    self.moved.push(slot);
                }
                entry.pos = pos;
                entry.placed = true;
                entry.settled = entry.mobility.is_settled();
            }
            let ctx = RoundCtx {
                round,
                pos: self.nodes[idx].pos,
            };
            let payload = self.nodes[idx].process.transmit(&ctx);
            self.intents.push(TxIntent {
                node: self.nodes[idx].id,
                pos: self.nodes[idx].pos,
                payload,
            });
            self.live.push(idx);
        }
    }

    /// Notes scripted crashes firing this round into the flight
    /// recorder (call only when the recorder is live).
    fn note_nemesis(&self, round: u64) {
        for e in &self.nodes {
            if e.crash_at == Some(round) {
                self.flight.note(FlightEvent::Nemesis {
                    node: e.id.index() as u64,
                });
            }
        }
    }

    /// Notes the live-set diff (both sets are sorted by construction)
    /// into the flight recorder (call only when the recorder is live,
    /// and before `prev_live` is refreshed).
    fn note_churn(&self) {
        let (mut i, mut j) = (0, 0);
        let mut joined = Vec::new();
        let mut left = Vec::new();
        loop {
            match (self.prev_live.get(i), self.live.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(&a), Some(&b)) if a < b => {
                    left.push(a as u64);
                    i += 1;
                }
                (Some(_), Some(&b)) => {
                    joined.push(b as u64);
                    j += 1;
                }
                (Some(&a), None) => {
                    left.push(a as u64);
                    i += 1;
                }
                (None, Some(&b)) => {
                    joined.push(b as u64);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        self.flight.note(FlightEvent::Churn { joined, left });
    }

    /// The overhauled round path: cached-topology resolution into SoA
    /// reception storage, zero allocations in steady state.
    fn step_fast(&mut self) {
        let round = self.round;
        self.causal.begin_round(round);
        if self.flight.is_enabled() {
            self.flight.begin_round(round);
            self.note_nemesis(round);
        }
        let t_adv = self.probe.timer();
        self.collect_intents(true);
        self.probe.phase_since(Phase::Advance, t_adv);

        // Topology delta for the cached resolver: participant churn
        // forces a rebuild; otherwise only the movers are dirty.
        let delta = if self.live != self.prev_live {
            if self.flight.is_enabled() {
                self.note_churn();
            }
            self.prev_live.clone_from(&self.live);
            TopologyDelta::Rebuild
        } else if self.moved.is_empty() {
            TopologyDelta::Unchanged
        } else {
            TopologyDelta::Moved(&self.moved)
        };
        if self.probe.is_enabled() || self.flight.is_enabled() {
            let mut counting = CountingAdversary {
                inner: self.adversary.as_mut(),
                hits: 0,
            };
            self.medium.resolve_round_cached(
                round,
                &self.intents,
                delta,
                &mut counting,
                &mut self.rng,
                &mut self.receptions,
            );
            let hits = counting.hits;
            self.probe.count(|c| c.adversary_checks += hits);
            if hits > 0 {
                self.flight.note(FlightEvent::Adversary { checks: hits });
            }
        } else {
            self.medium.resolve_round_cached(
                round,
                &self.intents,
                delta,
                self.adversary.as_mut(),
                &mut self.rng,
                &mut self.receptions,
            );
        }

        // Statistics and trace (pooled record, cloned exact-size).
        let t_del = self.probe.timer();
        let prev_deliveries = self.stats.deliveries;
        let prev_collisions = self.stats.collision_reports;
        self.stats.rounds += 1;
        let record = self.config.record_trace;
        if record {
            self.trace_scratch.round = round;
            self.trace_scratch.positions.clear();
            self.trace_scratch
                .positions
                .extend(self.intents.iter().map(|i| (i.node, i.pos)));
            self.trace_scratch.broadcasts.clear();
            self.trace_scratch.deliveries.clear();
            self.trace_scratch.collisions.clear();
        }
        for intent in &self.intents {
            if let Some(payload) = &intent.payload {
                let size = payload.wire_size();
                self.stats.broadcasts += 1;
                self.stats.total_bytes += size as u64;
                self.stats.max_message_bytes = self.stats.max_message_bytes.max(size);
                self.causal.broadcast(intent.node.index() as u64);
                if record {
                    self.trace_scratch.broadcasts.push((intent.node, size));
                }
            }
        }
        for k in 0..self.receptions.len() {
            let node = self.receptions.node(k);
            for &src in self.receptions.senders(k) {
                if src != node {
                    self.stats.deliveries += 1;
                    self.causal
                        .reception(src.index() as u64, node.index() as u64);
                    if record {
                        self.trace_scratch.deliveries.push((src, node));
                    }
                }
            }
            if self.receptions.collision(k) {
                self.stats.collision_reports += 1;
                if record {
                    self.trace_scratch.collisions.push(node);
                }
            }
        }
        if record {
            self.trace.rounds.push(self.trace_scratch.clone());
        }
        if self.flight.is_enabled() {
            self.flight.note(FlightEvent::Reception {
                delivered: self.stats.deliveries - prev_deliveries,
                collisions: self.stats.collision_reports - prev_collisions,
            });
        }

        // Deliver outcomes as borrowed views into the SoA buffer.
        for k in 0..self.receptions.len() {
            let idx = self.live[k];
            let ctx = RoundCtx {
                round,
                pos: self.nodes[idx].pos,
            };
            let rx = self.receptions.reception(k);
            self.nodes[idx].process.deliver(&ctx, rx);
        }
        let receptions = self.stats.deliveries - prev_deliveries;
        let collisions = self.stats.collision_reports - prev_collisions;
        self.probe.count(|c| {
            c.receptions += receptions;
            c.collisions += collisions;
        });
        self.probe.phase_since(Phase::Deliver, t_del);

        self.round += 1;
        self.monitor.on_round(self.round);
    }

    /// The pre-overhaul round path, kept verbatim as the baseline:
    /// every participant's mobility advances, the medium re-anchors
    /// its index over the round's broadcasters, and each reception is
    /// an owned allocation.
    fn step_legacy(&mut self) {
        let round = self.round;
        self.causal.begin_round(round);
        if self.flight.is_enabled() {
            self.flight.begin_round(round);
            self.note_nemesis(round);
        }
        let t_adv = self.probe.timer();
        self.collect_intents(false);
        self.probe.phase_since(Phase::Advance, t_adv);
        // The legacy resolver ignores the topology cache, so `prev_live`
        // is normally untouched here; maintain it just for the churn
        // events when the flight recorder is live.
        if self.flight.is_enabled() && self.live != self.prev_live {
            self.note_churn();
            self.prev_live.clone_from(&self.live);
        }

        if self.probe.is_enabled() || self.flight.is_enabled() {
            let mut counting = CountingAdversary {
                inner: self.adversary.as_mut(),
                hits: 0,
            };
            self.medium.resolve_into(
                round,
                &self.intents,
                &mut counting,
                &mut self.rng,
                &mut self.legacy_receptions,
            );
            let hits = counting.hits;
            self.probe.count(|c| c.adversary_checks += hits);
            if hits > 0 {
                self.flight.note(FlightEvent::Adversary { checks: hits });
            }
        } else {
            self.medium.resolve_into(
                round,
                &self.intents,
                self.adversary.as_mut(),
                &mut self.rng,
                &mut self.legacy_receptions,
            );
        }

        // Statistics and trace.
        let t_del = self.probe.timer();
        let prev_deliveries = self.stats.deliveries;
        let prev_collisions = self.stats.collision_reports;
        self.stats.rounds += 1;
        let mut record = self.config.record_trace.then(|| RoundRecord {
            round,
            positions: self.intents.iter().map(|i| (i.node, i.pos)).collect(),
            broadcasts: Vec::new(),
            deliveries: Vec::new(),
            collisions: Vec::new(),
        });
        for intent in &self.intents {
            if let Some(payload) = &intent.payload {
                let size = payload.wire_size();
                self.stats.broadcasts += 1;
                self.stats.total_bytes += size as u64;
                self.stats.max_message_bytes = self.stats.max_message_bytes.max(size);
                self.causal.broadcast(intent.node.index() as u64);
                if let Some(rec) = record.as_mut() {
                    rec.broadcasts.push((intent.node, size));
                }
            }
        }
        for rx in &self.legacy_receptions {
            for &(src, _) in rx.messages.iter().filter(|(src, _)| *src != rx.node) {
                self.stats.deliveries += 1;
                self.causal
                    .reception(src.index() as u64, rx.node.index() as u64);
                if let Some(rec) = record.as_mut() {
                    rec.deliveries.push((src, rx.node));
                }
            }
            if rx.collision {
                self.stats.collision_reports += 1;
                if let Some(rec) = record.as_mut() {
                    rec.collisions.push(rx.node);
                }
            }
        }
        if let Some(rec) = record {
            self.trace.rounds.push(rec);
        }
        if self.flight.is_enabled() {
            self.flight.note(FlightEvent::Reception {
                delivered: self.stats.deliveries - prev_deliveries,
                collisions: self.stats.collision_reports - prev_collisions,
            });
        }

        // Deliver outcomes (draining keeps the buffer's capacity).
        let mut k = 0;
        while k < self.legacy_receptions.len() {
            let idx = self.live[k];
            let ctx = RoundCtx {
                round,
                pos: self.nodes[idx].pos,
            };
            self.legacy_messages.clear();
            self.legacy_messages
                .extend(self.legacy_receptions[k].messages.drain(..).map(|(_, m)| m));
            let rx = RoundReception {
                messages: &self.legacy_messages,
                collision: self.legacy_receptions[k].collision,
            };
            self.nodes[idx].process.deliver(&ctx, rx);
            k += 1;
        }
        self.legacy_receptions.clear();
        let receptions = self.stats.deliveries - prev_deliveries;
        let collisions = self.stats.collision_reports - prev_collisions;
        self.probe.count(|c| {
            c.receptions += receptions;
            c.collisions += collisions;
        });
        self.probe.phase_since(Phase::Deliver, t_del);

        self.round += 1;
        self.monitor.on_round(self.round);
    }

    /// Executes `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }
}

impl<M> fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("round", &self.round)
            .field("nodes", &self.nodes.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::Static;

    /// Counts receptions and collisions; broadcasts `value` every
    /// round while `chatty`.
    struct Chatter {
        chatty: bool,
        value: u64,
        heard: Vec<u64>,
        collisions: u64,
        rounds_seen: u64,
    }

    impl Chatter {
        fn new(chatty: bool, value: u64) -> Self {
            Chatter {
                chatty,
                value,
                heard: Vec::new(),
                collisions: 0,
                rounds_seen: 0,
            }
        }
    }

    impl Process<u64> for Chatter {
        fn transmit(&mut self, _ctx: &RoundCtx) -> Option<u64> {
            self.chatty.then_some(self.value)
        }
        fn deliver(&mut self, _ctx: &RoundCtx, rx: RoundReception<'_, u64>) {
            self.rounds_seen += 1;
            self.heard.extend_from_slice(rx.messages);
            if rx.collision {
                self.collisions += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn engine() -> Engine<u64> {
        Engine::new(EngineConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            seed: 5,
            record_trace: true,
        })
    }

    fn static_node(engine: &mut Engine<u64>, x: f64, p: Chatter) -> NodeId {
        engine.add_node(NodeSpec::new(
            Box::new(Static::new(Point::new(x, 0.0))),
            Box::new(p),
        ))
    }

    #[test]
    fn single_broadcaster_reaches_listeners() {
        let mut e = engine();
        let tx = static_node(&mut e, 0.0, Chatter::new(true, 42));
        let rx1 = static_node(&mut e, 5.0, Chatter::new(false, 0));
        let rx2 = static_node(&mut e, 9.0, Chatter::new(false, 0));
        e.run(4);
        for id in [rx1, rx2] {
            let p: &Chatter = e.process(id).unwrap();
            assert_eq!(p.heard, vec![42, 42, 42, 42]);
            assert_eq!(p.collisions, 0);
        }
        let t: &Chatter = e.process(tx).unwrap();
        // Sender observes its own message each round.
        assert_eq!(t.heard.len(), 4);
        assert_eq!(e.stats().broadcasts, 4);
        assert_eq!(e.stats().deliveries, 8);
        assert_eq!(e.stats().max_message_bytes, 8);
    }

    #[test]
    fn crash_at_stops_participation() {
        let mut e = engine();
        let _tx = e.add_node(
            NodeSpec::new(
                Box::new(Static::new(Point::ORIGIN)),
                Box::new(Chatter::new(true, 1)),
            )
            .crash_at(2),
        );
        let rx = static_node(&mut e, 5.0, Chatter::new(false, 0));
        e.run(5);
        let p: &Chatter = e.process(rx).unwrap();
        assert_eq!(p.heard, vec![1, 1], "two rounds before the crash");
        assert_eq!(p.rounds_seen, 5, "listener still runs after the crash");
    }

    #[test]
    fn spawn_at_delays_participation() {
        let mut e = engine();
        let late = e.add_node(
            NodeSpec::new(
                Box::new(Static::new(Point::ORIGIN)),
                Box::new(Chatter::new(true, 9)),
            )
            .spawn_at(3),
        );
        let rx = static_node(&mut e, 5.0, Chatter::new(false, 0));
        e.run(5);
        assert!(e.is_alive(late));
        let p: &Chatter = e.process(rx).unwrap();
        assert_eq!(p.heard, vec![9, 9], "rounds 3 and 4 only");
    }

    #[test]
    fn dynamic_crash_takes_effect_next_round() {
        let mut e = engine();
        let tx = static_node(&mut e, 0.0, Chatter::new(true, 3));
        let rx = static_node(&mut e, 5.0, Chatter::new(false, 0));
        e.step();
        e.crash(tx);
        assert!(!e.is_alive(tx));
        e.run(3);
        let p: &Chatter = e.process(rx).unwrap();
        assert_eq!(p.heard, vec![3]);
    }

    #[test]
    fn identical_seeds_identical_executions() {
        let run = |seed: u64| {
            let mut e = Engine::<u64>::new(EngineConfig {
                radio: RadioConfig::stabilizing(10.0, 20.0, 50),
                seed,
                record_trace: false,
            });
            e.set_adversary(Box::new(crate::adversary::RandomLoss::new(0.4, 0.1)));
            let _ = static_node(&mut e, 0.0, Chatter::new(true, 1));
            let rx = static_node(&mut e, 5.0, Chatter::new(false, 0));
            e.run(40);
            let p: &Chatter = e.process(rx).unwrap();
            (p.heard.clone(), p.collisions, *e.stats())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0.len(), 40, "some loss expected pre-stabilization");
    }

    #[test]
    fn trace_records_broadcasts_and_deliveries() {
        let mut e = engine();
        let tx = static_node(&mut e, 0.0, Chatter::new(true, 1));
        let rx = static_node(&mut e, 5.0, Chatter::new(false, 0));
        e.run(2);
        let trace = e.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.rounds[0].broadcasts, vec![(tx, 8)]);
        assert_eq!(trace.rounds[0].deliveries, vec![(tx, rx)]);
        assert!(trace.rounds[0].collisions.is_empty());
    }

    #[test]
    fn position_reports_location_service() {
        let mut e = engine();
        let id = static_node(&mut e, 7.0, Chatter::new(false, 0));
        assert_eq!(e.position(id), None, "not placed before first round");
        e.step();
        assert_eq!(e.position(id), Some(Point::new(7.0, 0.0)));
    }
}
