//! Adversarial network misbehaviour.
//!
//! The paper's channel misbehaves before stabilization: "Communication
//! is prone to collisions, which can occur for arbitrary and
//! unpredictable reasons. As a result ... each node can fail to
//! receive an arbitrary subset of messages ... collisions may affect
//! nodes in a non-uniform way." Likewise collision detectors may emit
//! false positives before the accuracy round `racc`.
//!
//! An [`Adversary`] decides, per round, which otherwise-deliverable
//! messages to destroy (consulted only for rounds before
//! [`RadioConfig::rcf`](crate::RadioConfig)) and which nodes receive
//! spurious collision indications (consulted only before
//! [`RadioConfig::racc`](crate::RadioConfig)). The channel enforces
//! these scoping rules itself, so no adversary implementation can
//! violate the model's eventual guarantees; completeness (Property 1)
//! is likewise enforced structurally and is out of the adversary's
//! reach.

use crate::engine::NodeId;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::ops::Range;

/// Decides pre-stabilization message drops and spurious collision
/// indications.
pub trait Adversary {
    /// Returns `true` to destroy the delivery of the message broadcast
    /// by `src` to receiver `dst` in `round`. Only consulted for
    /// `round < rcf`.
    fn drop_message(&mut self, round: u64, src: NodeId, dst: NodeId, rng: &mut StdRng) -> bool;

    /// Returns `true` to make `node`'s collision detector report a
    /// (possibly false) collision in `round`. Only consulted for
    /// `round < racc`.
    fn spurious_collision(&mut self, round: u64, node: NodeId, rng: &mut StdRng) -> bool;

    /// **Model-violation hook** for the detector-necessity ablation
    /// (experiment E13): returns `true` to *suppress* a collision
    /// report that Property 1 would otherwise force at `node`. The
    /// paper's model guarantees completeness unconditionally — and
    /// consensus is impossible without it (Section 1.1, refs [7, 8]) —
    /// so every normal adversary keeps the default `false`; only
    /// [`FaultyDetector`] overrides it, to demonstrate empirically why
    /// the guarantee is load-bearing.
    fn suppress_detection(&mut self, _round: u64, _node: NodeId, _rng: &mut StdRng) -> bool {
        false
    }
}

/// A serializable description of which adversary to install for a
/// run — the data form of the [`Adversary`] implementations in this
/// module, usable in scenario specs and experiment configs.
///
/// Call [`AdversaryKind::build`] to instantiate the described
/// adversary (fresh, with no carried-over state).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// No misbehaviour ([`NoAdversary`]).
    None,
    /// Random loss: `(drop probability, spurious-collision
    /// probability)` ([`RandomLoss`]).
    Random(f64, f64),
    /// Total loss during the given round ranges ([`BurstLoss`]).
    Burst(Vec<Range<u64>>),
    /// Random loss `(drop_p)` **plus a broken collision detector**
    /// that misses forced reports with probability `miss_p` — a
    /// deliberate model violation for the E13 necessity ablation
    /// ([`FaultyDetector`]).
    BrokenDetector {
        /// Per-delivery drop probability.
        drop_p: f64,
        /// Per-(node, round) detection-suppression probability.
        miss_p: f64,
    },
    /// Random loss scoped to round windows ([`WindowedRandomLoss`]):
    /// outside every window the channel behaves perfectly (and draws
    /// no randomness). The building block nemesis fault schedules
    /// compile detector-corruption windows into.
    WindowedRandom {
        /// Rounds during which the loss probabilities apply.
        windows: Vec<Range<u64>>,
        /// Per-delivery drop probability inside a window.
        drop_p: f64,
        /// Per-node-per-round spurious collision probability inside a
        /// window.
        spurious_p: f64,
    },
    /// The union of several adversaries ([`ComposeAdversary`]): a
    /// delivery is destroyed if *any* member drops it, and a node sees
    /// a spurious indication if *any* member injects one. Every member
    /// is always consulted, so the RNG stream is independent of the
    /// individual verdicts. Nemesis fault schedules compile to a
    /// composition over the scenario's base adversary.
    Compose(Vec<AdversaryKind>),
}

impl AdversaryKind {
    /// Instantiates the described adversary.
    ///
    /// # Panics
    ///
    /// Panics if a probability lies outside `[0, 1]` (the underlying
    /// constructors validate their inputs).
    pub fn build(&self) -> Box<dyn Adversary> {
        match self {
            AdversaryKind::None => Box::new(NoAdversary),
            AdversaryKind::Random(d, s) => Box::new(RandomLoss::new(*d, *s)),
            AdversaryKind::Burst(ranges) => Box::new(BurstLoss::new(ranges.clone())),
            AdversaryKind::BrokenDetector { drop_p, miss_p } => {
                Box::new(FaultyDetector::new(RandomLoss::new(*drop_p, 0.0), *miss_p))
            }
            AdversaryKind::WindowedRandom {
                windows,
                drop_p,
                spurious_p,
            } => Box::new(WindowedRandomLoss::new(
                windows.clone(),
                *drop_p,
                *spurious_p,
            )),
            AdversaryKind::Compose(members) => Box::new(ComposeAdversary::new(
                members.iter().map(AdversaryKind::build).collect(),
            )),
        }
    }
}

/// Wraps an adversary and additionally breaks collision-detector
/// completeness with probability `miss_p` per (node, round) — **a
/// deliberate violation of the paper's model** used only by the
/// necessity ablation (E13).
#[derive(Debug)]
pub struct FaultyDetector<A> {
    inner: A,
    miss_p: f64,
}

impl<A: Adversary> FaultyDetector<A> {
    /// Wraps `inner`, suppressing forced detections with probability
    /// `miss_p`.
    ///
    /// # Panics
    ///
    /// Panics if `miss_p` is outside `[0, 1]`.
    pub fn new(inner: A, miss_p: f64) -> Self {
        assert!((0.0..=1.0).contains(&miss_p), "miss_p must lie in [0, 1]");
        FaultyDetector { inner, miss_p }
    }
}

impl<A: Adversary> Adversary for FaultyDetector<A> {
    fn drop_message(&mut self, round: u64, src: NodeId, dst: NodeId, rng: &mut StdRng) -> bool {
        self.inner.drop_message(round, src, dst, rng)
    }

    fn spurious_collision(&mut self, round: u64, node: NodeId, rng: &mut StdRng) -> bool {
        self.inner.spurious_collision(round, node, rng)
    }

    fn suppress_detection(&mut self, _round: u64, _node: NodeId, rng: &mut StdRng) -> bool {
        rng.random_bool(self.miss_p)
    }
}

/// The benign adversary: never drops, never lies.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoAdversary;

impl Adversary for NoAdversary {
    fn drop_message(&mut self, _round: u64, _src: NodeId, _dst: NodeId, _rng: &mut StdRng) -> bool {
        false
    }

    fn spurious_collision(&mut self, _round: u64, _node: NodeId, _rng: &mut StdRng) -> bool {
        false
    }
}

/// Drops each (sender, receiver) delivery independently with
/// probability `drop_p`, and injects spurious collision indications
/// with probability `spurious_p` per node per round.
#[derive(Clone, Copy, Debug)]
pub struct RandomLoss {
    /// Per-delivery drop probability in `[0, 1]`.
    pub drop_p: f64,
    /// Per-node-per-round spurious collision probability in `[0, 1]`.
    pub spurious_p: f64,
}

impl RandomLoss {
    /// Creates a random-loss adversary.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(drop_p: f64, spurious_p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_p) && (0.0..=1.0).contains(&spurious_p),
            "probabilities must lie in [0, 1]"
        );
        RandomLoss { drop_p, spurious_p }
    }
}

impl Adversary for RandomLoss {
    fn drop_message(&mut self, _round: u64, _src: NodeId, _dst: NodeId, rng: &mut StdRng) -> bool {
        rng.random_bool(self.drop_p)
    }

    fn spurious_collision(&mut self, _round: u64, _node: NodeId, rng: &mut StdRng) -> bool {
        rng.random_bool(self.spurious_p)
    }
}

/// Destroys *all* deliveries during the given round ranges and injects
/// collision indications at every node during those rounds.
///
/// Models the paper's "alternating periods of stability and
/// instability".
#[derive(Clone, Debug)]
pub struct BurstLoss {
    bursts: Vec<Range<u64>>,
}

impl BurstLoss {
    /// Creates a burst adversary active during each range in `bursts`.
    pub fn new(bursts: Vec<Range<u64>>) -> Self {
        BurstLoss { bursts }
    }

    /// Returns `true` if `round` falls inside a burst.
    pub fn active(&self, round: u64) -> bool {
        self.bursts.iter().any(|b| b.contains(&round))
    }
}

impl Adversary for BurstLoss {
    fn drop_message(&mut self, round: u64, _src: NodeId, _dst: NodeId, _rng: &mut StdRng) -> bool {
        self.active(round)
    }

    fn spurious_collision(&mut self, round: u64, _node: NodeId, _rng: &mut StdRng) -> bool {
        self.active(round)
    }
}

/// [`RandomLoss`] scoped to round windows: outside every window the
/// channel is perfect and no randomness is drawn, so prefixing a quiet
/// run with an empty schedule never perturbs it.
#[derive(Clone, Debug)]
pub struct WindowedRandomLoss {
    windows: Vec<Range<u64>>,
    loss: RandomLoss,
}

impl WindowedRandomLoss {
    /// Creates a windowed random-loss adversary.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(windows: Vec<Range<u64>>, drop_p: f64, spurious_p: f64) -> Self {
        WindowedRandomLoss {
            windows,
            loss: RandomLoss::new(drop_p, spurious_p),
        }
    }

    /// Returns `true` if `round` falls inside a window.
    pub fn active(&self, round: u64) -> bool {
        self.windows.iter().any(|w| w.contains(&round))
    }
}

impl Adversary for WindowedRandomLoss {
    fn drop_message(&mut self, round: u64, src: NodeId, dst: NodeId, rng: &mut StdRng) -> bool {
        self.active(round) && self.loss.drop_message(round, src, dst, rng)
    }

    fn spurious_collision(&mut self, round: u64, node: NodeId, rng: &mut StdRng) -> bool {
        self.active(round) && self.loss.spurious_collision(round, node, rng)
    }
}

/// The union of several adversaries: drops a delivery if any member
/// does, injects a spurious indication if any member does. Members are
/// *always all consulted* (no short-circuiting), so each member's RNG
/// consumption — and therefore the whole run — stays deterministic
/// regardless of the other members' verdicts.
pub struct ComposeAdversary {
    members: Vec<Box<dyn Adversary>>,
}

impl ComposeAdversary {
    /// Composes `members` (empty behaves like [`NoAdversary`]).
    pub fn new(members: Vec<Box<dyn Adversary>>) -> Self {
        ComposeAdversary { members }
    }
}

impl Adversary for ComposeAdversary {
    fn drop_message(&mut self, round: u64, src: NodeId, dst: NodeId, rng: &mut StdRng) -> bool {
        let mut any = false;
        for m in &mut self.members {
            any |= m.drop_message(round, src, dst, rng);
        }
        any
    }

    fn spurious_collision(&mut self, round: u64, node: NodeId, rng: &mut StdRng) -> bool {
        let mut any = false;
        for m in &mut self.members {
            any |= m.spurious_collision(round, node, rng);
        }
        any
    }

    fn suppress_detection(&mut self, round: u64, node: NodeId, rng: &mut StdRng) -> bool {
        let mut any = false;
        for m in &mut self.members {
            any |= m.suppress_detection(round, node, rng);
        }
        any
    }
}

/// A fully scripted adversary: exact (round, src, dst) drops and
/// (round, node) spurious indications.
///
/// Used to force the precise per-phase loss patterns of the paper's
/// Figure 2 in experiment E1, and the footnote-2 partition scenario in
/// the integration tests.
#[derive(Clone, Debug, Default)]
pub struct ScriptedAdversary {
    drops: HashSet<(u64, NodeId, NodeId)>,
    drops_to: HashSet<(u64, NodeId)>,
    spurious: HashSet<(u64, NodeId)>,
}

impl ScriptedAdversary {
    /// Creates an empty script (equivalent to [`NoAdversary`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the drop of the message from `src` to `dst` in
    /// `round`.
    pub fn drop(&mut self, round: u64, src: NodeId, dst: NodeId) -> &mut Self {
        self.drops.insert((round, src, dst));
        self
    }

    /// Schedules the drop of *every* message addressed to `dst` in
    /// `round` (regardless of sender).
    pub fn drop_all_to(&mut self, round: u64, dst: NodeId) -> &mut Self {
        self.drops_to.insert((round, dst));
        self
    }

    /// Schedules a spurious collision indication at `node` in `round`.
    pub fn inject_collision(&mut self, round: u64, node: NodeId) -> &mut Self {
        self.spurious.insert((round, node));
        self
    }
}

impl Adversary for ScriptedAdversary {
    fn drop_message(&mut self, round: u64, src: NodeId, dst: NodeId, _rng: &mut StdRng) -> bool {
        self.drops.contains(&(round, src, dst)) || self.drops_to.contains(&(round, dst))
    }

    fn spurious_collision(&mut self, round: u64, node: NodeId, _rng: &mut StdRng) -> bool {
        self.spurious.contains(&(round, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn no_adversary_is_benign() {
        let mut a = NoAdversary;
        let mut rng = rng();
        assert!(!a.drop_message(0, NodeId::from(0), NodeId::from(1), &mut rng));
        assert!(!a.spurious_collision(0, NodeId::from(0), &mut rng));
    }

    #[test]
    fn random_loss_extremes() {
        let mut always = RandomLoss::new(1.0, 1.0);
        let mut never = RandomLoss::new(0.0, 0.0);
        let mut rng = rng();
        for _ in 0..32 {
            assert!(always.drop_message(0, NodeId::from(0), NodeId::from(1), &mut rng));
            assert!(always.spurious_collision(0, NodeId::from(0), &mut rng));
            assert!(!never.drop_message(0, NodeId::from(0), NodeId::from(1), &mut rng));
            assert!(!never.spurious_collision(0, NodeId::from(0), &mut rng));
        }
    }

    #[test]
    fn random_loss_rate_is_approximate() {
        let mut a = RandomLoss::new(0.3, 0.0);
        let mut rng = rng();
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| a.drop_message(0, NodeId::from(0), NodeId::from(1), &mut rng))
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} far from 0.3");
    }

    #[test]
    #[should_panic(expected = "probabilities must lie in [0, 1]")]
    fn random_loss_rejects_bad_probability() {
        let _ = RandomLoss::new(1.5, 0.0);
    }

    #[test]
    fn burst_is_active_only_in_ranges() {
        let mut a = BurstLoss::new(vec![5..10, 20..21]);
        let mut rng = rng();
        let src = NodeId::from(0);
        let dst = NodeId::from(1);
        assert!(!a.drop_message(4, src, dst, &mut rng));
        assert!(a.drop_message(5, src, dst, &mut rng));
        assert!(a.drop_message(9, src, dst, &mut rng));
        assert!(!a.drop_message(10, src, dst, &mut rng));
        assert!(a.spurious_collision(20, src, &mut rng));
        assert!(!a.spurious_collision(21, src, &mut rng));
    }

    #[test]
    fn adversary_kind_round_trips_and_builds() {
        let kinds = vec![
            AdversaryKind::None,
            AdversaryKind::Random(0.4, 0.1),
            AdversaryKind::Burst(vec![3..9, 20..21]),
            AdversaryKind::BrokenDetector {
                drop_p: 0.35,
                miss_p: 0.7,
            },
        ];
        let round: Vec<AdversaryKind> =
            Deserialize::from_value(&Serialize::to_value(&kinds)).unwrap();
        assert_eq!(round, kinds);
        let mut rng = rng();
        // The burst description builds a burst adversary with the same
        // active windows.
        let mut built = kinds[2].build();
        assert!(built.drop_message(3, NodeId::from(0), NodeId::from(1), &mut rng));
        assert!(!built.drop_message(9, NodeId::from(0), NodeId::from(1), &mut rng));
        // The broken-detector description is the only one that can
        // suppress forced reports.
        let mut faulty = kinds[3].build();
        let suppressed = (0..200)
            .filter(|_| faulty.suppress_detection(0, NodeId::from(0), &mut rng))
            .count();
        assert!(suppressed > 0);
        let mut benign = kinds[0].build();
        assert!(!benign.suppress_detection(0, NodeId::from(0), &mut rng));
    }

    #[test]
    fn windowed_random_is_quiet_outside_windows() {
        let mut a = WindowedRandomLoss::new(vec![10..20, 30..31], 1.0, 1.0);
        let mut rng = rng();
        let src = NodeId::from(0);
        let dst = NodeId::from(1);
        assert!(!a.drop_message(9, src, dst, &mut rng));
        assert!(a.drop_message(10, src, dst, &mut rng));
        assert!(a.drop_message(19, src, dst, &mut rng));
        assert!(!a.drop_message(20, src, dst, &mut rng));
        assert!(a.spurious_collision(15, src, &mut rng));
        assert!(!a.spurious_collision(25, src, &mut rng));
    }

    #[test]
    fn compose_is_the_union_of_its_members() {
        let kind = AdversaryKind::Compose(vec![
            AdversaryKind::Burst(vec![3..5, 40..41]),
            AdversaryKind::WindowedRandom {
                windows: vec![8..9, 50..51],
                drop_p: 1.0,
                spurious_p: 0.0,
            },
        ]);
        let mut a = kind.build();
        let mut rng = rng();
        let src = NodeId::from(0);
        let dst = NodeId::from(1);
        assert!(a.drop_message(3, src, dst, &mut rng), "first member");
        assert!(a.drop_message(8, src, dst, &mut rng), "second member");
        assert!(!a.drop_message(6, src, dst, &mut rng), "neither member");
        assert!(a.spurious_collision(4, src, &mut rng), "burst injects");
        assert!(!a.spurious_collision(8, src, &mut rng), "window drop-only");
        // Empty composition is benign.
        let mut none = AdversaryKind::Compose(vec![]).build();
        assert!(!none.drop_message(0, src, dst, &mut rng));
        assert!(!none.suppress_detection(0, src, &mut rng));
    }

    #[test]
    fn new_kinds_round_trip_through_serde() {
        let kinds = vec![
            AdversaryKind::WindowedRandom {
                windows: vec![5..10, 30..31],
                drop_p: 0.4,
                spurious_p: 0.2,
            },
            AdversaryKind::Compose(vec![
                AdversaryKind::None,
                AdversaryKind::Burst(vec![1..2, 7..8]),
                AdversaryKind::Compose(vec![AdversaryKind::Random(0.1, 0.0)]),
            ]),
        ];
        let round: Vec<AdversaryKind> =
            Deserialize::from_value(&Serialize::to_value(&kinds)).unwrap();
        assert_eq!(round, kinds);
    }

    #[test]
    fn scripted_targets_exact_tuples() {
        let mut a = ScriptedAdversary::new();
        a.drop(3, NodeId::from(0), NodeId::from(1))
            .drop_all_to(4, NodeId::from(2))
            .inject_collision(5, NodeId::from(1));
        let mut rng = rng();
        assert!(a.drop_message(3, NodeId::from(0), NodeId::from(1), &mut rng));
        assert!(!a.drop_message(3, NodeId::from(0), NodeId::from(2), &mut rng));
        assert!(!a.drop_message(2, NodeId::from(0), NodeId::from(1), &mut rng));
        assert!(a.drop_message(4, NodeId::from(9), NodeId::from(2), &mut rng));
        assert!(a.spurious_collision(5, NodeId::from(1), &mut rng));
        assert!(!a.spurious_collision(5, NodeId::from(0), &mut rng));
    }
}
