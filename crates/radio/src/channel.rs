//! Per-round resolution of the collision-prone broadcast channel.
//!
//! Implements the delivery rule of Section 2 of the paper:
//!
//! > there exists a round `rcf` such that in every round `r >= rcf`:
//! > if some source `pi` broadcasts a message `m` in round `r`, and
//! > (i) some non-failed receiver `pj` is within distance `R1` of
//! > `pi`, and (ii) no \[other\] node within distance `R2` of `pj`
//! > broadcasts in round `r`, then `pj` receives the message `m`.
//!
//! together with the collision-detector Properties 1 (completeness —
//! enforced structurally, in every round) and 2 (eventual accuracy —
//! enforced from round `racc` onwards).
//!
//! Nodes are half-duplex: a broadcaster does not receive other nodes'
//! messages in the same round (it does observe its own, which models
//! the sender knowing what it sent). Consequently two broadcasters
//! within `R1` of each other each *lose* the other's message, and
//! completeness forces both their detectors to report a collision —
//! exactly the behaviour contention management must eventually
//! eliminate.

use crate::adversary::Adversary;
use crate::config::RadioConfig;
use crate::engine::NodeId;
use crate::geometry::{Point, SpatialGrid};
use rand::rngs::StdRng;

/// A node's transmission decision for one round.
#[derive(Clone, Debug)]
pub struct TxIntent<M> {
    /// The node making the decision.
    pub node: NodeId,
    /// Where the node currently is.
    pub pos: Point,
    /// `Some(payload)` to broadcast, `None` to listen.
    pub payload: Option<M>,
}

/// What one node observes at the end of a round: the received messages
/// plus the collision-detector output.
#[derive(Clone, Debug, Default)]
pub struct RoundReception<M> {
    /// Messages received this round, in deterministic (sender) order.
    /// Senders are anonymous: the model gives nodes no unique
    /// identifiers, so payloads arrive unattributed.
    pub messages: Vec<M>,
    /// Collision-detector output: `true` means the detector delivered
    /// the `±` indication to this node.
    pub collision: bool,
}

impl<M> RoundReception<M> {
    /// `true` if nothing was received and no collision was indicated
    /// (the paper's "silent round" from this node's perspective).
    pub fn is_silent(&self) -> bool {
        self.messages.is_empty() && !self.collision
    }
}

/// Per-node reception with sender attribution, for traces and
/// debugging only (protocols receive the anonymous
/// [`RoundReception`]).
#[derive(Clone, Debug)]
pub struct AttributedReception<M> {
    /// The receiving node.
    pub node: NodeId,
    /// `(sender, payload)` pairs in sender order.
    pub messages: Vec<(NodeId, M)>,
    /// Collision-detector output.
    pub collision: bool,
}

impl<M> AttributedReception<M> {
    /// `true` if nothing was received and no collision was indicated.
    pub fn is_silent(&self) -> bool {
        self.messages.is_empty() && !self.collision
    }

    /// Strips sender attribution, producing what the protocol sees.
    pub fn into_anonymous(self) -> RoundReception<M> {
        RoundReception {
            messages: self.messages.into_iter().map(|(_, m)| m).collect(),
            collision: self.collision,
        }
    }
}

/// The shared broadcast medium: resolves rounds through a spatial
/// index with reusable per-round buffers.
///
/// This is the engine's hot path. The naive delivery rule is
/// O(receivers × broadcasters × nodes): for every (receiver,
/// broadcaster) pair it scans *all* broadcasters for an interferer.
/// `Medium` instead rebuilds a [`SpatialGrid`] over the round's
/// broadcasters (cell size `R2`) and answers "which broadcasters sit
/// within `R2` of this receiver?" with a 3×3-cell query, making the
/// round near-linear in the node count for bounded-density
/// deployments. All index and scratch buffers are owned by the
/// `Medium` and reused round over round, so resolution allocates
/// nothing in steady state beyond the delivered payloads themselves.
///
/// Observational equivalence with the naive rule is load-bearing:
/// [`Medium::resolve_into`] consults the [`Adversary`] for exactly the
/// same (round, sender, receiver) queries in exactly the same order as
/// [`resolve_round_reference`], so for any seed the two produce
/// byte-for-byte identical receptions, traces, and statistics (see the
/// differential tests in `tests/substrate_properties.rs`).
#[derive(Debug)]
pub struct Medium {
    cfg: RadioConfig,
    grid: SpatialGrid,
    /// Intent indices of this round's broadcasters.
    broadcasters: Vec<usize>,
    /// Broadcaster positions, parallel to `broadcasters` (grid input).
    broadcaster_pos: Vec<Point>,
    /// Scratch: grid query output (slots into `broadcasters`).
    candidates: Vec<u32>,
    /// Scratch: in-`R2` broadcaster intent indices, sorted ascending.
    neighbors: Vec<usize>,
}

impl Medium {
    /// Creates a medium for the given radio parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`RadioConfig::validate`]).
    pub fn new(cfg: RadioConfig) -> Self {
        cfg.validate().expect("invalid radio config");
        Medium {
            cfg,
            grid: SpatialGrid::new(cfg.r2),
            broadcasters: Vec::new(),
            broadcaster_pos: Vec::new(),
            candidates: Vec::new(),
            neighbors: Vec::new(),
        }
    }

    /// The radio parameters this medium resolves under.
    pub fn config(&self) -> &RadioConfig {
        &self.cfg
    }

    /// Resolves one round, appending one [`AttributedReception`] per
    /// intent (same order) to `out`.
    ///
    /// `intents` carries every *alive, participating* node exactly
    /// once. The adversary is consulted only within its mandate:
    /// message drops only for rounds before `cfg.rcf`, spurious
    /// collision indications only before `cfg.racc`. Completeness
    /// (Property 1) cannot be suppressed by any adversary.
    ///
    /// `out` is cleared first; callers that keep the buffer across
    /// rounds amortize its allocation away.
    pub fn resolve_into<M: Clone>(
        &mut self,
        round: u64,
        intents: &[TxIntent<M>],
        adversary: &mut dyn Adversary,
        rng: &mut StdRng,
        out: &mut Vec<AttributedReception<M>>,
    ) {
        out.clear();
        let cfg = &self.cfg;
        self.broadcasters.clear();
        self.broadcaster_pos.clear();
        for (i, intent) in intents.iter().enumerate() {
            if intent.payload.is_some() {
                self.broadcasters.push(i);
                self.broadcaster_pos.push(intent.pos);
            }
        }
        self.grid.rebuild(&self.broadcaster_pos);

        for (j, rx_intent) in intents.iter().enumerate() {
            let j_broadcasting = rx_intent.payload.is_some();
            let mut messages: Vec<(NodeId, M)> = Vec::new();
            let mut lost_within_r1 = false;
            let mut lost_within_r2 = false;

            // The sender observes its own payload (it knows what it
            // sent).
            if let Some(own) = &rx_intent.payload {
                messages.push((rx_intent.node, own.clone()));
            }

            // All broadcasters within R2 of j, in ascending intent
            // order (the adversary consultation order of the reference
            // resolver).
            self.candidates.clear();
            self.grid
                .query_within(rx_intent.pos, cfg.r2, &mut self.candidates);
            self.neighbors.clear();
            self.neighbors.extend(
                self.candidates
                    .iter()
                    .map(|&slot| self.broadcasters[slot as usize])
                    .filter(|&i| i != j),
            );
            self.neighbors.sort_unstable();
            // `interfered` for any specific in-R2 sender i means "some
            // broadcaster k != i, k != j within R2 of j" — with the
            // in-R2 count in hand that is simply `count >= 2`.
            let interfered = self.neighbors.len() >= 2;

            for &i in &self.neighbors {
                let tx = &intents[i];
                let d2 = tx.pos.distance_sq(rx_intent.pos);
                let in_r1 = d2 <= cfg.r1 * cfg.r1;

                let physically_ok = !j_broadcasting && in_r1 && !interfered;
                let delivered = physically_ok
                    && !(round < cfg.rcf
                        && adversary.drop_message(round, tx.node, rx_intent.node, rng));

                if delivered {
                    messages.push((tx.node, tx.payload.as_ref().expect("broadcaster").clone()));
                } else {
                    if in_r1 {
                        lost_within_r1 = true;
                    }
                    lost_within_r2 = true;
                }
            }

            // Collision detector output.
            // Property 1 (completeness): any loss within R1 forces a
            // report. Property 2 (eventual accuracy): from racc
            // onwards, reports only when something within R2 was lost.
            // Before racc the adversary may inject false positives.
            let accurate_report = if cfg.ring_reports {
                lost_within_r2
            } else {
                lost_within_r1
            };
            let mut collision = lost_within_r1
                || accurate_report
                || (round < cfg.racc && adversary.spurious_collision(round, rx_intent.node, rng));
            // Model-violation hook: the E13 necessity ablation may
            // break completeness here. Normal adversaries never do.
            if collision && adversary.suppress_detection(round, rx_intent.node, rng) {
                collision = false;
            }

            out.push(AttributedReception {
                node: rx_intent.node,
                messages,
                collision,
            });
        }
    }

    /// Convenience wrapper over [`Medium::resolve_into`] returning a
    /// fresh vector.
    pub fn resolve<M: Clone>(
        &mut self,
        round: u64,
        intents: &[TxIntent<M>],
        adversary: &mut dyn Adversary,
        rng: &mut StdRng,
    ) -> Vec<AttributedReception<M>> {
        let mut out = Vec::with_capacity(intents.len());
        self.resolve_into(round, intents, adversary, rng, &mut out);
        out
    }
}

/// Resolves one slotted round of the channel through a fresh
/// [`Medium`] (grid-indexed path).
///
/// One-shot convenience for tests and tools; the engine keeps a
/// long-lived [`Medium`] instead so buffers amortize across rounds.
///
/// # Panics
///
/// Panics if `cfg` is invalid (see [`RadioConfig::validate`]).
pub fn resolve_round<M: Clone>(
    round: u64,
    cfg: &RadioConfig,
    intents: &[TxIntent<M>],
    adversary: &mut dyn Adversary,
    rng: &mut StdRng,
) -> Vec<AttributedReception<M>> {
    Medium::new(*cfg).resolve(round, intents, adversary, rng)
}

/// The naive O(receivers × broadcasters × nodes) resolver, kept as the
/// executable specification of the delivery rule.
///
/// [`Medium`] must be observationally identical to this function —
/// same receptions, same adversary consultation order, same RNG
/// stream. Differential tests (`tests/substrate_properties.rs`) and
/// the `radio_scale` experiment in `vi-bench` hold the two against
/// each other. Do not optimize this function: its value is being
/// obviously correct.
pub fn resolve_round_reference<M: Clone>(
    round: u64,
    cfg: &RadioConfig,
    intents: &[TxIntent<M>],
    adversary: &mut dyn Adversary,
    rng: &mut StdRng,
) -> Vec<AttributedReception<M>> {
    let broadcasters: Vec<usize> = (0..intents.len())
        .filter(|&i| intents[i].payload.is_some())
        .collect();

    let mut out = Vec::with_capacity(intents.len());
    for (j, rx_intent) in intents.iter().enumerate() {
        let j_broadcasting = rx_intent.payload.is_some();
        let mut messages: Vec<(NodeId, M)> = Vec::new();
        let mut lost_within_r1 = false;
        let mut lost_within_r2 = false;

        // The sender observes its own payload (it knows what it sent).
        if let Some(own) = &rx_intent.payload {
            messages.push((rx_intent.node, own.clone()));
        }

        for &i in &broadcasters {
            if i == j {
                continue;
            }
            let tx = &intents[i];
            let d2 = tx.pos.distance_sq(rx_intent.pos);
            let in_r1 = d2 <= cfg.r1 * cfg.r1;
            let in_r2 = d2 <= cfg.r2 * cfg.r2;
            if !in_r2 {
                continue; // out of both radii: physically irrelevant to j
            }

            // Physical deliverability: listener, in broadcast range, and
            // no *other* broadcaster interferes within R2 of j.
            let interfered = broadcasters.iter().any(|&k| {
                k != i && k != j && intents[k].pos.distance_sq(rx_intent.pos) <= cfg.r2 * cfg.r2
            });
            let physically_ok = !j_broadcasting && in_r1 && !interfered;

            let delivered = physically_ok
                && !(round < cfg.rcf
                    && adversary.drop_message(round, tx.node, rx_intent.node, rng));

            if delivered {
                messages.push((tx.node, tx.payload.as_ref().expect("broadcaster").clone()));
            } else {
                if in_r1 {
                    lost_within_r1 = true;
                }
                lost_within_r2 = true;
            }
        }

        // Collision detector output.
        // Property 1 (completeness): any loss within R1 forces a report.
        // Property 2 (eventual accuracy): from racc onwards, reports only
        // when something within R2 was lost. Before racc the adversary may
        // inject false positives.
        let accurate_report = if cfg.ring_reports {
            lost_within_r2
        } else {
            lost_within_r1
        };
        let mut collision = lost_within_r1
            || accurate_report
            || (round < cfg.racc && adversary.spurious_collision(round, rx_intent.node, rng));
        // Model-violation hook: the E13 necessity ablation may break
        // completeness here. Normal adversaries never do.
        if collision && adversary.suppress_detection(round, rx_intent.node, rng) {
            collision = false;
        }

        out.push(AttributedReception {
            node: rx_intent.node,
            messages,
            collision,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoAdversary, ScriptedAdversary};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    fn cfg() -> RadioConfig {
        RadioConfig::reliable(10.0, 20.0)
    }

    fn intent<M>(id: usize, x: f64, payload: Option<M>) -> TxIntent<M> {
        TxIntent {
            node: NodeId::from(id),
            pos: Point::new(x, 0.0),
            payload,
        }
    }

    /// One broadcaster, one in-range listener: delivered, no collision.
    #[test]
    fn basic_delivery() {
        let intents = vec![intent(0, 0.0, Some(7u64)), intent(1, 5.0, None)];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert_eq!(out[1].messages, vec![(NodeId::from(0), 7)]);
        assert!(!out[1].collision);
        // Sender observes its own message and no collision.
        assert_eq!(out[0].messages, vec![(NodeId::from(0), 7)]);
        assert!(!out[0].collision);
    }

    /// Outside R1 (but inside R2): not delivered; with ring reports the
    /// listener's detector fires (accurate: a message within R2 was lost).
    #[test]
    fn gray_ring_loss_reports() {
        let intents = vec![intent(0, 0.0, Some(1u64)), intent(1, 15.0, None)];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert!(out[1].messages.is_empty());
        assert!(out[1].collision, "ring loss should be reported by default");

        let quiet = cfg().without_ring_reports();
        let out = resolve_round(0, &quiet, &intents, &mut NoAdversary, &mut rng());
        assert!(!out[1].collision, "ring reports disabled");
    }

    /// Outside R2 entirely: silent round.
    #[test]
    fn out_of_range_is_silent() {
        let intents = vec![intent(0, 0.0, Some(1u64)), intent(1, 25.0, None)];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert!(out[1].is_silent());
    }

    /// Two broadcasters within R2 of a listener: both messages destroyed,
    /// collision reported (completeness).
    #[test]
    fn interference_destroys_both() {
        let intents = vec![
            intent(0, 0.0, Some(1u64)),
            intent(1, 8.0, Some(2u64)),
            intent(2, 4.0, None),
        ];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert!(out[2].messages.is_empty());
        assert!(out[2].collision);
    }

    /// Interferer outside R1 but inside R2 of the listener still
    /// destroys reception (quasi-unit-disk).
    #[test]
    fn far_interferer_still_interferes() {
        let intents = vec![
            intent(0, 0.0, Some(1u64)),
            intent(2, 5.0, None),
            intent(1, 22.0, Some(2u64)), // 17m from listener: in (R1, R2]
        ];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert!(out[1].messages.is_empty());
        assert!(out[1].collision);
    }

    /// Half-duplex: concurrent broadcasters within R1 miss each other
    /// and completeness forces both detectors to fire.
    #[test]
    fn concurrent_broadcasters_detect_collision() {
        let intents = vec![intent(0, 0.0, Some(1u64)), intent(1, 5.0, Some(2u64))];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        for rx in &out {
            assert_eq!(rx.messages.len(), 1, "only own message observed");
            assert!(rx.collision, "missed the other broadcaster");
        }
    }

    /// A lone broadcaster hears nothing but its own message and no
    /// collision.
    #[test]
    fn lone_broadcaster_clean() {
        let intents = vec![intent(0, 0.0, Some(1u64))];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert_eq!(out[0].messages.len(), 1);
        assert!(!out[0].collision);
    }

    /// Before rcf the adversary may drop a deliverable message; the
    /// listener's detector must then fire (completeness holds even
    /// pre-stabilization).
    #[test]
    fn adversarial_drop_forces_detection() {
        let mut adv = ScriptedAdversary::new();
        adv.drop(3, NodeId::from(0), NodeId::from(1));
        let cfg = RadioConfig::stabilizing(10.0, 20.0, 100);
        let intents = vec![intent(0, 0.0, Some(1u64)), intent(1, 5.0, None)];
        let out = resolve_round(3, &cfg, &intents, &mut adv, &mut rng());
        assert!(out[1].messages.is_empty());
        assert!(out[1].collision, "completeness: lost R1 message detected");
    }

    /// After rcf the same script is impotent: the channel no longer
    /// consults the adversary for drops.
    #[test]
    fn post_rcf_drops_are_ignored() {
        let mut adv = ScriptedAdversary::new();
        adv.drop(100, NodeId::from(0), NodeId::from(1));
        let cfg = RadioConfig::stabilizing(10.0, 20.0, 100);
        let intents = vec![intent(0, 0.0, Some(1u64)), intent(1, 5.0, None)];
        let out = resolve_round(100, &cfg, &intents, &mut adv, &mut rng());
        assert_eq!(out[1].messages.len(), 1);
        assert!(!out[1].collision);
    }

    /// Spurious indications are honoured before racc and suppressed
    /// after.
    #[test]
    fn spurious_collisions_respect_racc() {
        let mut adv = ScriptedAdversary::new();
        adv.inject_collision(3, NodeId::from(0));
        adv.inject_collision(100, NodeId::from(0));
        let cfg = RadioConfig::stabilizing(10.0, 20.0, 100);
        let intents = vec![intent::<u64>(0, 0.0, None)];
        let out = resolve_round(3, &cfg, &intents, &mut adv, &mut rng());
        assert!(out[0].collision, "false positive allowed before racc");
        let out = resolve_round(100, &cfg, &intents, &mut adv, &mut rng());
        assert!(!out[0].collision, "accuracy: no false positives from racc");
    }

    /// Deliveries are reported in sender order, deterministically.
    #[test]
    fn deterministic_sender_order() {
        let intents = vec![
            intent(2, 1.0, Some(30u64)),
            intent(0, 2.0, Some(10u64)),
            intent(1, 50.0, None), // isolated listener, hears nothing
            intent(3, 3.0, None),
        ];
        // Node 3 is within R2 of both broadcasters: interference.
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert!(out[3].messages.is_empty() && out[3].collision);
        assert!(out[2].is_silent());
    }
}
